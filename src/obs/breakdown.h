// Per-run latency breakdown, computed from spans.
//
// Answers "where did the time go" for one trace: how much of a run was
// queueing behind busy modules, waiting for environments to come up,
// computing, moving bytes, and committing through the replication protocol.
// The DAG runtime attaches one of these to every RunReport; benches use it
// to justify which component an optimization moved.

#ifndef UDC_SRC_OBS_BREAKDOWN_H_
#define UDC_SRC_OBS_BREAKDOWN_H_

#include <string>

#include "src/obs/span.h"

namespace udc {

struct LatencyBreakdown {
  SimTime queue_wait;   // mailbox time behind busy actors (exec.queue_wait)
  SimTime cold_start;   // environment readiness waits (exec.env_wait/_start)
  SimTime exec;         // compute (exec.compute, exec.task_run)
  SimTime net;          // transfers and fabric messages (category "net")
  SimTime consensus;    // replication commits (category "dist")
  SimTime total;        // root span duration (makespan of the trace)

  SimTime accounted() const {
    return queue_wait + cold_start + exec + net + consensus;
  }

  // Aligned component table, one line per component plus total.
  std::string Table() const;
};

// Sums the closed spans of `trace_id` into components. Component sums can
// exceed `total` when the DAG overlaps stages — they are per-component
// serial totals, not a partition of the makespan.
LatencyBreakdown BreakdownFromSpans(const SpanTracer& tracer,
                                    uint64_t trace_id);

}  // namespace udc

#endif  // UDC_SRC_OBS_BREAKDOWN_H_
