#include "src/obs/chrome_trace.h"

#include <algorithm>
#include <fstream>
#include <map>

#include "src/common/strings.h"
#include "src/obs/exposition.h"

namespace udc {

std::string ChromeTraceJson(const SpanTracer& tracer, SimTime now) {
  // Stable track per category, in order of first appearance.
  std::map<std::string, int> tid_of;
  std::string events;
  bool first = true;
  for (const Span& span : tracer.spans()) {
    const auto [it, inserted] =
        tid_of.try_emplace(span.category, static_cast<int>(tid_of.size()) + 1);
    const int tid = it->second;
    const SimTime end = span.open ? std::max(now, span.start) : span.end;

    std::string args = StrFormat(
        "\"trace_id\": %llu, \"span_id\": %llu, \"parent_span_id\": %llu",
        static_cast<unsigned long long>(span.trace_id),
        static_cast<unsigned long long>(span.span_id),
        static_cast<unsigned long long>(span.parent_span_id));
    if (span.shared_labels != nullptr) {
      for (const auto& [k, v] : *span.shared_labels) {
        args += StrFormat(", \"%s\": \"%s\"", JsonEscape(k).c_str(),
                          JsonEscape(v).c_str());
      }
    }
    for (const auto& [k, v] : span.labels) {
      args += StrFormat(", \"%s\": \"%s\"", JsonEscape(k).c_str(),
                        JsonEscape(v).c_str());
    }
    if (span.open) {
      args += ", \"open\": \"true\"";
    }
    events += StrFormat(
        "%s\n    {\"name\": \"%s\", \"cat\": \"%s\", \"ph\": \"X\", "
        "\"ts\": %lld, \"dur\": %lld, \"pid\": 1, \"tid\": %d, "
        "\"args\": {%s}}",
        first ? "" : ",", JsonEscape(span.name).c_str(),
        JsonEscape(span.category).c_str(),
        static_cast<long long>(span.start.micros()),
        static_cast<long long>((end - span.start).micros()), tid,
        args.c_str());
    first = false;
  }

  std::string metadata;
  for (const auto& [category, tid] : tid_of) {
    metadata += StrFormat(
        ",\n    {\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 1, "
        "\"tid\": %d, \"args\": {\"name\": \"%s\"}}",
        tid, JsonEscape(category).c_str());
  }

  return "{\n  \"displayTimeUnit\": \"ms\",\n  \"traceEvents\": [" + events +
         metadata + "\n  ]\n}\n";
}

Status WriteChromeTrace(const SpanTracer& tracer, SimTime now,
                        const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    return InvalidArgumentError("cannot open trace output file: " + path);
  }
  out << ChromeTraceJson(tracer, now);
  return out.good() ? OkStatus()
                    : InternalError("short write to trace file: " + path);
}

}  // namespace udc
