// Chrome trace_event export.
//
// Serializes a SpanTracer's spans as the JSON object format understood by
// chrome://tracing and Perfetto (https://ui.perfetto.dev): each span becomes
// a complete ("ph":"X") event with microsecond timestamps, one track (tid)
// per category, and the span's labels plus causal ids in "args". Spans still
// open when the export runs are emitted with their duration up to `now` and
// an "open":"true" arg.

#ifndef UDC_SRC_OBS_CHROME_TRACE_H_
#define UDC_SRC_OBS_CHROME_TRACE_H_

#include <string>

#include "src/common/status.h"
#include "src/obs/span.h"

namespace udc {

std::string ChromeTraceJson(const SpanTracer& tracer, SimTime now);

// Writes ChromeTraceJson to `path`.
Status WriteChromeTrace(const SpanTracer& tracer, SimTime now,
                        const std::string& path);

}  // namespace udc

#endif  // UDC_SRC_OBS_CHROME_TRACE_H_
