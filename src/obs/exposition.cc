#include "src/obs/exposition.h"

#include <string>

#include "src/common/strings.h"

namespace udc {

namespace {

// Splits a stored series key into the base metric name and the label body
// (without braces): `a.b{k="v"}` -> {"a.b", `k="v"`}.
struct SeriesParts {
  std::string base;
  std::string labels;
};

SeriesParts SplitSeries(const std::string& key) {
  const size_t brace = key.find('{');
  if (brace == std::string::npos) {
    return {key, ""};
  }
  std::string labels = key.substr(brace + 1);
  if (!labels.empty() && labels.back() == '}') {
    labels.pop_back();
  }
  return {key.substr(0, brace), labels};
}

std::string RenderSeries(const std::string& prom_name,
                         const std::string& labels) {
  if (labels.empty()) {
    return prom_name;
  }
  return prom_name + "{" + labels + "}";
}

std::string WithExtraLabel(const std::string& labels,
                           const std::string& extra) {
  return labels.empty() ? extra : labels + "," + extra;
}

void AppendTypeLine(std::string* out, const std::string& prom_name,
                    const char* type, std::string* last_typed) {
  if (*last_typed == prom_name) {
    return;  // label variants of one metric share the TYPE line
  }
  *out += "# TYPE " + prom_name + " " + type + "\n";
  *last_typed = prom_name;
}

constexpr double kQuantiles[] = {0.5, 0.9, 0.95, 0.99};

}  // namespace

std::string PrometheusMetricName(std::string_view name) {
  std::string out = "udc_";
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out += ok ? c : '_';
  }
  return out;
}

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        out += c;
    }
  }
  return out;
}

std::string PrometheusExposition(const MetricsRegistry& metrics) {
  std::string out;
  std::string last_typed;
  for (const auto& [key, value] : metrics.CountersSorted()) {
    const SeriesParts parts = SplitSeries(key);
    const std::string prom = PrometheusMetricName(parts.base);
    AppendTypeLine(&out, prom, "counter", &last_typed);
    out += StrFormat("%s %lld\n", RenderSeries(prom, parts.labels).c_str(),
                     static_cast<long long>(value));
  }
  for (const auto& [key, value] : metrics.GaugesSorted()) {
    const SeriesParts parts = SplitSeries(key);
    const std::string prom = PrometheusMetricName(parts.base);
    AppendTypeLine(&out, prom, "gauge", &last_typed);
    out += StrFormat("%s %.9g\n", RenderSeries(prom, parts.labels).c_str(),
                     value);
  }
  for (const auto& [key, hist] : metrics.HistogramsSorted()) {
    const SeriesParts parts = SplitSeries(key);
    const std::string prom = PrometheusMetricName(parts.base);
    AppendTypeLine(&out, prom, "summary", &last_typed);
    for (const double q : kQuantiles) {
      const std::string labels =
          WithExtraLabel(parts.labels, StrFormat("quantile=\"%g\"", q));
      out += StrFormat("%s %.9g\n", RenderSeries(prom, labels).c_str(),
                       hist->Quantile(q));
    }
    out += StrFormat("%s %.9g\n",
                     RenderSeries(prom + "_sum", parts.labels).c_str(),
                     hist->Sum());
    out += StrFormat("%s %lld\n",
                     RenderSeries(prom + "_count", parts.labels).c_str(),
                     static_cast<long long>(hist->count()));
  }
  return out;
}

std::string JsonSnapshot(const MetricsRegistry& metrics) {
  std::string out = "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [key, value] : metrics.CountersSorted()) {
    out += StrFormat("%s\n    \"%s\": %lld", first ? "" : ",",
                     JsonEscape(key).c_str(), static_cast<long long>(value));
    first = false;
  }
  out += "\n  },\n  \"gauges\": {";
  first = true;
  for (const auto& [key, value] : metrics.GaugesSorted()) {
    out += StrFormat("%s\n    \"%s\": %.9g", first ? "" : ",",
                     JsonEscape(key).c_str(), value);
    first = false;
  }
  out += "\n  },\n  \"histograms\": {";
  first = true;
  for (const auto& [key, hist] : metrics.HistogramsSorted()) {
    // Same quantile set as the Prometheus summary (kQuantiles above); the
    // two expositions must never disagree on which ranks they publish.
    out += StrFormat(
        "%s\n    \"%s\": {\"count\": %lld, \"mean\": %.9g, \"p50\": %.9g, "
        "\"p90\": %.9g, \"p95\": %.9g, \"p99\": %.9g, \"min\": %.9g, "
        "\"max\": %.9g}",
        first ? "" : ",", JsonEscape(key).c_str(),
        static_cast<long long>(hist->count()), hist->Mean(),
        hist->Quantile(0.5), hist->Quantile(0.9), hist->Quantile(0.95),
        hist->Quantile(0.99), hist->Min(), hist->Max());
    first = false;
  }
  out += "\n  }\n}\n";
  return out;
}

}  // namespace udc
