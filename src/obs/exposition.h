// Metric exposition writers.
//
// Renders a MetricsRegistry as Prometheus text exposition (counters and
// gauges as-is; histograms as summaries with p50/p90/p95/p99 quantile
// series) and as a JSON snapshot for programmatic consumers. Internal
// `layer.noun_verb` names become `udc_layer_noun_verb` on the way out, since
// Prometheus metric names cannot contain dots.

#ifndef UDC_SRC_OBS_EXPOSITION_H_
#define UDC_SRC_OBS_EXPOSITION_H_

#include <string>
#include <string_view>

#include "src/obs/metrics.h"

namespace udc {

// `"core.runs"` -> `"udc_core_runs"`.
std::string PrometheusMetricName(std::string_view name);

// Escapes `\`, `"`, and newlines for embedding in a JSON or label string.
std::string JsonEscape(std::string_view s);

// The full registry in Prometheus text exposition format.
std::string PrometheusExposition(const MetricsRegistry& metrics);

// The full registry as a pretty-printed JSON object:
//   {"counters": {...}, "gauges": {...},
//    "histograms": {"name": {"count":..,"mean":..,"p50":..,"p90":..,
//                            "p95":..,"p99":..,"min":..,"max":..}, ...}}
// Histogram summaries publish the same quantile set as the Prometheus
// writer above.
std::string JsonSnapshot(const MetricsRegistry& metrics);

}  // namespace udc

#endif  // UDC_SRC_OBS_EXPOSITION_H_
