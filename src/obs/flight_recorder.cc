#include "src/obs/flight_recorder.h"

#include <algorithm>
#include <cstdio>
#include <cstring>

#include "src/common/strings.h"
#include "src/obs/exposition.h"

namespace udc {

namespace {

void CopyTruncated(char* dst, size_t dst_size, std::string_view src) {
  const size_t n = std::min(src.size(), dst_size - 1);
  std::memcpy(dst, src.data(), n);
  dst[n] = '\0';
}

Status WriteFile(const std::string& path, const std::string& body) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return InternalError("cannot open " + path + " for writing");
  }
  const size_t written = std::fwrite(body.data(), 1, body.size(), f);
  std::fclose(f);
  if (written != body.size()) {
    return InternalError("short write to " + path);
  }
  return OkStatus();
}

}  // namespace

FlightRecorder::FlightRecorder(size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {}

void FlightRecorder::EnsureRings(uint32_t shard_count) {
  if (rings_.size() >= shard_count) {
    return;
  }
  rings_.resize(shard_count);
  for (Ring& ring : rings_) {
    // Eager: the ring exists before the first append, so the record hot
    // path (including zero-allocation bench phases) never allocates.
    if (ring.slots.size() != capacity_) {
      ring.slots.resize(capacity_);
    }
  }
}

FlightRecorder::Record* FlightRecorder::Append(uint32_t shard,
                                               Record::Kind kind, SimTime at) {
  if (!enabled_ || shard >= rings_.size()) {
    return nullptr;
  }
  Ring& ring = rings_[shard];
  Record& rec = ring.slots[ring.next];
  ring.next = (ring.next + 1) % capacity_;
  rec.kind = kind;
  rec.shard = shard;
  rec.seq = ring.written++;
  rec.time = at;
  rec.start = at;
  return &rec;
}

void FlightRecorder::RecordSpan(uint32_t shard, SimTime start, SimTime end,
                                std::string_view category,
                                std::string_view name) {
  Record* rec = Append(shard, Record::kSpan, end);
  if (rec == nullptr) {
    return;
  }
  rec->start = start;
  CopyTruncated(rec->category, sizeof(rec->category), category);
  CopyTruncated(rec->name, sizeof(rec->name), name);
}

void FlightRecorder::RecordTrace(uint32_t shard, SimTime at,
                                 std::string_view category,
                                 std::string_view detail) {
  Record* rec = Append(shard, Record::kTrace, at);
  if (rec == nullptr) {
    return;
  }
  CopyTruncated(rec->category, sizeof(rec->category), category);
  CopyTruncated(rec->name, sizeof(rec->name), detail);
}

void FlightRecorder::RecordEvent(uint32_t shard, SimTime at,
                                 std::string_view category,
                                 std::string_view detail) {
  Record* rec = Append(shard, Record::kEvent, at);
  if (rec == nullptr) {
    return;
  }
  CopyTruncated(rec->category, sizeof(rec->category), category);
  CopyTruncated(rec->name, sizeof(rec->name), detail);
}

std::vector<FlightRecorder::Record> FlightRecorder::MergedRecords() const {
  std::vector<Record> out;
  out.reserve(retained());
  for (const Ring& ring : rings_) {
    const size_t kept = std::min<uint64_t>(ring.written, capacity_);
    // Oldest retained record sits at `next` once the ring has wrapped.
    const size_t oldest = ring.written > capacity_ ? ring.next : 0;
    for (size_t i = 0; i < kept; ++i) {
      out.push_back(ring.slots[(oldest + i) % capacity_]);
    }
  }
  // Canonical (time, shard, seq) order — identical to the parallel kernel's
  // ObsFlusher merge, so a dump reads like the live trace would have.
  std::sort(out.begin(), out.end(), [](const Record& a, const Record& b) {
    if (a.time != b.time) {
      return a.time < b.time;
    }
    if (a.shard != b.shard) {
      return a.shard < b.shard;
    }
    return a.seq < b.seq;
  });
  return out;
}

size_t FlightRecorder::retained() const {
  size_t n = 0;
  for (const Ring& ring : rings_) {
    n += static_cast<size_t>(std::min<uint64_t>(ring.written, capacity_));
  }
  return n;
}

uint64_t FlightRecorder::total_recorded() const {
  uint64_t n = 0;
  for (const Ring& ring : rings_) {
    n += ring.written;
  }
  return n;
}

uint64_t FlightRecorder::overwritten() const {
  uint64_t n = 0;
  for (const Ring& ring : rings_) {
    n += ring.written > capacity_ ? ring.written - capacity_ : 0;
  }
  return n;
}

std::string FlightRecorder::ChromeTraceJson() const {
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (const Record& rec : MergedRecords()) {
    const double ts = static_cast<double>(rec.start.micros());
    const double dur =
        static_cast<double>(rec.time.micros()) - static_cast<double>(rec.start.micros());
    out += first ? "\n" : ",\n";
    first = false;
    if (rec.kind == Record::kSpan) {
      out += StrFormat(
          "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\",\"ts\":%.3f,"
          "\"dur\":%.3f,\"pid\":1,\"tid\":%u,\"args\":{\"seq\":%llu}}",
          JsonEscape(rec.name).c_str(), JsonEscape(rec.category).c_str(), ts,
          dur, rec.shard, static_cast<unsigned long long>(rec.seq));
    } else {
      out += StrFormat(
          "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"i\",\"ts\":%.3f,"
          "\"pid\":1,\"tid\":%u,\"s\":\"t\",\"args\":{\"seq\":%llu}}",
          JsonEscape(rec.name).c_str(), JsonEscape(rec.category).c_str(), ts,
          rec.shard, static_cast<unsigned long long>(rec.seq));
    }
  }
  out += "\n]}\n";
  return out;
}

Status FlightRecorder::Dump(const std::string& path,
                            const MetricsRegistry* metrics,
                            std::string_view reason) const {
  std::string trace = ChromeTraceJson();
  // Stitch the reason into the top-level object so the dump is
  // self-describing; the writer above always opens with `{`.
  trace.insert(1, "\"otherData\":{\"reason\":\"" +
                      JsonEscape(reason) + "\"},");
  const Status status = WriteFile(path, trace);
  if (!status.ok()) {
    return status;
  }
  if (metrics != nullptr) {
    return WriteFile(path + ".metrics.json", JsonSnapshot(*metrics));
  }
  return OkStatus();
}

void FlightRecorder::Clear() {
  for (Ring& ring : rings_) {
    ring.next = 0;
    ring.written = 0;
  }
}

}  // namespace udc
