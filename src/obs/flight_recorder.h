// Always-on flight recorder: a fixed-size per-shard ring of recent
// observability records.
//
// The simulator's full telemetry (SpanTracer, TraceRecorder) is unbounded
// and export-at-the-end; a run that dies mid-flight leaves nothing behind.
// The flight recorder is the post-mortem black box: every closed span and
// trace line also lands in a small ring (one per shard domain, so parallel
// worker threads never contend), overwriting the oldest record when full.
// Records are fixed-width PODs — appending is a couple of stores, no
// allocation after the ring exists — so it stays on at near-zero cost.
//
// On a UDC_CHECK failure (via the crash-dump hooks in src/common/logging.h),
// an SLO breach, or an explicit trigger, Dump() merges the rings in the
// kernel's canonical (time, shard, seq) order and writes a Chrome
// trace_event JSON (chrome://tracing, https://ui.perfetto.dev) plus a
// metrics snapshot alongside.
//
// Threading contract mirrors ShardObsBuffer: ring `s` is written only by the
// thread executing shard `s` (ring 0 by the coordinator); merges and dumps
// run with all producers quiesced.

#ifndef UDC_SRC_OBS_FLIGHT_RECORDER_H_
#define UDC_SRC_OBS_FLIGHT_RECORDER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/status.h"
#include "src/common/units.h"

namespace udc {

class MetricsRegistry;

class FlightRecorder {
 public:
  struct Record {
    enum Kind : uint8_t {
      kSpan,   // closed span interval [start, time]
      kTrace,  // legacy trace line at `time`
      kEvent,  // ad-hoc marker at `time` (SLO breach, explicit annotations)
    };
    Kind kind = kTrace;
    uint32_t shard = 0;
    uint64_t seq = 0;  // per-ring emission order; merge tiebreaker
    SimTime time;      // span end / event time — primary merge key
    SimTime start;     // span start (== time for non-spans)
    // Truncated copies: a ring record must not point into caller memory
    // that may be gone by dump time.
    char category[24] = {0};
    char name[96] = {0};
  };

  // `capacity` is per ring. Rings are created by EnsureRings and sized
  // eagerly so steady-state appends never allocate.
  explicit FlightRecorder(size_t capacity = 1024);
  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  // Creates rings for shard ids [0, shard_count). Existing rings (and their
  // contents) are kept. Serial phase only.
  void EnsureRings(uint32_t shard_count);
  uint32_t ring_count() const { return static_cast<uint32_t>(rings_.size()); }
  size_t capacity() const { return capacity_; }

  void set_enabled(bool enabled) { enabled_ = enabled; }
  bool enabled() const { return enabled_; }

  // --- Producer side (the thread owning `shard`'s ring).
  void RecordSpan(uint32_t shard, SimTime start, SimTime end,
                  std::string_view category, std::string_view name);
  void RecordTrace(uint32_t shard, SimTime at, std::string_view category,
                   std::string_view detail);
  void RecordEvent(uint32_t shard, SimTime at, std::string_view category,
                   std::string_view detail);

  // While the parallel kernel's barrier flush replays worker-shard spans
  // into the shared SpanTracer, the tracer's end-sink must not re-record
  // them (the owning shard already did, with the right shard id). The
  // flusher brackets the replay with this flag.
  void set_in_flush_replay(bool v) { in_flush_replay_ = v; }
  bool in_flush_replay() const { return in_flush_replay_; }

  // --- Consumer side (producers quiesced).

  // All retained records, merged in canonical (time, shard, seq) order —
  // the same total order the parallel kernel's ObsFlusher applies.
  std::vector<Record> MergedRecords() const;
  // Records currently retained / ever recorded / overwritten by wraparound.
  size_t retained() const;
  uint64_t total_recorded() const;
  uint64_t overwritten() const;

  // The merged rings as Chrome trace_event JSON (one track per shard).
  std::string ChromeTraceJson() const;
  // Writes ChromeTraceJson() to `path`; when `metrics` is non-null, also
  // writes its JsonSnapshot to `path + ".metrics.json"`. `reason` lands in
  // the trace metadata so the dump says why it exists.
  Status Dump(const std::string& path, const MetricsRegistry* metrics,
              std::string_view reason) const;

  void Clear();

 private:
  struct Ring {
    std::vector<Record> slots;  // capacity_-sized once first used
    size_t next = 0;            // next write position
    uint64_t written = 0;       // total appends (>= slots when wrapped)
  };

  Record* Append(uint32_t shard, Record::Kind kind, SimTime at);

  size_t capacity_;
  bool enabled_ = true;
  bool in_flush_replay_ = false;
  std::vector<Ring> rings_;
};

}  // namespace udc

#endif  // UDC_SRC_OBS_FLIGHT_RECORDER_H_
