#include "src/obs/metrics.h"

#include <algorithm>

#include "src/common/strings.h"

namespace udc {

std::string MetricSeriesKey(std::string_view name, const MetricLabels& labels) {
  if (labels.empty()) {
    return std::string(name);
  }
  MetricLabels sorted = labels;
  std::sort(sorted.begin(), sorted.end());
  std::string key(name);
  key += '{';
  for (size_t i = 0; i < sorted.size(); ++i) {
    if (i > 0) {
      key += ',';
    }
    key += sorted[i].first + "=\"" + sorted[i].second + "\"";
  }
  key += '}';
  return key;
}

void MetricsRegistry::IncrementCounter(std::string_view name, int64_t delta) {
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    counters_.emplace(std::string(name), delta);
  } else {
    it->second += delta;
  }
}

void MetricsRegistry::IncrementCounter(std::string_view name,
                                       const MetricLabels& labels,
                                       int64_t delta) {
  IncrementCounter(MetricSeriesKey(name, labels), delta);
}

int64_t MetricsRegistry::counter(std::string_view name) const {
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

int64_t MetricsRegistry::counter(std::string_view name,
                                 const MetricLabels& labels) const {
  return counter(MetricSeriesKey(name, labels));
}

void MetricsRegistry::SetGauge(std::string_view name, double value) {
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    gauges_.emplace(std::string(name), value);
  } else {
    it->second = value;
  }
}

void MetricsRegistry::SetGauge(std::string_view name,
                               const MetricLabels& labels, double value) {
  SetGauge(MetricSeriesKey(name, labels), value);
}

void MetricsRegistry::AddToGauge(std::string_view name, double delta) {
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    gauges_.emplace(std::string(name), delta);
  } else {
    it->second += delta;
  }
}

void MetricsRegistry::AddToGauge(std::string_view name,
                                 const MetricLabels& labels, double delta) {
  AddToGauge(MetricSeriesKey(name, labels), delta);
}

double MetricsRegistry::gauge(std::string_view name) const {
  const auto it = gauges_.find(name);
  return it == gauges_.end() ? 0.0 : it->second;
}

double MetricsRegistry::gauge(std::string_view name,
                              const MetricLabels& labels) const {
  return gauge(MetricSeriesKey(name, labels));
}

void MetricsRegistry::Observe(std::string_view name, double value) {
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), Histogram()).first;
  }
  it->second.Add(value);
}

void MetricsRegistry::Observe(std::string_view name, const MetricLabels& labels,
                              double value) {
  Observe(MetricSeriesKey(name, labels), value);
}

const Histogram* MetricsRegistry::histogram(std::string_view name) const {
  const auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : &it->second;
}

const Histogram* MetricsRegistry::histogram(std::string_view name,
                                            const MetricLabels& labels) const {
  return histogram(MetricSeriesKey(name, labels));
}

std::string MetricsRegistry::Report() const {
  std::string out;
  for (const auto& [name, value] : counters_) {
    out += StrFormat("counter %-48s %lld\n", name.c_str(),
                     static_cast<long long>(value));
  }
  for (const auto& [name, value] : gauges_) {
    out += StrFormat("gauge   %-48s %.6g\n", name.c_str(), value);
  }
  for (const auto& [name, hist] : histograms_) {
    out += StrFormat("hist    %-48s %s\n", name.c_str(), hist.Summary().c_str());
  }
  return out;
}

void MetricsRegistry::Clear() {
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
}

}  // namespace udc
