#include "src/obs/metrics.h"

#include <algorithm>

#include "src/common/strings.h"

namespace udc {

std::string MetricSeriesKey(std::string_view name, const MetricLabels& labels) {
  if (labels.empty()) {
    return std::string(name);
  }
  MetricLabels sorted = labels;
  std::sort(sorted.begin(), sorted.end());
  std::string key(name);
  key += '{';
  for (size_t i = 0; i < sorted.size(); ++i) {
    if (i > 0) {
      key += ',';
    }
    key += sorted[i].first + "=\"" + sorted[i].second + "\"";
  }
  key += '}';
  return key;
}

template <typename T>
uint32_t MetricsRegistry::Intern(std::deque<Series<T>>* store,
                                 SeriesIndex* index, std::string_view key) {
  const auto it = index->find(key);
  if (it != index->end()) {
    return it->second;
  }
  const auto idx = static_cast<uint32_t>(store->size());
  store->push_back(Series<T>{std::string(key), T{}});
  index->emplace(store->back().key, idx);
  return idx;
}

void MetricHistogram::EnableSketch(double relative_error) {
  if (sketch_ != nullptr) {
    return;
  }
  auto sketch = std::make_unique<SketchHistogram>(relative_error);
  for (const double v : exact_.sorted_samples()) {
    sketch->Add(v);
  }
  exact_.Clear();
  sketch_ = std::move(sketch);
}

template <typename T>
uint32_t MetricsRegistry::Intern(std::deque<Series<T>>* store,
                                 SeriesIndex* index, std::string_view name,
                                 const MetricLabels& labels) {
  if (labels.empty()) {
    return Intern(store, index, name);
  }
  const std::string key = MetricSeriesKey(name, labels);
  const auto it = index->find(key);
  if (it != index->end()) {
    return it->second;
  }
  // New labeled series: charge it against the per-name cardinality budget.
  // Past the limit the event folds into the `name{overflow="true"}`
  // aggregate — the first K label sets keep their own series (top-K by
  // first touch), everything else stays bounded.
  const auto counter =
      labeled_series_per_name_.try_emplace(std::string(name), 0).first;
  if (label_cardinality_limit_ > 0 &&
      counter->second >= label_cardinality_limit_) {
    ++overflowed_series_events_;
    return Intern(store, index,
                  MetricSeriesKey(name, {{"overflow", "true"}}));
  }
  ++counter->second;
  return Intern(store, index, key);
}

MetricsRegistry::CounterHandle MetricsRegistry::CounterSeries(
    std::string_view name, const MetricLabels& labels) {
  CounterHandle h;
  h.idx_ = Intern(&counters_, &counter_index_, name, labels);
  return h;
}

MetricsRegistry::GaugeHandle MetricsRegistry::GaugeSeries(
    std::string_view name, const MetricLabels& labels) {
  GaugeHandle h;
  h.idx_ = Intern(&gauges_, &gauge_index_, name, labels);
  return h;
}

MetricsRegistry::HistogramHandle MetricsRegistry::HistogramSeries(
    std::string_view name, const MetricLabels& labels) {
  HistogramHandle h;
  h.idx_ = Intern(&histograms_, &histogram_index_, name, labels);
  return h;
}

void MetricsRegistry::IncrementCounter(std::string_view name, int64_t delta) {
  counters_[Intern(&counters_, &counter_index_, name)].value += delta;
}

void MetricsRegistry::IncrementCounter(std::string_view name,
                                       const MetricLabels& labels,
                                       int64_t delta) {
  counters_[Intern(&counters_, &counter_index_, name, labels)].value += delta;
}

int64_t MetricsRegistry::counter(std::string_view name) const {
  const auto it = counter_index_.find(name);
  return it == counter_index_.end() ? 0 : counters_[it->second].value;
}

int64_t MetricsRegistry::counter(std::string_view name,
                                 const MetricLabels& labels) const {
  return labels.empty() ? counter(name)
                        : counter(MetricSeriesKey(name, labels));
}

void MetricsRegistry::SetGauge(std::string_view name, double value) {
  gauges_[Intern(&gauges_, &gauge_index_, name)].value = value;
}

void MetricsRegistry::SetGauge(std::string_view name,
                               const MetricLabels& labels, double value) {
  gauges_[Intern(&gauges_, &gauge_index_, name, labels)].value = value;
}

void MetricsRegistry::AddToGauge(std::string_view name, double delta) {
  gauges_[Intern(&gauges_, &gauge_index_, name)].value += delta;
}

void MetricsRegistry::AddToGauge(std::string_view name,
                                 const MetricLabels& labels, double delta) {
  gauges_[Intern(&gauges_, &gauge_index_, name, labels)].value += delta;
}

double MetricsRegistry::gauge(std::string_view name) const {
  const auto it = gauge_index_.find(name);
  return it == gauge_index_.end() ? 0.0 : gauges_[it->second].value;
}

double MetricsRegistry::gauge(std::string_view name,
                              const MetricLabels& labels) const {
  return labels.empty() ? gauge(name) : gauge(MetricSeriesKey(name, labels));
}

void MetricsRegistry::Observe(std::string_view name, double value) {
  histograms_[Intern(&histograms_, &histogram_index_, name)].value.Add(value);
}

void MetricsRegistry::Observe(std::string_view name, const MetricLabels& labels,
                              double value) {
  histograms_[Intern(&histograms_, &histogram_index_, name, labels)].value.Add(
      value);
}

const MetricHistogram* MetricsRegistry::histogram(std::string_view name) const {
  const auto it = histogram_index_.find(name);
  return it == histogram_index_.end() ? nullptr
                                      : &histograms_[it->second].value;
}

const MetricHistogram* MetricsRegistry::histogram(
    std::string_view name, const MetricLabels& labels) const {
  return labels.empty() ? histogram(name)
                        : histogram(MetricSeriesKey(name, labels));
}

HistogramHandle MetricsRegistry::EnableSketchHistogram(
    std::string_view name, const MetricLabels& labels, double relative_error) {
  const HistogramHandle h = HistogramSeries(name, labels);
  histograms_[h.idx_].value.EnableSketch(relative_error);
  return h;
}

std::map<std::string, int64_t, std::less<>> MetricsRegistry::CountersSorted()
    const {
  std::map<std::string, int64_t, std::less<>> out;
  for (const auto& s : counters_) {
    out.emplace(s.key, s.value);
  }
  return out;
}

std::map<std::string, double, std::less<>> MetricsRegistry::GaugesSorted()
    const {
  std::map<std::string, double, std::less<>> out;
  for (const auto& s : gauges_) {
    out.emplace(s.key, s.value);
  }
  return out;
}

std::map<std::string, const MetricHistogram*, std::less<>>
MetricsRegistry::HistogramsSorted() const {
  std::map<std::string, const MetricHistogram*, std::less<>> out;
  for (const auto& s : histograms_) {
    out.emplace(s.key, &s.value);
  }
  return out;
}

std::string MetricsRegistry::Report() const {
  std::string out;
  for (const auto& [name, value] : CountersSorted()) {
    out += StrFormat("counter %-48s %lld\n", name.c_str(),
                     static_cast<long long>(value));
  }
  for (const auto& [name, value] : GaugesSorted()) {
    out += StrFormat("gauge   %-48s %.6g\n", name.c_str(), value);
  }
  for (const auto& [name, hist] : HistogramsSorted()) {
    out += StrFormat("hist    %-48s %s\n", name.c_str(),
                     hist->Summary().c_str());
  }
  return out;
}

void MetricsRegistry::Clear() {
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
  counter_index_.clear();
  gauge_index_.clear();
  histogram_index_.clear();
  labeled_series_per_name_.clear();
  overflowed_series_events_ = 0;
}

}  // namespace udc
