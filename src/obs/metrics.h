// Telemetry registry.
//
// The paper's runtime "collects the feedback and performs adaptive
// optimizations" (sec. 3, Design Principle 1); this registry is that feedback
// channel. Counters, gauges and histograms are created on first use and
// addressed by name, so any layer can publish without plumbing.
//
// Metric names follow `layer.noun_verb` (e.g. "exec.cold_starts",
// "core.run_end_to_end_ms"); tools/check_metric_names.sh enforces the
// convention. A series may carry labels — `IncrementCounter("sched.placed",
// {{"module", "A1"}})` — which are folded into the stored key as
// `name{k="v",...}` with keys sorted, Prometheus-style. The exposition and
// JSON writers in src/obs/exposition.h split the key back apart.

#ifndef UDC_SRC_OBS_METRICS_H_
#define UDC_SRC_OBS_METRICS_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "src/common/histogram.h"

namespace udc {

using MetricLabels = std::vector<std::pair<std::string, std::string>>;

// "name" or `name{k="v",k2="v2"}` with keys sorted — the canonical series
// key labeled metrics are stored under.
std::string MetricSeriesKey(std::string_view name, const MetricLabels& labels);

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  void IncrementCounter(std::string_view name, int64_t delta = 1);
  void IncrementCounter(std::string_view name, const MetricLabels& labels,
                        int64_t delta = 1);
  int64_t counter(std::string_view name) const;
  int64_t counter(std::string_view name, const MetricLabels& labels) const;

  void SetGauge(std::string_view name, double value);
  void SetGauge(std::string_view name, const MetricLabels& labels,
                double value);
  void AddToGauge(std::string_view name, double delta);
  void AddToGauge(std::string_view name, const MetricLabels& labels,
                  double delta);
  double gauge(std::string_view name) const;
  double gauge(std::string_view name, const MetricLabels& labels) const;

  void Observe(std::string_view name, double value);
  void Observe(std::string_view name, const MetricLabels& labels, double value);
  const Histogram* histogram(std::string_view name) const;
  const Histogram* histogram(std::string_view name,
                             const MetricLabels& labels) const;

  // Full series maps (keyed by MetricSeriesKey), for the exposition writers.
  const std::map<std::string, int64_t, std::less<>>& counters() const {
    return counters_;
  }
  const std::map<std::string, double, std::less<>>& gauges() const {
    return gauges_;
  }
  const std::map<std::string, Histogram, std::less<>>& histograms() const {
    return histograms_;
  }

  // Multi-line dump of every metric, sorted by name; used by tools.
  std::string Report() const;

  void Clear();

 private:
  std::map<std::string, int64_t, std::less<>> counters_;
  std::map<std::string, double, std::less<>> gauges_;
  std::map<std::string, Histogram, std::less<>> histograms_;
};

}  // namespace udc

#endif  // UDC_SRC_OBS_METRICS_H_
