// Telemetry registry.
//
// The paper's runtime "collects the feedback and performs adaptive
// optimizations" (sec. 3, Design Principle 1); this registry is that feedback
// channel. Counters, gauges and histograms are created on first use and
// addressed by name, so any layer can publish without plumbing.
//
// Metric names follow `layer.noun_verb` (e.g. "exec.cold_starts",
// "core.run_end_to_end_ms"); tools/check_metric_names.sh enforces the
// convention. A series may carry labels — `IncrementCounter("sched.placed",
// {{"module", "A1"}})` — which are folded into the stored key as
// `name{k="v",...}` with keys sorted, Prometheus-style. The exposition and
// JSON writers in src/obs/exposition.h split the key back apart.
//
// Hot paths should not pay for name hashing or label formatting on every
// event. A call site that fires often interns its series once —
//
//   handle_ = metrics.CounterSeries("net.messages_sent");
//   ...
//   metrics.Increment(handle_);   // one indexed add, no hashing, no alloc
//
// — and the registry stores all series in insertion-ordered deques with an
// unordered index, so even the string-addressed calls are a single hash
// lookup. Sorted, Prometheus-style views are built only at export time
// (CountersSorted() & co).

#ifndef UDC_SRC_OBS_METRICS_H_
#define UDC_SRC_OBS_METRICS_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/common/histogram.h"
#include "src/common/sketch_histogram.h"

namespace udc {

using MetricLabels = std::vector<std::pair<std::string, std::string>>;

// "name" or `name{k="v",k2="v2"}` with keys sorted — the canonical series
// key labeled metrics are stored under.
std::string MetricSeriesKey(std::string_view name, const MetricLabels& labels);

// A histogram series: exact by default (every sample kept — the differential
// oracle), switchable per-series to a bounded-memory SketchHistogram for
// always-on telemetry (SLO windows, million-tenant scale-out). The accessor
// surface matches Histogram, so exposition and assertions are mode-blind.
class MetricHistogram {
 public:
  void Add(double value) {
    if (sketch_ != nullptr) {
      sketch_->Add(value);
    } else {
      exact_.Add(value);
    }
  }

  // Switches this series to sketch mode, replaying any samples recorded so
  // far. Idempotent; a series never switches back (the exact samples are
  // gone by design).
  void EnableSketch(double relative_error = 0.01);
  bool sketch_mode() const { return sketch_ != nullptr; }
  // The underlying sketch, or nullptr in exact mode. The SLO engine snapshots
  // these for sliding-window diffs.
  const SketchHistogram* sketch() const { return sketch_.get(); }
  const Histogram* exact() const {
    return sketch_ != nullptr ? nullptr : &exact_;
  }

  int64_t count() const {
    return sketch_ != nullptr ? sketch_->count() : exact_.count();
  }
  bool empty() const { return count() == 0; }
  double Min() const { return sketch_ ? sketch_->Min() : exact_.Min(); }
  double Max() const { return sketch_ ? sketch_->Max() : exact_.Max(); }
  double Mean() const { return sketch_ ? sketch_->Mean() : exact_.Mean(); }
  double Sum() const { return sketch_ ? sketch_->Sum() : exact_.Sum(); }
  double Stddev() const {
    return sketch_ ? sketch_->Stddev() : exact_.Stddev();
  }
  double Quantile(double q) const {
    return sketch_ ? sketch_->Quantile(q) : exact_.Quantile(q);
  }
  double Median() const { return Quantile(0.5); }
  double P99() const { return Quantile(0.99); }
  std::string Summary() const {
    return sketch_ ? sketch_->Summary() : exact_.Summary();
  }

  void Clear() {
    exact_.Clear();
    if (sketch_ != nullptr) {
      sketch_->Clear();
    }
  }

 private:
  Histogram exact_;
  std::unique_ptr<SketchHistogram> sketch_;
};

class MetricsRegistry {
 public:
  // Interned series handles. Obtained once (CounterSeries & co), then used
  // for every subsequent event. Handles stay valid for the life of the
  // registry; Clear() invalidates them.
  class CounterHandle {
   public:
    bool valid() const { return idx_ != kUnset; }

   private:
    friend class MetricsRegistry;
    friend class ShardObsBuffer;  // parallel kernel: buffered deltas
    static constexpr uint32_t kUnset = ~uint32_t{0};
    uint32_t idx_ = kUnset;
  };
  class GaugeHandle {
   public:
    bool valid() const { return idx_ != kUnset; }

   private:
    friend class MetricsRegistry;
    friend class ShardObsBuffer;  // parallel kernel: buffered deltas
    static constexpr uint32_t kUnset = ~uint32_t{0};
    uint32_t idx_ = kUnset;
  };
  class HistogramHandle {
   public:
    bool valid() const { return idx_ != kUnset; }

   private:
    friend class MetricsRegistry;
    static constexpr uint32_t kUnset = ~uint32_t{0};
    uint32_t idx_ = kUnset;
  };

  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // --- Interning. Pays the label sort + key format once per series.
  CounterHandle CounterSeries(std::string_view name,
                              const MetricLabels& labels = {});
  GaugeHandle GaugeSeries(std::string_view name,
                          const MetricLabels& labels = {});
  HistogramHandle HistogramSeries(std::string_view name,
                                  const MetricLabels& labels = {});

  // --- Handle fast path: indexed access, zero hashing, zero allocation.
  void Increment(CounterHandle h, int64_t delta = 1) {
    counters_[h.idx_].value += delta;
  }
  void Set(GaugeHandle h, double value) { gauges_[h.idx_].value = value; }
  void Add(GaugeHandle h, double delta) { gauges_[h.idx_].value += delta; }
  void Observe(HistogramHandle h, double value) {
    histograms_[h.idx_].value.Add(value);
  }
  int64_t value(CounterHandle h) const { return counters_[h.idx_].value; }
  double value(GaugeHandle h) const { return gauges_[h.idx_].value; }
  const MetricHistogram& value(HistogramHandle h) const {
    return histograms_[h.idx_].value;
  }

  // --- String-addressed API (one hash lookup when the series exists).
  void IncrementCounter(std::string_view name, int64_t delta = 1);
  void IncrementCounter(std::string_view name, const MetricLabels& labels,
                        int64_t delta = 1);
  int64_t counter(std::string_view name) const;
  int64_t counter(std::string_view name, const MetricLabels& labels) const;

  void SetGauge(std::string_view name, double value);
  void SetGauge(std::string_view name, const MetricLabels& labels,
                double value);
  void AddToGauge(std::string_view name, double delta);
  void AddToGauge(std::string_view name, const MetricLabels& labels,
                  double delta);
  double gauge(std::string_view name) const;
  double gauge(std::string_view name, const MetricLabels& labels) const;

  void Observe(std::string_view name, double value);
  void Observe(std::string_view name, const MetricLabels& labels, double value);
  const MetricHistogram* histogram(std::string_view name) const;
  const MetricHistogram* histogram(std::string_view name,
                                   const MetricLabels& labels) const;

  // Switches a histogram series (created if absent) to bounded-memory sketch
  // mode; existing samples are replayed. The SLO engine calls this for its
  // sources so sliding windows never retain raw samples.
  HistogramHandle EnableSketchHistogram(std::string_view name,
                                        const MetricLabels& labels = {},
                                        double relative_error = 0.01);

  // --- Label-cardinality budget.
  //
  // At million-tenant scale an unbounded tenant label would mint a series
  // per tenant. With a limit K > 0, only the first K distinct label sets of
  // each base name get their own series; later label sets fold into a single
  // `name{overflow="true"}` aggregate (top-K by first touch). 0 = unlimited
  // (the default — differential tests rely on exact series layouts).
  void SetLabelCardinalityLimit(size_t limit) {
    label_cardinality_limit_ = limit;
  }
  size_t label_cardinality_limit() const { return label_cardinality_limit_; }
  // Events that were folded into an overflow aggregate so far.
  uint64_t overflowed_series_events() const {
    return overflowed_series_events_;
  }

  size_t counter_series_count() const { return counters_.size(); }
  size_t gauge_series_count() const { return gauges_.size(); }
  size_t histogram_series_count() const { return histograms_.size(); }

  // Sorted-by-key views (keys are MetricSeriesKey strings), built on demand
  // for the exposition writers. Histogram pointers stay valid until Clear().
  std::map<std::string, int64_t, std::less<>> CountersSorted() const;
  std::map<std::string, double, std::less<>> GaugesSorted() const;
  std::map<std::string, const MetricHistogram*, std::less<>> HistogramsSorted()
      const;

  // Multi-line dump of every metric, sorted by name; used by tools.
  std::string Report() const;

  // Drops every series. Outstanding handles become invalid.
  void Clear();

 private:
  // The parallel kernel's barrier flush applies buffered shard deltas
  // directly to the series stores (src/obs/shard_buffer.h). It runs on the
  // coordinator thread with all workers quiesced, so it needs no locking —
  // just index access.
  friend class ObsFlusher;

  struct TransparentHash {
    using is_transparent = void;
    size_t operator()(std::string_view s) const {
      return std::hash<std::string_view>{}(s);
    }
  };
  template <typename T>
  struct Series {
    std::string key;
    T value;
  };
  using SeriesIndex =
      std::unordered_map<std::string, uint32_t, TransparentHash,
                         std::equal_to<>>;

  template <typename T>
  uint32_t Intern(std::deque<Series<T>>* store, SeriesIndex* index,
                  std::string_view name, const MetricLabels& labels);
  template <typename T>
  uint32_t Intern(std::deque<Series<T>>* store, SeriesIndex* index,
                  std::string_view key);

  // Deques keep element addresses stable across interning, so histogram(...)
  // pointers handed to callers survive later series creation.
  std::deque<Series<int64_t>> counters_;
  std::deque<Series<double>> gauges_;
  std::deque<Series<MetricHistogram>> histograms_;
  SeriesIndex counter_index_;
  SeriesIndex gauge_index_;
  SeriesIndex histogram_index_;

  // Labeled-series count per base name (all stores share the budget; a name
  // is one logical metric regardless of type).
  std::unordered_map<std::string, size_t, TransparentHash, std::equal_to<>>
      labeled_series_per_name_;
  size_t label_cardinality_limit_ = 0;
  uint64_t overflowed_series_events_ = 0;
};

// Handle types are spelled without the class qualifier at call sites.
using CounterHandle = MetricsRegistry::CounterHandle;
using GaugeHandle = MetricsRegistry::GaugeHandle;
using HistogramHandle = MetricsRegistry::HistogramHandle;

}  // namespace udc

#endif  // UDC_SRC_OBS_METRICS_H_
