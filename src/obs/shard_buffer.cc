#include "src/obs/shard_buffer.h"

#include <algorithm>
#include <utility>

#include "src/obs/flight_recorder.h"

namespace udc {

ShardObsBuffer::Record& ShardObsBuffer::Append(Record::Kind kind, SimTime at) {
  records_.emplace_back();
  Record& rec = records_.back();
  rec.kind = kind;
  rec.time = at;
  rec.seq = next_seq_++;
  return rec;
}

void ShardObsBuffer::CounterAdd(CounterHandle h, int64_t delta, SimTime at) {
  Record& rec = Append(Record::kCounterAdd, at);
  rec.handle = h.idx_;
  rec.i64 = delta;
}

void ShardObsBuffer::GaugeSet(GaugeHandle h, double value, SimTime at) {
  Record& rec = Append(Record::kGaugeSet, at);
  rec.handle = h.idx_;
  rec.f64 = value;
}

void ShardObsBuffer::GaugeAdd(GaugeHandle h, double delta, SimTime at) {
  Record& rec = Append(Record::kGaugeAdd, at);
  rec.handle = h.idx_;
  rec.f64 = delta;
}

void ShardObsBuffer::CompletedSpan(SimTime start, SimTime end,
                                   std::string_view category,
                                   std::string_view name, uint32_t label_set,
                                   bool dropped) {
  Record& rec = Append(Record::kSpan, end);
  rec.start = start;
  rec.category = category;
  rec.name = name;
  rec.handle = label_set;
  rec.dropped = dropped;
  if (flight_ != nullptr) {
    flight_->RecordSpan(flight_shard_, start, end, category, name);
  }
}

void ShardObsBuffer::CompletedSpanDynamic(SimTime start, SimTime end,
                                          std::string_view category,
                                          std::string_view name,
                                          std::string type_label,
                                          bool dropped) {
  Record& rec = Append(Record::kSpan, end);
  rec.start = start;
  rec.category = category;
  rec.name = name;
  rec.handle = 0;
  rec.dropped = dropped;
  rec.s1 = std::move(type_label);
  if (flight_ != nullptr) {
    flight_->RecordSpan(flight_shard_, start, end, category, name);
  }
}

void ShardObsBuffer::TraceLine(SimTime at, std::string category,
                               std::string detail) {
  Record& rec = Append(Record::kTrace, at);
  if (flight_ != nullptr) {
    flight_->RecordTrace(flight_shard_, at, category, detail);
  }
  rec.s1 = std::move(category);
  rec.s2 = std::move(detail);
}

size_t ObsFlusher::Flush(const std::vector<ShardObsBuffer*>& buffers,
                         const ObsFlushTargets& targets) {
  scratch_.clear();
  for (uint32_t shard = 0; shard < buffers.size(); ++shard) {
    ShardObsBuffer* buffer = buffers[shard];
    if (buffer == nullptr) {
      continue;
    }
    for (const ShardObsBuffer::Record& rec : buffer->records_) {
      scratch_.push_back(Key{rec.time, shard, rec.seq, &rec});
    }
  }
  // Keys are unique per record ((shard, seq) never repeats), so plain sort
  // yields one deterministic total order without stable_sort's allocation.
  std::sort(scratch_.begin(), scratch_.end(), [](const Key& a, const Key& b) {
    if (a.time != b.time) {
      return a.time < b.time;
    }
    if (a.shard != b.shard) {
      return a.shard < b.shard;
    }
    return a.seq < b.seq;
  });

  if (targets.recorder != nullptr) {
    // Spans replayed below already sit in their shard's flight ring; keep
    // the coordinator's tracer end-sink from taping them a second time.
    targets.recorder->set_in_flush_replay(true);
  }
  for (const Key& key : scratch_) {
    const ShardObsBuffer::Record& rec = *key.rec;
    switch (rec.kind) {
      case ShardObsBuffer::Record::kCounterAdd:
        targets.metrics->counters_[rec.handle].value += rec.i64;
        break;
      case ShardObsBuffer::Record::kGaugeSet:
        targets.metrics->gauges_[rec.handle].value = rec.f64;
        break;
      case ShardObsBuffer::Record::kGaugeAdd:
        targets.metrics->gauges_[rec.handle].value += rec.f64;
        break;
      case ShardObsBuffer::Record::kSpan: {
        uint64_t id = 0;
        if (rec.handle != 0 || rec.s1.empty()) {
          id = targets.spans->BeginWithSetAt(rec.start, rec.category, rec.name,
                                             rec.handle);
        } else {
          id = targets.spans->BeginAt(rec.start, std::string(rec.category),
                                      std::string(rec.name),
                                      {{"type", rec.s1}});
        }
        if (rec.dropped) {
          targets.spans->AddLabel(id, "dropped", "true");
        }
        targets.spans->EndAt(id, rec.time);
        break;
      }
      case ShardObsBuffer::Record::kTrace:
        if (targets.trace) {
          targets.trace(rec.time, rec.s1, rec.s2);
        }
        break;
    }
  }

  if (targets.recorder != nullptr) {
    targets.recorder->set_in_flush_replay(false);
  }

  for (ShardObsBuffer* buffer : buffers) {
    if (buffer != nullptr) {
      buffer->records_.clear();
    }
  }
  return scratch_.size();
}

}  // namespace udc
