// Per-shard observability buffers for the parallel simulation kernel.
//
// Worker shards must not touch the shared MetricsRegistry / SpanTracer /
// TraceRecorder while other shards are executing — those structures are
// plain single-writer containers and the obs hot path (~0.4ns handle
// increments) must stay free of atomics. Instead, every worker shard owns a
// ShardObsBuffer: an append-only vector of POD-ish records (counter deltas,
// gauge writes, completed span intervals, trace lines) stamped with the
// simulated time and a per-shard emission sequence.
//
// At each window barrier the coordinator — and only the coordinator — merges
// every shard's records in canonical (time, shard, seq) order and applies
// them to the shared sinks (ObsFlusher::Flush). The canonical order makes
// the merged telemetry a pure function of the seed and the shard map: the
// same run at 1, 2, 4 or 8 worker threads produces byte-identical traces and
// metric snapshots.
//
// Steady state appends reuse vector capacity and carry no strings, so a warm
// buffer records with zero heap allocation; the string fields exist only for
// cold paths (uninterned message types, ad-hoc trace lines).

#ifndef UDC_SRC_OBS_SHARD_BUFFER_H_
#define UDC_SRC_OBS_SHARD_BUFFER_H_

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/units.h"
#include "src/obs/metrics.h"
#include "src/obs/span.h"

namespace udc {

class FlightRecorder;

class ShardObsBuffer {
 public:
  ShardObsBuffer() = default;
  ShardObsBuffer(const ShardObsBuffer&) = delete;
  ShardObsBuffer& operator=(const ShardObsBuffer&) = delete;

  // Tees completed spans and trace lines into `recorder`'s ring for `shard`
  // as they are produced — the flight recorder's worker-side tap. The ring
  // append happens at emission time on the owning shard thread (each ring is
  // single-writer), so the black box has the records even if the run dies
  // before the next barrier flush.
  void SetFlightRing(FlightRecorder* recorder, uint32_t shard) {
    flight_ = recorder;
    flight_shard_ = shard;
  }

  // --- Producer side (owning shard thread only).

  void CounterAdd(CounterHandle h, int64_t delta, SimTime at);
  void GaugeSet(GaugeHandle h, double value, SimTime at);
  void GaugeAdd(GaugeHandle h, double delta, SimTime at);

  // A span interval that already ran to completion on this shard (e.g. a
  // fabric message: start = sent, end = delivered). `category` and `name`
  // must outlive the flush — string literals in practice. `label_set` is a
  // SpanTracer::InternLabelSet handle (0 = none).
  void CompletedSpan(SimTime start, SimTime end, std::string_view category,
                     std::string_view name, uint32_t label_set,
                     bool dropped = false);
  // Cold-path variant carrying a per-span "type" label value (uninterned
  // fabric message types). Allocates; not for the steady-state path.
  void CompletedSpanDynamic(SimTime start, SimTime end,
                            std::string_view category, std::string_view name,
                            std::string type_label, bool dropped = false);

  // A legacy trace line (Simulation::Trace equivalent). Allocates.
  void TraceLine(SimTime at, std::string category, std::string detail);

  bool empty() const { return records_.empty(); }
  size_t pending() const { return records_.size(); }

 private:
  friend class ObsFlusher;

  struct Record {
    enum Kind : uint8_t {
      kCounterAdd,
      kGaugeSet,
      kGaugeAdd,
      kSpan,
      kTrace,
    };
    Kind kind;
    bool dropped = false;
    uint32_t handle = 0;     // counter/gauge index, or span label-set handle
    uint64_t seq = 0;        // per-shard emission order
    SimTime time;            // sort key: span end, counter/gauge/trace time
    SimTime start;           // span start
    std::string_view category;  // span literals (caller-owned)
    std::string_view name;
    int64_t i64 = 0;
    double f64 = 0;
    std::string s1, s2;  // cold: dynamic type label / trace category+detail
  };

  Record& Append(Record::Kind kind, SimTime at);

  std::vector<Record> records_;
  uint64_t next_seq_ = 0;
  FlightRecorder* flight_ = nullptr;
  uint32_t flight_shard_ = 0;
};

// Destination sinks for a flush. `trace` is Simulation::Trace (or
// equivalent); may be empty when no legacy trace mirroring is wanted.
// `recorder` (optional) is bracketed with set_in_flush_replay while spans
// replay into the tracer, so a tracer end-sink that feeds the flight
// recorder doesn't double-record worker spans already taped by their shard.
struct ObsFlushTargets {
  MetricsRegistry* metrics = nullptr;
  SpanTracer* spans = nullptr;
  std::function<void(SimTime, std::string_view, std::string_view)> trace;
  FlightRecorder* recorder = nullptr;
};

// Coordinator-side merge-and-apply. Owns its scratch so repeated flushes on
// a warm steady state allocate nothing.
class ObsFlusher {
 public:
  // Applies every pending record from `buffers` (indexed by shard id; null
  // entries are skipped) to `targets` in canonical (time, shard, seq) order,
  // then resets the buffers. Must be called with all producers quiesced.
  // Returns the number of records applied — the kernel's flush-batching
  // stats count real work, not flush invocations.
  size_t Flush(const std::vector<ShardObsBuffer*>& buffers,
               const ObsFlushTargets& targets);

 private:
  struct Key {
    SimTime time;
    uint32_t shard;
    uint64_t seq;
    const ShardObsBuffer::Record* rec;
  };
  std::vector<Key> scratch_;
};

}  // namespace udc

#endif  // UDC_SRC_OBS_SHARD_BUFFER_H_
