#include "src/obs/slo.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "src/common/strings.h"

namespace udc {

std::string_view SloStateName(SloState state) {
  switch (state) {
    case SloState::kOk:
      return "OK";
    case SloState::kWarn:
      return "WARN";
    case SloState::kBreach:
      return "BREACH";
  }
  return "?";
}

void SloEngine::AddObjective(SloSpec spec) {
  Objective obj;
  switch (spec.kind) {
    case SloSpec::SourceKind::kHistogramQuantile:
      // Sketch mode is what makes the sliding window affordable: each tick
      // snapshots ~25KB of buckets instead of every sample, and the window
      // distribution is a cumulative diff.
      obj.hist = metrics_->EnableSketchHistogram(spec.source, spec.labels);
      break;
    case SloSpec::SourceKind::kCounterRate:
      obj.counter = metrics_->CounterSeries(spec.source, spec.labels);
      break;
    case SloSpec::SourceKind::kGauge:
    case SloSpec::SourceKind::kProbe:
      break;
  }
  obj.measured_gauge = metrics_->GaugeSeries(spec.name);
  obj.state_gauge = metrics_->GaugeSeries(spec.name + ".state");
  obj.spec = std::move(spec);
  objectives_.push_back(std::move(obj));
}

double SloEngine::Measure(Objective* obj, SimTime now) {
  const SloSpec& spec = obj->spec;
  switch (spec.kind) {
    case SloSpec::SourceKind::kGauge:
      return metrics_->gauge(spec.source, spec.labels);
    case SloSpec::SourceKind::kProbe:
      return spec.probe ? spec.probe() : 0.0;
    default:
      break;
  }

  // Windowed kinds: append the current cumulative snapshot, then diff
  // against the oldest snapshot at or before the window's left edge.
  Snapshot snap;
  snap.at = now;
  if (spec.kind == SloSpec::SourceKind::kHistogramQuantile) {
    const SketchHistogram* sketch = metrics_->value(obj->hist).sketch();
    if (sketch != nullptr) {
      snap.sketch = std::make_unique<SketchHistogram>(*sketch);
    }
  } else {
    snap.counter = metrics_->value(obj->counter);
  }
  obj->snapshots.push_back(std::move(snap));

  // Keep one snapshot at or before `now - window` as the window base; drop
  // anything older. The base stays, so the deque is bounded by
  // window / tick_period + 1 entries.
  const SimTime left_edge = now - spec.window;
  while (obj->snapshots.size() >= 2 && obj->snapshots[1].at <= left_edge) {
    obj->snapshots.pop_front();
  }
  const Snapshot& base = obj->snapshots.front();
  const Snapshot& cur = obj->snapshots.back();

  if (spec.kind == SloSpec::SourceKind::kCounterRate) {
    if (&base == &cur) {
      // First tick: no earlier snapshot, but counters start at zero when
      // the simulation does, so the rate since t=0 is well defined. Without
      // this a kGe throughput objective would read 0 events/sec on its
      // first evaluation and spuriously breach.
      const double seconds = now.seconds();
      return seconds > 0 ? static_cast<double>(cur.counter) / seconds
                         : static_cast<double>(cur.counter);
    }
    const SimTime span = cur.at - base.at;
    const double seconds =
        span > SimTime(0) ? span.seconds() : spec.window.seconds();
    return static_cast<double>(cur.counter - base.counter) /
           (seconds > 0 ? seconds : 1.0);
  }

  if (cur.sketch == nullptr) {
    return 0.0;
  }
  if (&base == &cur || base.sketch == nullptr) {
    return cur.sketch->Quantile(spec.quantile);
  }
  return cur.sketch->DiffSince(*base.sketch).Quantile(spec.quantile);
}

SloState SloEngine::Judge(const SloSpec& spec, double measured) const {
  // Burn-rate judgement via threshold utilization: >1 is a breach, inside
  // the warn band the error budget is burning.
  double util;
  if (spec.cmp == SloSpec::Cmp::kLe) {
    if (spec.threshold <= 0.0) {
      util = measured > spec.threshold ? 2.0 : 0.0;
    } else {
      util = measured / spec.threshold;
    }
  } else {
    if (measured <= 0.0) {
      util = spec.threshold > 0.0 ? 2.0 : 0.0;
    } else {
      util = spec.threshold / measured;
    }
  }
  if (util > 1.0) {
    return SloState::kBreach;
  }
  if (util > spec.warn_ratio) {
    return SloState::kWarn;
  }
  return SloState::kOk;
}

void SloEngine::Tick(SimTime now) {
  if (now <= last_tick_ && !verdicts_.empty()) {
    return;  // out-of-order or duplicate tick
  }
  last_tick_ = now;
  verdicts_.clear();
  verdicts_.reserve(objectives_.size());
  for (Objective& obj : objectives_) {
    const double measured = Measure(&obj, now);
    const SloState next = Judge(obj.spec, measured);
    const bool entered_breach =
        next == SloState::kBreach && obj.state != SloState::kBreach;
    obj.state = next;
    obj.ever_breached = obj.ever_breached || next == SloState::kBreach;

    metrics_->Set(obj.measured_gauge, measured);
    metrics_->Set(obj.state_gauge, static_cast<double>(next));

    SloVerdict verdict;
    verdict.name = obj.spec.name;
    verdict.state = next;
    verdict.measured = measured;
    verdict.threshold = obj.spec.threshold;
    verdict.evaluated_at = now;
    verdict.ever_breached = obj.ever_breached;
    verdicts_.push_back(verdict);
    if (entered_breach && on_breach_) {
      on_breach_(verdicts_.back());
    }
  }
}

const SloVerdict* SloEngine::Find(std::string_view name) const {
  for (const SloVerdict& v : verdicts_) {
    if (v.name == name) {
      return &v;
    }
  }
  return nullptr;
}

SloState SloEngine::worst_state() const {
  SloState worst = SloState::kOk;
  for (const SloVerdict& v : verdicts_) {
    if (static_cast<int>(v.state) > static_cast<int>(worst)) {
      worst = v.state;
    }
  }
  return worst;
}

std::string SloEngine::Report() const {
  std::string out = StrFormat("%-44s %-7s %12s %12s\n", "objective", "state",
                              "measured", "threshold");
  for (const SloVerdict& v : verdicts_) {
    out += StrFormat("%-44s %-7s %12.4g %12.4g%s\n", v.name.c_str(),
                     std::string(SloStateName(v.state)).c_str(), v.measured,
                     v.threshold, v.ever_breached ? "  (breached)" : "");
  }
  if (verdicts_.empty()) {
    out += "(no objectives evaluated — register SloSpecs and Tick)\n";
  }
  return out;
}

}  // namespace udc
