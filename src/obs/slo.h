// Declarative service-level objectives evaluated on sliding sim-time windows.
//
// The paper's runtime "collects the feedback and performs adaptive
// optimizations" (Design Principle 1); SLOs are the feedback channel's
// judgement layer. An objective names a measurement source — a histogram
// quantile, a counter rate, a gauge, or an arbitrary probe — a comparison
// against a threshold, and a window:
//
//   SloSpec spec;
//   spec.name = "slo.sched.place_latency_p99";
//   spec.kind = SloSpec::SourceKind::kHistogramQuantile;
//   spec.source = "sched.place_latency_us";
//   spec.quantile = 0.99;
//   spec.threshold = 500.0;                  // microseconds
//   spec.window = SimTime::Seconds(10);
//   engine.AddObjective(std::move(spec));
//
// The engine is driven by Tick(now) — from a kernel timer
// (Simulation::ArmSloTicks), a bench loop, or a test. Each tick snapshots
// the sources and evaluates every objective over [now - window, now]:
// histogram sources are forced into bounded-memory sketch mode
// (SketchHistogram) so the window distribution is a snapshot diff, never a
// sample scan; counter sources diff cumulative values into a rate.
//
// Verdicts carry a burn-rate state — OK, WARN (inside warn_ratio of the
// threshold), BREACH — exported as `<name>` / `<name>.state` gauges through
// the normal Prometheus/JSON writers and queryable via `udcctl slo`. A
// transition into BREACH fires the on_breach callback once, which is how the
// flight recorder's black-box dump gets triggered.
//
// Layering: src/obs only — the engine never sees the Simulation. Timer glue
// lives with the owner that has a clock.

#ifndef UDC_SRC_OBS_SLO_H_
#define UDC_SRC_OBS_SLO_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/sketch_histogram.h"
#include "src/common/units.h"
#include "src/obs/metrics.h"

namespace udc {

enum class SloState {
  kOk = 0,
  kWarn = 1,
  kBreach = 2,
};

std::string_view SloStateName(SloState state);

struct SloSpec {
  enum class SourceKind {
    kHistogramQuantile,  // Quantile(`quantile`) of `source` over the window
    kCounterRate,        // events/sec of counter `source` over the window
    kGauge,              // instantaneous value of gauge `source`
    kProbe,              // instantaneous value of `probe()`
  };
  enum class Cmp {
    kLe,  // healthy while measured <= threshold
    kGe,  // healthy while measured >= threshold
  };

  // `slo.<layer>.<objective>` (tools/check_metric_names.sh enforces it).
  std::string name;
  SourceKind kind = SourceKind::kHistogramQuantile;
  std::string source;    // metric name for registry-backed kinds
  MetricLabels labels;   // label set of the source series
  double quantile = 0.99;
  std::function<double()> probe;  // kProbe only
  Cmp cmp = Cmp::kLe;
  double threshold = 0.0;
  SimTime window = SimTime::Seconds(10);
  // WARN once measured crosses warn_ratio * threshold (kLe) or
  // threshold / warn_ratio-scaled headroom (kGe): the budget is burning.
  double warn_ratio = 0.8;
};

struct SloVerdict {
  std::string name;
  SloState state = SloState::kOk;
  double measured = 0.0;
  double threshold = 0.0;
  SimTime evaluated_at;
  bool ever_breached = false;
};

class SloEngine {
 public:
  explicit SloEngine(MetricsRegistry* metrics) : metrics_(metrics) {}
  SloEngine(const SloEngine&) = delete;
  SloEngine& operator=(const SloEngine&) = delete;

  // Registers an objective. Histogram sources switch to sketch mode here
  // (creating the series if needed) so every later Observe lands bucketed.
  void AddObjective(SloSpec spec);
  size_t objective_count() const { return objectives_.size(); }

  // Snapshots sources and (re)evaluates every objective at `now`. Ticks must
  // be monotonic; out-of-order ticks are ignored. Evaluation writes the
  // `<name>` and `<name>.state` gauges and fires on_breach on OK/WARN ->
  // BREACH transitions.
  void Tick(SimTime now);
  // Alias for call sites that evaluate once at a known point (benches,
  // udcctl) rather than on a timer cadence.
  void EvaluateNow(SimTime now) { Tick(now); }

  const std::vector<SloVerdict>& verdicts() const { return verdicts_; }
  // Verdict by objective name, or nullptr.
  const SloVerdict* Find(std::string_view name) const;
  SloState worst_state() const;
  bool AllOk() const { return worst_state() != SloState::kBreach; }

  // Fired once per transition into BREACH (not per tick while breached).
  void set_on_breach(std::function<void(const SloVerdict&)> cb) {
    on_breach_ = std::move(cb);
  }

  // Human-readable table, one objective per line; `udcctl slo` prints this.
  std::string Report() const;

 private:
  struct Snapshot {
    SimTime at;
    // Null for non-histogram kinds — a counter objective's snapshots are a
    // timestamp and one integer, not a bucket array.
    std::unique_ptr<SketchHistogram> sketch;  // kHistogramQuantile
    int64_t counter = 0;                      // kCounterRate
  };
  struct Objective {
    SloSpec spec;
    HistogramHandle hist;    // kHistogramQuantile
    CounterHandle counter;   // kCounterRate
    GaugeHandle measured_gauge;
    GaugeHandle state_gauge;
    std::deque<Snapshot> snapshots;  // oldest first; spans >= one window
    SloState state = SloState::kOk;
    bool ever_breached = false;
  };

  double Measure(Objective* obj, SimTime now);
  SloState Judge(const SloSpec& spec, double measured) const;

  MetricsRegistry* metrics_;
  // Deque: grows without relocating (Objective's snapshot deque holds
  // move-only sketch pointers, and vector growth would demand noexcept
  // moves it can't prove).
  std::deque<Objective> objectives_;
  std::vector<SloVerdict> verdicts_;
  std::function<void(const SloVerdict&)> on_breach_;
  SimTime last_tick_ = SimTime::Micros(-1);
};

}  // namespace udc

#endif  // UDC_SRC_OBS_SLO_H_
