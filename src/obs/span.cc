#include "src/obs/span.h"

#include <algorithm>

#include "src/common/strings.h"

namespace udc {

const std::string* Span::Label(std::string_view key) const {
  if (shared_labels != nullptr) {
    for (const auto& [k, v] : *shared_labels) {
      if (k == key) {
        return &v;
      }
    }
  }
  for (const auto& [k, v] : labels) {
    if (k == key) {
      return &v;
    }
  }
  return nullptr;
}

std::string Span::Detail() const {
  std::string out = name;
  if (shared_labels != nullptr) {
    for (const auto& [k, v] : *shared_labels) {
      out += " " + k + "=" + v;
    }
  }
  for (const auto& [k, v] : labels) {
    out += " " + k + "=" + v;
  }
  if (!open) {
    out += " dur=" + duration().ToString();
  }
  return out;
}

SpanTracer::SpanTracer(Clock clock) : clock_(std::move(clock)) {}

Span* SpanTracer::Mutable(uint64_t span_id) {
  if (span_id == 0 || span_id > spans_.size()) {
    return nullptr;
  }
  return &spans_[span_id - 1];
}

const Span* SpanTracer::SpanById(uint64_t span_id) const {
  if (span_id == 0 || span_id > spans_.size()) {
    return nullptr;
  }
  return &spans_[span_id - 1];
}

uint64_t SpanTracer::Begin(std::string category, std::string name,
                           SpanLabels labels, uint64_t parent) {
  return BeginAt(clock_(), std::move(category), std::move(name),
                 std::move(labels), parent);
}

uint64_t SpanTracer::BeginAt(SimTime start, std::string category,
                             std::string name, SpanLabels labels,
                             uint64_t parent) {
  if (spans_.size() >= max_spans_) {
    ++dropped_;
    return 0;
  }
  if (parent == 0) {
    parent = CurrentScope();
  }
  Span span;
  span.span_id = spans_.size() + 1;
  span.parent_span_id = parent;
  const Span* parent_span = SpanById(parent);
  span.trace_id =
      parent_span != nullptr ? parent_span->trace_id : next_trace_id_++;
  span.category = std::move(category);
  span.name = std::move(name);
  span.labels = std::move(labels);
  span.start = start;
  span.end = start;
  spans_.push_back(std::move(span));
  return spans_.back().span_id;
}

uint32_t SpanTracer::InternLabelSet(SpanLabels labels) {
  label_sets_.push_back(std::move(labels));
  return static_cast<uint32_t>(label_sets_.size());
}

uint64_t SpanTracer::BeginWithSet(std::string_view category,
                                  std::string_view name, uint32_t label_set,
                                  uint64_t parent) {
  return BeginWithSetAt(clock_(), category, name, label_set, parent);
}

uint64_t SpanTracer::BeginWithSetAt(SimTime start, std::string_view category,
                                    std::string_view name, uint32_t label_set,
                                    uint64_t parent) {
  if (spans_.size() >= max_spans_) {
    ++dropped_;
    return 0;
  }
  if (parent == 0) {
    parent = CurrentScope();
  }
  Span span;
  span.span_id = spans_.size() + 1;
  span.parent_span_id = parent;
  const Span* parent_span = SpanById(parent);
  span.trace_id =
      parent_span != nullptr ? parent_span->trace_id : next_trace_id_++;
  span.category.assign(category);
  span.name.assign(name);
  if (label_set != 0 && label_set <= label_sets_.size()) {
    span.shared_labels = &label_sets_[label_set - 1];
  }
  span.start = start;
  span.end = start;
  spans_.push_back(std::move(span));
  return spans_.back().span_id;
}

void SpanTracer::AddLabel(uint64_t span_id, std::string key,
                          std::string value) {
  Span* span = Mutable(span_id);
  if (span != nullptr) {
    span->labels.emplace_back(std::move(key), std::move(value));
  }
}

void SpanTracer::End(uint64_t span_id) { EndAt(span_id, clock_()); }

void SpanTracer::EndAt(uint64_t span_id, SimTime end) {
  Span* span = Mutable(span_id);
  if (span == nullptr || !span->open) {
    return;
  }
  span->end = std::max(end, span->start);
  span->open = false;
  closed_order_.push_back(span_id);
  if (on_end_) {
    on_end_(*span);
  }
}

void SpanTracer::PushScope(uint64_t span_id) {
  if (span_id != 0) {
    scope_stack_.push_back(span_id);
  }
}

void SpanTracer::PopScope(uint64_t span_id) {
  if (span_id != 0 && !scope_stack_.empty() && scope_stack_.back() == span_id) {
    scope_stack_.pop_back();
  }
}

uint64_t SpanTracer::CurrentScope() const {
  return scope_stack_.empty() ? 0 : scope_stack_.back();
}

void SpanTracer::Clear() {
  spans_.clear();
  closed_order_.clear();
  scope_stack_.clear();
  next_trace_id_ = 1;
  dropped_ = 0;
}

std::vector<const Span*> SpanTracer::SpansInCategory(
    std::string_view category) const {
  std::vector<const Span*> out;
  for (const Span& s : spans_) {
    if (s.category == category) {
      out.push_back(&s);
    }
  }
  return out;
}

const Span* SpanTracer::Find(std::string_view name, std::string_view label_key,
                             std::string_view label_value) const {
  for (const Span& s : spans_) {
    if (s.name != name) {
      continue;
    }
    if (label_key.empty()) {
      return &s;
    }
    const std::string* v = s.Label(label_key);
    if (v != nullptr && *v == label_value) {
      return &s;
    }
  }
  return nullptr;
}

ScopedSpan::ScopedSpan(SpanTracer* tracer, std::string category,
                       std::string name, SpanLabels labels)
    : tracer_(tracer),
      id_(tracer->Begin(std::move(category), std::move(name),
                        std::move(labels))) {
  tracer_->PushScope(id_);
}

ScopedSpan::ScopedSpan(ScopedSpan&& other) noexcept
    : tracer_(other.tracer_), id_(other.id_) {
  other.id_ = 0;
}

ScopedSpan::~ScopedSpan() {
  if (id_ != 0) {
    tracer_->PopScope(id_);
    tracer_->End(id_);
  }
}

void ScopedSpan::AddLabel(std::string key, std::string value) {
  tracer_->AddLabel(id_, std::move(key), std::move(value));
}

}  // namespace udc
