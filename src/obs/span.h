// Structured span tracing.
//
// A Span is a named, labeled interval on the simulated clock with causal
// links (trace_id / parent_span_id), replacing the flat string blobs of the
// legacy TraceRecorder at the major execution boundaries. Spans are the raw
// material for the Chrome trace export (src/obs/chrome_trace.h) and the
// per-run latency breakdown (src/obs/breakdown.h).
//
// Two usage styles:
//   * synchronous scopes — ScopedSpan (RAII); nested scopes parent
//     automatically via the tracer's scope stack.
//   * asynchronous intervals — Begin() returns a span id that a later
//     callback closes with End(); the parent is captured at Begin time.
//
// Analytic code (the DAG runtime computes stage times in closed form
// without advancing the clock) can date spans explicitly with
// BeginAt()/EndAt().

#ifndef UDC_SRC_OBS_SPAN_H_
#define UDC_SRC_OBS_SPAN_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "src/common/units.h"

namespace udc {

using SpanLabels = std::vector<std::pair<std::string, std::string>>;

struct Span {
  uint64_t trace_id = 0;
  uint64_t span_id = 0;
  uint64_t parent_span_id = 0;  // 0 = root of its trace
  std::string category;         // layer: "sched", "exec", "net", "dist", ...
  std::string name;             // e.g. "sched.place_task"
  SpanLabels labels;
  // Pre-interned labels shared across spans (SpanTracer::InternLabelSet);
  // rendered before `labels`, attached with zero per-span allocation. Owned
  // by the tracer; the pointer survives Clear().
  const SpanLabels* shared_labels = nullptr;
  SimTime start;
  SimTime end;
  bool open = true;

  SimTime duration() const { return end - start; }
  // The label value for `key` (shared labels first), or nullptr.
  const std::string* Label(std::string_view key) const;
  // "name k=v k2=v2 dur=1.2ms" — the legacy-trace-compatible rendering.
  std::string Detail() const;
};

class SpanTracer {
 public:
  using Clock = std::function<SimTime()>;
  using EndSink = std::function<void(const Span&)>;

  explicit SpanTracer(Clock clock);
  SpanTracer(const SpanTracer&) = delete;
  SpanTracer& operator=(const SpanTracer&) = delete;

  // Opens a span starting at the clock's current time. The parent defaults
  // to the innermost open scope (see PushScope); pass `parent` to override.
  // Root spans start a fresh trace id; children inherit their parent's.
  // Returns 0 (a no-op id) once the tracer is full.
  uint64_t Begin(std::string category, std::string name,
                 SpanLabels labels = {}, uint64_t parent = 0);
  uint64_t BeginAt(SimTime start, std::string category, std::string name,
                   SpanLabels labels = {}, uint64_t parent = 0);

  // Interns a label set once and returns a handle for BeginWithSet; call
  // sites that open the same-shaped span per event (fabric's net.message)
  // pay the label construction once, not per span. Handles are never
  // invalidated — not even by Clear(). 0 is "no label set".
  uint32_t InternLabelSet(SpanLabels labels);
  // Begin() without per-span label construction: attaches the interned set
  // by pointer. `category`/`name` should be literals (SSO; no allocation).
  uint64_t BeginWithSet(std::string_view category, std::string_view name,
                        uint32_t label_set, uint64_t parent = 0);
  // BeginWithSet with an explicit start time instead of the tracer clock;
  // used by the parallel kernel's barrier flush, which replays spans whose
  // interval was recorded on a worker shard earlier in the window.
  uint64_t BeginWithSetAt(SimTime start, std::string_view category,
                          std::string_view name, uint32_t label_set,
                          uint64_t parent = 0);

  void AddLabel(uint64_t span_id, std::string key, std::string value);
  void End(uint64_t span_id);
  void EndAt(uint64_t span_id, SimTime end);

  // Scope stack for implicit parenting; managed by ScopedSpan.
  void PushScope(uint64_t span_id);
  void PopScope(uint64_t span_id);
  uint64_t CurrentScope() const;

  const std::vector<Span>& spans() const { return spans_; }
  size_t size() const { return spans_.size(); }
  uint64_t dropped() const { return dropped_; }
  void Clear();

  // Span ids in the order they closed. The per-close cost is one integer
  // append; consumers that want a rendered view (e.g. the legacy-trace
  // mirror) walk this list lazily instead of formatting on every End().
  const std::vector<uint64_t>& closed_order() const { return closed_order_; }

  // Invoked whenever a span closes. Prefer closed_order() + lazy rendering;
  // an eager sink puts its cost on the tracing hot path.
  void set_on_end(EndSink sink) { on_end_ = std::move(sink); }
  // Cap on retained spans; Begin drops (returns 0) past it.
  void set_max_spans(size_t n) { max_spans_ = n; }

  const Span* SpanById(uint64_t span_id) const;
  std::vector<const Span*> SpansInCategory(std::string_view category) const;
  // First span with `name`, optionally also matching one label.
  const Span* Find(std::string_view name, std::string_view label_key = {},
                   std::string_view label_value = {}) const;

 private:
  Span* Mutable(uint64_t span_id);

  Clock clock_;
  EndSink on_end_;
  // Interned label sets; deque keeps element addresses stable so spans can
  // point straight at them. Deliberately not cleared by Clear().
  std::deque<SpanLabels> label_sets_;
  std::vector<Span> spans_;  // span_id == index + 1
  std::vector<uint64_t> closed_order_;
  std::vector<uint64_t> scope_stack_;
  uint64_t next_trace_id_ = 1;
  size_t max_spans_ = 1 << 20;
  uint64_t dropped_ = 0;
};

// RAII span: opens on construction, pushes itself as the current scope, and
// closes on destruction. Movable so factories can hand scopes out.
class ScopedSpan {
 public:
  ScopedSpan(SpanTracer* tracer, std::string category, std::string name,
             SpanLabels labels = {});
  ScopedSpan(ScopedSpan&& other) noexcept;
  ScopedSpan& operator=(ScopedSpan&&) = delete;
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;
  ~ScopedSpan();

  uint64_t id() const { return id_; }
  void AddLabel(std::string key, std::string value);

 private:
  SpanTracer* tracer_;
  uint64_t id_;
};

}  // namespace udc

#endif  // UDC_SRC_OBS_SPAN_H_
