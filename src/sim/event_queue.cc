#include "src/sim/event_queue.h"

#include <cassert>
#include <utility>

namespace udc {

EventHandle EventQueue::Schedule(SimTime when, Callback cb) {
  assert(when >= last_popped_ && "scheduling into the past");
  const uint64_t seq = next_seq_++;
  heap_.push(Entry{when, seq, std::move(cb)});
  pending_.insert(seq);
  ++live_count_;
  return EventHandle{seq};
}

bool EventQueue::Cancel(EventHandle handle) {
  if (!handle.valid()) {
    return false;
  }
  const auto it = pending_.find(handle.seq);
  if (it == pending_.end()) {
    return false;  // already fired or already cancelled
  }
  pending_.erase(it);
  // Lazily removed from the heap: marked cancelled, skipped at the top.
  cancelled_.insert(handle.seq);
  --live_count_;
  return true;
}

void EventQueue::SkipCancelled() {
  while (!heap_.empty()) {
    const auto it = cancelled_.find(heap_.top().seq);
    if (it == cancelled_.end()) {
      return;
    }
    cancelled_.erase(it);
    heap_.pop();
  }
}

SimTime EventQueue::NextTime() const {
  // Cancelled entries at the top must be skipped for an exact answer; the
  // skip only discards dead entries, so it is logically const.
  EventQueue* self = const_cast<EventQueue*>(this);
  self->SkipCancelled();
  if (heap_.empty()) {
    return SimTime::Max();
  }
  return heap_.top().when;
}

SimTime EventQueue::PopAndRun() {
  SkipCancelled();
  assert(!heap_.empty());
  // Copy the entry out before popping: the callback may schedule new events,
  // which mutates the heap.
  Entry top = heap_.top();
  heap_.pop();
  pending_.erase(top.seq);
  --live_count_;
  last_popped_ = top.when;
  top.cb();
  return top.when;
}

}  // namespace udc
