#include "src/sim/event_queue.h"

#include <cassert>
#include <utility>

namespace udc {

uint32_t EventQueue::AcquireSlot() {
  if (!free_slots_.empty()) {
    const uint32_t slot = free_slots_.back();
    free_slots_.pop_back();
    return slot;
  }
  assert(slots_.size() < kMaxSlots && "too many simultaneously pending events");
  slots_.emplace_back();
  return static_cast<uint32_t>(slots_.size() - 1);
}

void EventQueue::RetireSlot(uint32_t slot) {
  Slot& s = slots_[slot];
  s.armed = false;
  s.cb.Reset();
  // Skip generation 0 on wrap so stale handles can never look valid again.
  if (++s.gen == 0) {
    s.gen = 1;
  }
  free_slots_.push_back(slot);
}

void EventQueue::HeapPush(HeapEntry entry) {
  heap_.push_back(entry);
  // Sift up: two-word moves, no callback traffic.
  size_t i = heap_.size() - 1;
  while (i > 0) {
    const size_t parent = (i - 1) / 2;
    if (!heap_[i].Before(heap_[parent])) {
      break;
    }
    std::swap(heap_[i], heap_[parent]);
    i = parent;
  }
}

void EventQueue::HeapPopTop() const {
  heap_.front() = heap_.back();
  heap_.pop_back();
  // Sift down.
  size_t i = 0;
  const size_t n = heap_.size();
  while (true) {
    const size_t left = 2 * i + 1;
    if (left >= n) {
      break;
    }
    const size_t right = left + 1;
    size_t best = left;
    if (right < n && heap_[right].Before(heap_[left])) {
      best = right;
    }
    if (!heap_[best].Before(heap_[i])) {
      break;
    }
    std::swap(heap_[i], heap_[best]);
    i = best;
  }
}

bool EventQueue::EntryLive(const HeapEntry& entry) const {
  const uint32_t slot = static_cast<uint32_t>(entry.seq_slot & kSlotMask);
  const Slot& s = slots_[slot];
  // The slot must still be armed for the same event. Comparing the low 40
  // bits of seq is exact within the packed domain.
  return s.armed && ((s.seq << kSlotBits) | slot) == entry.seq_slot;
}

void EventQueue::SkipStale() const {
  while (!heap_.empty() && !EntryLive(heap_.front())) {
    HeapPopTop();
  }
}

EventHandle EventQueue::Schedule(SimTime when, InlineCallback cb) {
  assert(when >= last_popped_ && "scheduling into the past");
  const uint64_t seq = next_seq_++;
  const uint32_t slot = AcquireSlot();
  Slot& s = slots_[slot];
  s.cb = std::move(cb);
  s.seq = seq;
  s.armed = true;
  HeapPush(HeapEntry{when, (seq << kSlotBits) | slot});
  ++live_count_;
  return EventHandle{slot, s.gen};
}

bool EventQueue::Cancel(EventHandle handle) {
  if (!handle.valid() || handle.slot >= slots_.size()) {
    return false;
  }
  Slot& s = slots_[handle.slot];
  if (!s.armed || s.gen != handle.gen) {
    return false;  // already fired or already cancelled
  }
  // The heap entry stays behind; EntryLive sees the retired slot and drops
  // it when it reaches the top. Destroying the callback now releases its
  // captures (and any slab block) immediately.
  RetireSlot(handle.slot);
  --live_count_;
  return true;
}

SimTime EventQueue::NextTime() const {
  SkipStale();
  if (heap_.empty()) {
    return SimTime::Max();
  }
  return heap_.front().when;
}

SimTime EventQueue::PopAndRun() {
  SkipStale();
  assert(!heap_.empty());
  const HeapEntry top = heap_.front();
  HeapPopTop();
  const uint32_t slot = static_cast<uint32_t>(top.seq_slot & kSlotMask);
  // Move the callback out and retire the slot *before* invoking: the
  // callback may schedule new events that reuse this very slot.
  InlineCallback cb = std::move(slots_[slot].cb);
  RetireSlot(slot);
  --live_count_;
  last_popped_ = top.when;
  cb();
  return top.when;
}

}  // namespace udc
