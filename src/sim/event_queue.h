// Discrete-event queue: the heart of the simulator.
//
// Events are (time, sequence, callback). Sequence numbers break ties so that
// two events scheduled for the same instant fire in scheduling order, which
// keeps the simulation deterministic. Events can be cancelled through the
// handle returned at scheduling time.
//
// Hot-path layout (DESIGN.md §6 "Simulation kernel"):
//   * Callbacks are InlineCallbacks — captures up to 64 bytes live inside
//     the event record, larger ones in a pooled thread-local slab. No
//     per-event std::function heap allocation.
//   * Event records live in a slot slab recycled through a free list; an
//     EventHandle is (slot, generation), and cancellation is a generation
//     compare on the slot — the pending_/cancelled_ hash sets are gone.
//   * The binary heap sifts 16-byte (time, seq|slot) keys, not whole
//     entries. A cancelled event leaves a stale heap entry behind that is
//     discarded when it surfaces (its slot is disarmed or carries a newer
//     sequence number by then).
//
// Steady state (slots and heap vectors at capacity, overflow slab warm)
// schedules, cancels and fires events with zero heap allocation and zero
// hashing.

#ifndef UDC_SRC_SIM_EVENT_QUEUE_H_
#define UDC_SRC_SIM_EVENT_QUEUE_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "src/common/units.h"
#include "src/sim/inline_callback.h"

namespace udc {

// Token identifying a scheduled event; valid until the event fires. The
// generation disambiguates reuses of the same slot: a handle whose
// generation no longer matches the slot's is stale (its event fired or was
// cancelled) and Cancel on it returns false. Generation 0 is never issued,
// so a default-constructed handle is always invalid.
struct EventHandle {
  uint32_t slot = 0;
  uint32_t gen = 0;
  bool valid() const { return gen != 0; }
};

class EventQueue {
 public:
  // Legacy alias: std::function call sites convert through InlineCallback's
  // implicit constructor (one move; the function's own state rides the
  // overflow slab when it exceeds the inline buffer).
  using Callback = std::function<void()>;

  EventQueue() = default;
  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  // Schedules `cb` at absolute time `when`. `when` must be >= the time of the
  // last popped event (no scheduling into the past).
  EventHandle Schedule(SimTime when, InlineCallback cb);

  // Cancels a pending event. Returns false when already fired or cancelled.
  bool Cancel(EventHandle handle);

  bool empty() const { return live_count_ == 0; }
  size_t size() const { return live_count_; }

  // Time of the earliest pending event; SimTime::Max() when empty.
  SimTime NextTime() const;

  // Pops and runs the earliest event; returns its time. Must not be empty.
  SimTime PopAndRun();

  uint64_t total_scheduled() const { return next_seq_; }

  // High-water mark of simultaneously pending events (slot-slab size).
  size_t slot_capacity() const { return slots_.size(); }

 private:
  // Heap entries pack the sequence number and slot index into one word:
  // low kSlotBits bits = slot, upper 40 bits = low 40 bits of seq — enough
  // for ~10^12 events, and same-time events are scheduled close enough
  // together that the truncated comparison is exact. The slot stores the
  // full seq; liveness checks compare against it, so a surfacing entry
  // whose slot was recycled is recognized as stale.
  static constexpr uint32_t kSlotBits = 24;
  static constexpr uint32_t kMaxSlots = (1u << kSlotBits) - 1;
  static constexpr uint64_t kSlotMask = (uint64_t{1} << kSlotBits) - 1;

  struct Slot {
    InlineCallback cb;
    uint64_t seq = 0;
    uint32_t gen = 1;    // matches issued handles; bumped when retired
    bool armed = false;  // true while the event is pending
  };

  struct HeapEntry {
    SimTime when;
    uint64_t seq_slot;  // (seq << kSlotBits) | slot

    bool Before(const HeapEntry& other) const {
      if (when != other.when) {
        return when < other.when;
      }
      return seq_slot < other.seq_slot;  // equal time: seq (high bits) wins
    }
  };

  uint32_t AcquireSlot();
  void RetireSlot(uint32_t slot);
  void HeapPush(HeapEntry entry);
  void HeapPopTop() const;
  // True when the heap entry still refers to a pending event.
  bool EntryLive(const HeapEntry& entry) const;
  // Drops stale heap entries (cancelled/retired slots) off the top. Only
  // discards dead entries, so it is logically const (NextTime needs it).
  void SkipStale() const;

  std::vector<Slot> slots_;
  std::vector<uint32_t> free_slots_;
  mutable std::vector<HeapEntry> heap_;
  uint64_t next_seq_ = 0;
  size_t live_count_ = 0;
  SimTime last_popped_;
};

}  // namespace udc

#endif  // UDC_SRC_SIM_EVENT_QUEUE_H_
