// Discrete-event queue: the heart of the simulator.
//
// Events are (time, sequence, callback). Sequence numbers break ties so that
// two events scheduled for the same instant fire in scheduling order, which
// keeps the simulation deterministic. Events can be cancelled through the
// handle returned at scheduling time.

#ifndef UDC_SRC_SIM_EVENT_QUEUE_H_
#define UDC_SRC_SIM_EVENT_QUEUE_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "src/common/units.h"

namespace udc {

// Token identifying a scheduled event; valid until the event fires.
struct EventHandle {
  uint64_t seq = ~uint64_t{0};
  bool valid() const { return seq != ~uint64_t{0}; }
};

class EventQueue {
 public:
  using Callback = std::function<void()>;

  EventQueue() = default;
  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  // Schedules `cb` at absolute time `when`. `when` must be >= the time of the
  // last popped event (no scheduling into the past).
  EventHandle Schedule(SimTime when, Callback cb);

  // Cancels a pending event. Returns false when already fired or cancelled.
  bool Cancel(EventHandle handle);

  bool empty() const { return live_count_ == 0; }
  size_t size() const { return live_count_; }

  // Time of the earliest pending event; SimTime::Max() when empty.
  SimTime NextTime() const;

  // Pops and runs the earliest event; returns its time. Must not be empty.
  SimTime PopAndRun();

  uint64_t total_scheduled() const { return next_seq_; }

 private:
  struct Entry {
    SimTime when;
    uint64_t seq;
    Callback cb;
  };
  struct EntryLater {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.when != b.when) {
        return a.when > b.when;
      }
      return a.seq > b.seq;
    }
  };

  void SkipCancelled();

  std::priority_queue<Entry, std::vector<Entry>, EntryLater> heap_;
  std::unordered_set<uint64_t> pending_;    // seqs currently in the heap
  std::unordered_set<uint64_t> cancelled_;  // pending seqs marked dead
  uint64_t next_seq_ = 0;
  size_t live_count_ = 0;
  SimTime last_popped_;
};

}  // namespace udc

#endif  // UDC_SRC_SIM_EVENT_QUEUE_H_
