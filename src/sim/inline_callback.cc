#include "src/sim/inline_callback.h"

#include <vector>

namespace udc {
namespace {

// Mirrors InlineCallback::kBlockClasses; the vtable encodes the class size,
// so the free path only needs to map size -> list index.
constexpr uint32_t kClasses[] = {128, 256, 512, 1024, 4096};
constexpr int kClassCount = 5;

int ClassIndexFor(uint32_t block_size) {
  for (int i = 0; i < kClassCount; ++i) {
    if (block_size == kClasses[i]) {
      return i;
    }
  }
  return -1;
}

// One slab per thread: the simulator is single-threaded per Simulation, and
// thread-local free lists keep the fast path lock-free.
struct Slab {
  std::vector<void*> free_lists[kClassCount];
  CallbackSlabStats stats;

  ~Slab() {
    for (auto& list : free_lists) {
      for (void* block : list) {
        ::operator delete(block);
      }
    }
  }
};

Slab& TheSlab() {
  static thread_local Slab slab;
  return slab;
}

}  // namespace

void* InlineCallback::SlabAllocate(uint32_t block_size) {
  Slab& slab = TheSlab();
  ++slab.stats.spills;
  ++slab.stats.outstanding;
  const int cls = ClassIndexFor(block_size);
  if (cls >= 0 && !slab.free_lists[cls].empty()) {
    void* block = slab.free_lists[cls].back();
    slab.free_lists[cls].pop_back();
    ++slab.stats.reused_blocks;
    return block;
  }
  ++slab.stats.fresh_blocks;
  return ::operator new(block_size);
}

void InlineCallback::SlabFree(void* block, uint32_t block_size) noexcept {
  Slab& slab = TheSlab();
  --slab.stats.outstanding;
  const int cls = ClassIndexFor(block_size);
  if (cls < 0) {
    ::operator delete(block);  // oversized, never pooled
    return;
  }
  slab.free_lists[cls].push_back(block);
}

const CallbackSlabStats& InlineCallback::slab_stats() {
  return TheSlab().stats;
}

void InlineCallback::ResetSlabStatsForTest() {
  TheSlab().stats = CallbackSlabStats{};
}

}  // namespace udc
