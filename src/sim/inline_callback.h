// InlineCallback: a move-only `void()` callable built for the event hot path.
//
// `std::function` heap-allocates any capture larger than its tiny internal
// buffer (16 bytes on libstdc++), which makes every fabric delivery and every
// actor wakeup pay an allocator round trip. InlineCallback instead stores
// captures up to kInlineCapacity (64 bytes — sized to hold the fabric
// delivery and env-manager completion closures) directly inside the object,
// and spills rare larger captures into a thread-local pooled slab whose
// blocks are recycled across events, so steady-state scheduling performs
// zero heap allocations either way.
//
// The dispatch table is a per-type static (invoke / relocate / destroy), the
// same technique std::function uses, minus the copyability requirement that
// forces it to heap-allocate move-only or fat captures.

#ifndef UDC_SRC_SIM_INLINE_CALLBACK_H_
#define UDC_SRC_SIM_INLINE_CALLBACK_H_

#include <cstddef>
#include <cstdint>
#include <new>
#include <type_traits>
#include <utility>

namespace udc {

// Counters for the overflow slab (thread-local, shared by every queue on the
// thread). `fresh_blocks` is the number of blocks that actually reached
// operator new; in steady state it stops growing and every spill is a reuse.
struct CallbackSlabStats {
  uint64_t spills = 0;        // callbacks too big for the inline buffer
  uint64_t reused_blocks = 0; // spills served from a free list
  uint64_t fresh_blocks = 0;  // spills that hit operator new
  uint64_t outstanding = 0;   // slab blocks currently alive
};

class InlineCallback {
 public:
  static constexpr size_t kInlineCapacity = 64;

  InlineCallback() noexcept = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::remove_cvref_t<F>, InlineCallback> &&
                std::is_invocable_r_v<void, std::remove_cvref_t<F>&>>>
  InlineCallback(F&& f) {  // NOLINT(google-explicit-constructor)
    using Fn = std::remove_cvref_t<F>;
    static_assert(alignof(Fn) <= alignof(std::max_align_t),
                  "over-aligned callables are not supported");
    if constexpr (sizeof(Fn) <= kInlineCapacity &&
                  std::is_nothrow_move_constructible_v<Fn>) {
      ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(f));
      vt_ = &kInlineVTable<Fn>;
    } else {
      constexpr uint32_t kBlock = BlockSizeFor(sizeof(Fn));
      void* block = SlabAllocate(kBlock);
      ::new (block) Fn(std::forward<F>(f));
      heap_ = block;
      vt_ = &kHeapVTable<Fn, kBlock>;
    }
  }

  InlineCallback(InlineCallback&& other) noexcept { MoveFrom(other); }
  InlineCallback& operator=(InlineCallback&& other) noexcept {
    if (this != &other) {
      Reset();
      MoveFrom(other);
    }
    return *this;
  }

  InlineCallback(const InlineCallback&) = delete;
  InlineCallback& operator=(const InlineCallback&) = delete;

  ~InlineCallback() { Reset(); }

  explicit operator bool() const noexcept { return vt_ != nullptr; }

  void operator()() {
    void* obj = vt_->block_size == 0 ? static_cast<void*>(buf_) : heap_;
    vt_->invoke(obj);
  }

  // Destroys the held callable (returning any slab block) and empties.
  void Reset() noexcept {
    if (vt_ == nullptr) {
      return;
    }
    if (vt_->block_size == 0) {
      vt_->destroy(buf_);
    } else {
      vt_->destroy(heap_);
      SlabFree(heap_, vt_->block_size);
    }
    vt_ = nullptr;
  }

  // True when the capture lives in the inline buffer (test hook).
  bool is_inline() const noexcept {
    return vt_ != nullptr && vt_->block_size == 0;
  }

  // Thread-local slab counters (test/bench hook).
  static const CallbackSlabStats& slab_stats();
  static void ResetSlabStatsForTest();

 private:
  struct VTable {
    void (*invoke)(void* obj);
    // Move-constructs into dst and destroys src. Inline storage only; slab
    // blocks move by pointer swap.
    void (*relocate)(void* dst, void* src) noexcept;
    void (*destroy)(void* obj) noexcept;
    uint32_t block_size;  // 0 = inline, else the slab block size in bytes
  };

  // Size classes for spilled captures. Anything above the largest class is
  // served by plain operator new/delete (block_size still records the class
  // so Reset knows which path to free on).
  static constexpr uint32_t kBlockClasses[] = {128, 256, 512, 1024, 4096};
  static constexpr uint32_t kMaxPooledBlock = 4096;

  static constexpr uint32_t BlockSizeFor(size_t n) {
    for (uint32_t c : kBlockClasses) {
      if (n <= c) {
        return c;
      }
    }
    // Oversized: freed directly, so the exact size is fine.
    return static_cast<uint32_t>(n);
  }

  static void* SlabAllocate(uint32_t block_size);
  static void SlabFree(void* block, uint32_t block_size) noexcept;

  template <typename Fn>
  static void Invoke(void* obj) {
    (*static_cast<Fn*>(obj))();
  }
  template <typename Fn>
  static void Relocate(void* dst, void* src) noexcept {
    Fn* from = static_cast<Fn*>(src);
    ::new (dst) Fn(std::move(*from));
    from->~Fn();
  }
  template <typename Fn>
  static void Destroy(void* obj) noexcept {
    static_cast<Fn*>(obj)->~Fn();
  }

  template <typename Fn>
  static constexpr VTable kInlineVTable = {&Invoke<Fn>, &Relocate<Fn>,
                                           &Destroy<Fn>, 0};
  template <typename Fn, uint32_t kBlock>
  static constexpr VTable kHeapVTable = {&Invoke<Fn>, nullptr, &Destroy<Fn>,
                                         kBlock};

  void MoveFrom(InlineCallback& other) noexcept {
    vt_ = other.vt_;
    if (vt_ == nullptr) {
      return;
    }
    if (vt_->block_size == 0) {
      vt_->relocate(buf_, other.buf_);
    } else {
      heap_ = other.heap_;
    }
    other.vt_ = nullptr;
  }

  const VTable* vt_ = nullptr;
  union {
    alignas(std::max_align_t) unsigned char buf_[kInlineCapacity];
    void* heap_;
  };
};

}  // namespace udc

#endif  // UDC_SRC_SIM_INLINE_CALLBACK_H_
