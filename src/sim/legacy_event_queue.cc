#include "src/sim/legacy_event_queue.h"

#include <cassert>
#include <utility>

namespace udc {

EventHandle LegacyEventQueue::Schedule(SimTime when, Callback cb) {
  assert(when >= last_popped_ && "scheduling into the past");
  const uint64_t seq = next_seq_++;
  heap_.push(Entry{when, seq, std::move(cb)});
  pending_.insert(seq);
  ++live_count_;
  return PackHandle(seq);
}

bool LegacyEventQueue::Cancel(EventHandle handle) {
  if (!handle.valid()) {
    return false;
  }
  const auto it = pending_.find(UnpackSeq(handle));
  if (it == pending_.end()) {
    return false;  // already fired or already cancelled
  }
  const uint64_t seq = *it;
  pending_.erase(it);
  // Lazily removed from the heap: marked cancelled, skipped at the top.
  cancelled_.insert(seq);
  --live_count_;
  return true;
}

void LegacyEventQueue::SkipCancelled() {
  while (!heap_.empty()) {
    const auto it = cancelled_.find(heap_.top().seq);
    if (it == cancelled_.end()) {
      return;
    }
    cancelled_.erase(it);
    heap_.pop();
  }
}

SimTime LegacyEventQueue::NextTime() const {
  // Cancelled entries at the top must be skipped for an exact answer; the
  // skip only discards dead entries, so it is logically const.
  LegacyEventQueue* self = const_cast<LegacyEventQueue*>(this);
  self->SkipCancelled();
  if (heap_.empty()) {
    return SimTime::Max();
  }
  return heap_.top().when;
}

SimTime LegacyEventQueue::PopAndRun() {
  SkipCancelled();
  assert(!heap_.empty());
  // Copy the entry out before popping: the callback may schedule new events,
  // which mutates the heap.
  Entry top = heap_.top();
  heap_.pop();
  pending_.erase(top.seq);
  --live_count_;
  last_popped_ = top.when;
  top.cb();
  return top.when;
}

}  // namespace udc
