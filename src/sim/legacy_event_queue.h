// The pre-fast-path event queue, kept verbatim as a differential-test oracle
// (std::function entries, priority_queue of full records, hash-set
// cancellation bookkeeping). Simulation runs on it when constructed with
// SimKernel::kLegacy; the determinism tests assert that both kernels produce
// byte-identical traces for the same seed. Not for new call sites.
//
// Handles are packed into the shared EventHandle: slot = low 32 bits of the
// sequence number, gen = high 32 bits + 1 (so gen 0 stays "invalid" here
// too). The packing is lossless until 2^64 events.

#ifndef UDC_SRC_SIM_LEGACY_EVENT_QUEUE_H_
#define UDC_SRC_SIM_LEGACY_EVENT_QUEUE_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "src/common/units.h"
#include "src/sim/event_queue.h"

namespace udc {

class LegacyEventQueue {
 public:
  using Callback = std::function<void()>;

  LegacyEventQueue() = default;
  LegacyEventQueue(const LegacyEventQueue&) = delete;
  LegacyEventQueue& operator=(const LegacyEventQueue&) = delete;

  EventHandle Schedule(SimTime when, Callback cb);
  bool Cancel(EventHandle handle);

  bool empty() const { return live_count_ == 0; }
  size_t size() const { return live_count_; }
  SimTime NextTime() const;
  SimTime PopAndRun();
  uint64_t total_scheduled() const { return next_seq_; }

 private:
  struct Entry {
    SimTime when;
    uint64_t seq;
    Callback cb;
  };
  struct EntryLater {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.when != b.when) {
        return a.when > b.when;
      }
      return a.seq > b.seq;
    }
  };

  static EventHandle PackHandle(uint64_t seq) {
    return EventHandle{static_cast<uint32_t>(seq),
                       static_cast<uint32_t>(seq >> 32) + 1};
  }
  static uint64_t UnpackSeq(EventHandle handle) {
    return (static_cast<uint64_t>(handle.gen - 1) << 32) | handle.slot;
  }

  void SkipCancelled();

  std::priority_queue<Entry, std::vector<Entry>, EntryLater> heap_;
  std::unordered_set<uint64_t> pending_;    // seqs currently in the heap
  std::unordered_set<uint64_t> cancelled_;  // pending seqs marked dead
  uint64_t next_seq_ = 0;
  size_t live_count_ = 0;
  SimTime last_popped_;
};

}  // namespace udc

#endif  // UDC_SRC_SIM_LEGACY_EVENT_QUEUE_H_
