#include "src/sim/metrics.h"

#include "src/common/strings.h"

namespace udc {

void MetricsRegistry::IncrementCounter(std::string_view name, int64_t delta) {
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    counters_.emplace(std::string(name), delta);
  } else {
    it->second += delta;
  }
}

int64_t MetricsRegistry::counter(std::string_view name) const {
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

void MetricsRegistry::SetGauge(std::string_view name, double value) {
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    gauges_.emplace(std::string(name), value);
  } else {
    it->second = value;
  }
}

void MetricsRegistry::AddToGauge(std::string_view name, double delta) {
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    gauges_.emplace(std::string(name), delta);
  } else {
    it->second += delta;
  }
}

double MetricsRegistry::gauge(std::string_view name) const {
  const auto it = gauges_.find(name);
  return it == gauges_.end() ? 0.0 : it->second;
}

void MetricsRegistry::Observe(std::string_view name, double value) {
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), Histogram()).first;
  }
  it->second.Add(value);
}

const Histogram* MetricsRegistry::histogram(std::string_view name) const {
  const auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : &it->second;
}

std::string MetricsRegistry::Report() const {
  std::string out;
  for (const auto& [name, value] : counters_) {
    out += StrFormat("counter %-48s %lld\n", name.c_str(),
                     static_cast<long long>(value));
  }
  for (const auto& [name, value] : gauges_) {
    out += StrFormat("gauge   %-48s %.6g\n", name.c_str(), value);
  }
  for (const auto& [name, hist] : histograms_) {
    out += StrFormat("hist    %-48s %s\n", name.c_str(), hist.Summary().c_str());
  }
  return out;
}

void MetricsRegistry::Clear() {
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
}

}  // namespace udc
