// Telemetry registry.
//
// The paper's runtime "collects the feedback and performs adaptive
// optimizations" (sec. 3, Design Principle 1); this registry is that feedback
// channel. Counters, gauges and histograms are created on first use and
// addressed by name, so any layer can publish without plumbing.

#ifndef UDC_SRC_SIM_METRICS_H_
#define UDC_SRC_SIM_METRICS_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>

#include "src/common/histogram.h"

namespace udc {

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  void IncrementCounter(std::string_view name, int64_t delta = 1);
  int64_t counter(std::string_view name) const;

  void SetGauge(std::string_view name, double value);
  void AddToGauge(std::string_view name, double delta);
  double gauge(std::string_view name) const;

  void Observe(std::string_view name, double value);
  const Histogram* histogram(std::string_view name) const;

  // Multi-line dump of every metric, sorted by name; used by tools.
  std::string Report() const;

  void Clear();

 private:
  std::map<std::string, int64_t, std::less<>> counters_;
  std::map<std::string, double, std::less<>> gauges_;
  std::map<std::string, Histogram, std::less<>> histograms_;
};

}  // namespace udc

#endif  // UDC_SRC_SIM_METRICS_H_
