// Forwarding header: the telemetry registry moved to src/obs/metrics.h when
// the observability layer grew labeled series and exposition writers.

#ifndef UDC_SRC_SIM_METRICS_H_
#define UDC_SRC_SIM_METRICS_H_

#include "src/obs/metrics.h"

#endif  // UDC_SRC_SIM_METRICS_H_
