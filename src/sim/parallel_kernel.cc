#include "src/sim/parallel_kernel.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <utility>

#include "src/common/logging.h"
#include "src/obs/flight_recorder.h"

namespace udc {

thread_local ParallelKernel::ShardRuntime* ParallelKernel::tls_shard_ =
    nullptr;

namespace {
// Spin budget before falling back to the condvar, for both sides of the
// window barrier. Windows are typically a few microseconds of work, so a
// short spin absorbs most handoffs without burning a syscall.
constexpr int kBarrierSpins = 4096;

// Adaptive-window thresholds, as fractions of the period's event total:
// shrink when more than 1/8 of events crossed shards (windows are too wide
// to keep traffic local), widen when fewer than 1/64 did. Hysteresis gap so
// the controller cannot flap between consecutive decisions.
constexpr uint64_t kShrinkCrossDen = 8;
constexpr uint64_t kGrowCrossDen = 64;

// A rack migrated once stays put for this many rebalance checks, so two hot
// shards cannot trade the same rack back and forth.
constexpr uint32_t kRackMoveCooldownPeriods = 4;

inline void CpuRelax() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__)
  asm volatile("yield");
#endif
}

inline uint64_t MonotonicNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}
}  // namespace

ParallelKernel::ParallelKernel(EventQueue* root_queue, SimTime* now,
                               ParallelConfig config)
    : root_queue_(root_queue),
      now_(now),
      lookahead_(config.lookahead),
      lookahead_bound_(config.lookahead_bound),
      eff_lookahead_(config.lookahead),
      shard_total_(static_cast<uint32_t>(std::max(0, config.shards)) + 1),
      config_(config) {
  int threads = config.threads;
  if (threads <= 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    threads = hw > 1 ? static_cast<int>(hw - 1) : 1;
  }
  const int worker_shards = static_cast<int>(shard_total_) - 1;
  thread_count_ = worker_shards > 0 ? std::min(threads, worker_shards) : 0;

  runtimes_.resize(shard_total_);
  obs_buffers_.resize(shard_total_, nullptr);
  for (uint32_t s = 0; s < shard_total_; ++s) {
    auto rt = std::make_unique<ShardRuntime>();
    rt->id = s;
    if (s == 0) {
      rt->queue = root_queue_;
    } else {
      rt->owned_queue = std::make_unique<EventQueue>();
      rt->queue = rt->owned_queue.get();
      obs_buffers_[s] = &rt->obs;
    }
    runtimes_[s] = std::move(rt);
  }

  channels_.resize(static_cast<size_t>(shard_total_) * shard_total_);
  for (uint32_t src = 0; src < shard_total_; ++src) {
    for (uint32_t dest = 0; dest < shard_total_; ++dest) {
      if (src != dest) {
        channels_[src * shard_total_ + dest] =
            std::make_unique<SpscChannel<CrossShardEvent>>(
                config.channel_capacity);
      }
    }
  }

  group_of_.resize(shard_total_);
  for (uint32_t s = 0; s < shard_total_; ++s) {
    group_of_[s] = s;
  }
  group_cost_.resize(shard_total_, 0);
  // Steady-state capacity so a mid-run migration never allocates inside the
  // measured phase of a zero-alloc bench.
  work_list_.reserve(shard_total_);
  links_.reserve(shard_total_);
}

ParallelKernel::~ParallelKernel() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    shutdown_.store(true, std::memory_order_release);
  }
  cv_work_.notify_all();
  for (std::thread& t : workers_) {
    t.join();
  }
}

void ParallelKernel::AssignRack(int rack, uint32_t shard) {
  // Cold serial-phase contract points use UDC_CHECK so a violation in a
  // release build dies loudly — after the flight recorder dumps its rings.
  UDC_CHECK(shard < shard_total_) << " rack " << rack << " -> shard " << shard;
  UDC_CHECK(!in_window_) << " shard map is fixed while a window is executing";
  if (rack < 0) {
    return;
  }
  if (static_cast<size_t>(rack) >= rack_to_shard_.size()) {
    rack_to_shard_.resize(static_cast<size_t>(rack) + 1, 0);
    rack_period_events_.resize(static_cast<size_t>(rack) + 1, 0);
    rack_move_cooldown_.resize(static_cast<size_t>(rack) + 1, 0);
  }
  rack_to_shard_[rack] = shard;
}

uint32_t ParallelKernel::CurrentShard() {
  ShardRuntime* rt = tls_shard_;
  return rt != nullptr ? rt->id : 0;
}

ShardObsBuffer* ParallelKernel::CurrentObsBuffer() {
  ShardRuntime* rt = tls_shard_;
  return rt != nullptr ? &rt->obs : nullptr;
}

SimTime ParallelKernel::CurrentNow(const SimTime* coordinator_now) const {
  ShardRuntime* rt = tls_shard_;
  return rt != nullptr ? rt->now : *coordinator_now;
}

void ParallelKernel::SetFlightRecorder(FlightRecorder* recorder) {
  UDC_CHECK(!in_window_) << " flight recorder wiring is serial-phase only";
  if (recorder != nullptr) {
    recorder->EnsureRings(shard_total_);
  }
  for (uint32_t s = 1; s < shard_total_; ++s) {
    runtimes_[s]->obs.SetFlightRing(recorder, s);
  }
}

BarrierHookRegistration ParallelKernel::AddBarrierHook(
    std::function<void()> hook) {
  assert(!in_window_ && "barrier hooks are registered in the serial phase");
  const uint64_t id = ++next_hook_id_;
  barrier_hooks_.push_back(BarrierHook{id, std::move(hook)});
  return BarrierHookRegistration(this, id);
}

void ParallelKernel::RemoveBarrierHook(uint64_t id) {
  assert(!in_window_ && "barrier hooks are removed in the serial phase");
  for (auto it = barrier_hooks_.begin(); it != barrier_hooks_.end(); ++it) {
    if (it->id == id) {
      barrier_hooks_.erase(it);
      return;
    }
  }
}

void ParallelKernel::ScheduleOnShard(uint32_t shard, SimTime when,
                                     InlineCallback cb, int rack) {
  assert(shard < shard_total_);
  ShardRuntime* src = tls_shard_;
  const uint32_t src_id = src != nullptr ? src->id : 0;
  if (shard == src_id) {
    (src != nullptr ? src->queue : root_queue_)->Schedule(when, std::move(cb));
    return;
  }
  if (!in_window_) {
    // Serial phase: the coordinator owns every queue; insert directly.
    runtimes_[shard]->queue->Schedule(when, std::move(cb));
    if (shard != 0) {
      sharded_work_ = true;
      if (rack >= 0 &&
          static_cast<size_t>(rack) < rack_period_events_.size()) {
        ++rack_period_events_[rack];
      }
    }
    return;
  }
  if (group_of_[shard] == group_of_[src_id]) {
    // Linked shards (a live migration) form one claim unit: this thread
    // owns both queues and the unit interleaves its members by event time,
    // so a direct insert is exactly the kFast path for this subset. This is
    // what makes sub-lookahead traffic between a migration's source and
    // destination legal — intra-rack sends to the migrated rack included.
    runtimes_[shard]->queue->Schedule(when, std::move(cb));
    return;
  }
  assert(when >= window_end_ &&
         "cross-shard schedule lands inside the lookahead window");
  ShardRuntime* owner = src != nullptr ? src : runtimes_[0].get();
  Channel(src_id, shard).Push(
      CrossShardEvent{when, owner->emit_seq++, rack, std::move(cb)});
}

bool ParallelKernel::HasShardedWork() const {
  for (uint32_t s = 1; s < shard_total_; ++s) {
    if (!runtimes_[s]->queue->empty()) {
      return true;
    }
  }
  return false;
}

uint64_t ParallelKernel::channel_spills() const {
  uint64_t total = 0;
  for (const auto& ch : channels_) {
    if (ch != nullptr) {
      total += ch->spill_count();
    }
  }
  return total;
}

ParallelKernelStats ParallelKernel::Stats() const {
  ParallelKernelStats stats;
  stats.windows = windows_;
  stats.flushes = flushes_;
  stats.rebalances = rebalances_;
  stats.cross_shard_events = cross_shard_events_;
  stats.steal_claims = steal_claims_total_;
  stats.effective_lookahead = eff_lookahead_;
  uint64_t max_events = 0;
  uint64_t sum_events = 0;
  for (uint32_t s = 1; s < shard_total_; ++s) {
    const uint64_t e = runtimes_[s]->total_events;
    max_events = std::max(max_events, e);
    sum_events += e;
  }
  const uint32_t workers = shard_total_ - 1;
  if (workers > 0 && sum_events > 0) {
    stats.imbalance_ratio = static_cast<double>(max_events) * workers /
                            static_cast<double>(sum_events);
  }
  if (pooled_wall_ns_ > 0) {
    stats.barrier_stall_pct = 100.0 * static_cast<double>(stall_ns_) /
                              static_cast<double>(pooled_wall_ns_);
  }
  return stats;
}

std::vector<uint64_t> ParallelKernel::PerShardEvents() const {
  std::vector<uint64_t> events;
  events.reserve(shard_total_ > 0 ? shard_total_ - 1 : 0);
  for (uint32_t s = 1; s < shard_total_; ++s) {
    events.push_back(runtimes_[s]->total_events);
  }
  return events;
}

void ParallelKernel::RunShardWindow(ShardRuntime* rt, SimTime window_end,
                                    SimTime deadline) {
  EventQueue* q = rt->queue;
  if (rt->id == 0) {
    // The unsharded domain writes the published clock and the shared obs
    // sinks directly; no thread-local context (CurrentObsBuffer stays null).
    for (;;) {
      const SimTime next = q->NextTime();
      if (next >= window_end || next > deadline) {
        break;
      }
      *now_ = next;
      q->PopAndRun();
      ++rt->events;
    }
    return;
  }
  tls_shard_ = rt;
  for (;;) {
    const SimTime next = q->NextTime();
    if (next >= window_end || next > deadline) {
      break;
    }
    rt->now = next;
    q->PopAndRun();
    ++rt->events;
  }
  tls_shard_ = nullptr;
}

void ParallelKernel::RunClaimUnit(uint32_t leader, SimTime window_end,
                                  SimTime deadline) {
  bool linked = false;
  for (const ShardLink& link : links_) {
    if (group_of_[link.src] == leader) {
      linked = true;
      break;
    }
  }
  if (!linked) {
    // Fast path: the group is a single shard.
    RunShardWindow(runtimes_[leader].get(), window_end, deadline);
    return;
  }
  // A linked group runs as one kFast-style sub-simulation: pop the
  // earliest event across the member queues (ties to the lower shard id,
  // deterministically), one event at a time. Interleaving by time — not
  // draining members one after another — is what keeps a migration
  // source's leftover events causally ordered against the destination's
  // arrivals when they exchange sub-lookahead traffic via the direct-insert
  // path in ScheduleOnShard. O(members) scan per event, only while a link
  // is live.
  for (;;) {
    SimTime best = SimTime::Max();
    uint32_t best_shard = 0;
    for (uint32_t s = 1; s < shard_total_; ++s) {
      if (group_of_[s] != leader) {
        continue;
      }
      const SimTime t = runtimes_[s]->queue->NextTime();
      if (t < best) {
        best = t;
        best_shard = s;
      }
    }
    if (best >= window_end || best > deadline) {
      break;
    }
    ShardRuntime* rt = runtimes_[best_shard].get();
    tls_shard_ = rt;
    rt->now = best;
    rt->queue->PopAndRun();
    ++rt->events;
    tls_shard_ = nullptr;
  }
}

void ParallelKernel::ClaimLoop() {
  // The epoch acquire (worker) or program order (coordinator) makes the
  // bounds and worklist written before the epoch bump visible here; the
  // list is read-only until the next barrier.
  const SimTime window_end = window_end_;
  const SimTime deadline = window_deadline_;
  const uint32_t total = static_cast<uint32_t>(work_list_.size());
  for (;;) {
    const uint32_t i = next_claim_.fetch_add(1, std::memory_order_relaxed);
    if (i >= total) {
      return;
    }
    RunClaimUnit(work_list_[i], window_end, deadline);
  }
}

void ParallelKernel::StartWorkers() {
  workers_.reserve(thread_count_);
  for (int i = 0; i < thread_count_; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

void ParallelKernel::WorkerLoop(int /*worker_index*/) {
  uint64_t seen = 0;
  for (;;) {
    const uint64_t target = seen + 1;
    bool ready = false;
    for (int spin = 0; spin < kBarrierSpins; ++spin) {
      if (shutdown_.load(std::memory_order_acquire)) {
        return;
      }
      if (epoch_.load(std::memory_order_acquire) >= target) {
        ready = true;
        break;
      }
      CpuRelax();
    }
    if (!ready) {
      std::unique_lock<std::mutex> lk(mu_);
      // seq_cst against the coordinator's parked_workers_ read: either the
      // coordinator sees us parked and takes the wake lock, or we see its
      // epoch bump in the predicate before sleeping.
      parked_workers_.fetch_add(1, std::memory_order_seq_cst);
      cv_work_.wait(lk, [&] {
        return shutdown_.load(std::memory_order_seq_cst) ||
               epoch_.load(std::memory_order_seq_cst) >= target;
      });
      parked_workers_.fetch_sub(1, std::memory_order_relaxed);
      if (shutdown_.load(std::memory_order_acquire)) {
        return;
      }
    }
    seen = target;
    ClaimLoop();
    const int active = static_cast<int>(workers_.size());
    if (done_count_.fetch_add(1, std::memory_order_seq_cst) + 1 == active) {
      // Dekker pair with the coordinator's coord_parked_ store: if we read
      // false here, the coordinator has not yet checked done_count_ under
      // the lock and will see the completed count in its wait predicate.
      if (coord_parked_.load(std::memory_order_seq_cst)) {
        std::lock_guard<std::mutex> lk(mu_);
        cv_done_.notify_one();
      }
    }
  }
}

bool ParallelKernel::RunWindowBatch(SimTime deadline) {
  SimTime t_min = SimTime::Max();
  for (uint32_t s = 0; s < shard_total_; ++s) {
    const SimTime t = runtimes_[s]->queue->NextTime();
    if (t < t_min) {
      t_min = t;
    }
  }
  if (t_min == SimTime::Max() || t_min > deadline) {
    return false;
  }
  const SimTime window_end = t_min + eff_lookahead_;
  window_end_ = window_end;
  window_deadline_ = deadline;

  // Build the claimable worklist: every group with an event inside the
  // window, heaviest predicted cost first (LPT), leader id breaking ties.
  // The ordering is a pure function of queue state and barrier-time
  // bookkeeping, so it is identical at every thread count; which *thread*
  // takes which entry is not, and does not need to be.
  work_list_.clear();
  for (uint32_t s = 1; s < shard_total_; ++s) {
    group_cost_[s] = 0;
  }
  for (uint32_t s = 1; s < shard_total_; ++s) {
    const SimTime t = runtimes_[s]->queue->NextTime();
    if (t < window_end && t <= deadline) {
      const uint32_t leader = group_of_[s];
      if (group_cost_[leader] == 0) {
        work_list_.push_back(leader);
      }
      group_cost_[leader] += runtimes_[s]->cost_pred + 1;
    }
  }
  std::sort(work_list_.begin(), work_list_.end(),
            [this](uint32_t a, uint32_t b) {
              if (group_cost_[a] != group_cost_[b]) {
                return group_cost_[a] > group_cost_[b];
              }
              return a < b;
            });

  in_window_ = true;
  if (work_list_.size() <= 1 || thread_count_ == 0) {
    // Inline window: shard 0 plus at most one worker group — waking the
    // pool would add a barrier handoff to win at most one overlapped
    // executor, and the solo case (a single active shard) stays exactly as
    // cheap as it was under the static design. The outcome is identical
    // either way — the claim ticket only changes which thread runs a group.
    RunShardWindow(runtimes_[0].get(), window_end, deadline);
    if (!work_list_.empty()) {
      RunClaimUnit(work_list_[0], window_end, deadline);
      ++steal_claims_total_;
    }
  } else {
    if (workers_.empty()) {
      StartWorkers();
    }
    const uint64_t t_open = MonotonicNanos();
    steal_claims_total_ += work_list_.size();
    done_count_.store(0, std::memory_order_relaxed);
    next_claim_.store(0, std::memory_order_relaxed);
    epoch_.fetch_add(1, std::memory_order_seq_cst);
    // Conditional wake: a spinning worker sees the epoch bump without a
    // syscall; only parked workers need the lock + notify. The seq_cst
    // fetch_add above pairs with the parked_workers_ increment (see
    // WorkerLoop) so a worker that missed the bump is guaranteed visible
    // here — this is where the old unconditional lock+notify_all per
    // window goes away.
    if (parked_workers_.load(std::memory_order_seq_cst) > 0) {
      std::lock_guard<std::mutex> lk(mu_);
      cv_work_.notify_all();
    }
    // The coordinator drains its own domain, then becomes one more
    // executor on the shared ticket instead of idling at the barrier.
    RunShardWindow(runtimes_[0].get(), window_end, deadline);
    ClaimLoop();
    const int active = static_cast<int>(workers_.size());
    const uint64_t t_wait = MonotonicNanos();
    bool done = false;
    for (int spin = 0; spin < kBarrierSpins; ++spin) {
      if (done_count_.load(std::memory_order_acquire) == active) {
        done = true;
        break;
      }
      CpuRelax();
    }
    if (!done) {
      std::unique_lock<std::mutex> lk(mu_);
      coord_parked_.store(true, std::memory_order_seq_cst);
      cv_done_.wait(lk, [&] {
        return done_count_.load(std::memory_order_seq_cst) == active;
      });
      coord_parked_.store(false, std::memory_order_relaxed);
    }
    const uint64_t t_close = MonotonicNanos();
    stall_ns_ += t_close - t_wait;
    pooled_wall_ns_ += t_close - t_open;
  }
  in_window_ = false;
  FinishWindow();
  return true;
}

void ParallelKernel::MergeChannels() {
  for (uint32_t dest = 0; dest < shard_total_; ++dest) {
    merge_scratch_.clear();
    for (uint32_t src = 0; src < shard_total_; ++src) {
      if (src == dest) {
        continue;
      }
      SpscChannel<CrossShardEvent>& ch = Channel(src, dest);
      if (ch.empty()) {
        continue;
      }
      drain_scratch_.clear();
      ch.DrainAll(&drain_scratch_);
      for (CrossShardEvent& ev : drain_scratch_) {
        if (ev.rack >= 0 &&
            static_cast<size_t>(ev.rack) < rack_period_events_.size()) {
          // Rack attribution happens here, on the coordinator: counting at
          // Push would race across producer threads, and the merged count
          // is the same deterministic number.
          ++rack_period_events_[ev.rack];
        }
        merge_scratch_.push_back(
            MergeItem{ev.when, src, ev.seq, std::move(ev.cb)});
      }
    }
    if (merge_scratch_.empty()) {
      continue;
    }
    cross_shard_events_ += merge_scratch_.size();
    adapt_cross_ += merge_scratch_.size();
    // Canonical cross-shard arrival order: independent of which thread ran
    // which source shard, hence independent of the thread count.
    std::sort(merge_scratch_.begin(), merge_scratch_.end(),
              [](const MergeItem& a, const MergeItem& b) {
                if (a.when != b.when) {
                  return a.when < b.when;
                }
                if (a.src != b.src) {
                  return a.src < b.src;
                }
                return a.seq < b.seq;
              });
    EventQueue* q = runtimes_[dest]->queue;
    for (MergeItem& item : merge_scratch_) {
      q->Schedule(item.when, std::move(item.cb));
    }
  }
}

void ParallelKernel::FinishWindow() {
  MergeChannels();
  for (const auto& hook : barrier_hooks_) {
    hook.fn();
  }
  uint64_t window_events = 0;
  for (const auto& rt : runtimes_) {
    window_events += rt->events;
    if (rt->id != 0 && rt->events > 0) {
      rt->cost_pred = rt->events;
    }
    rt->total_events += rt->events;
    rt->period_events += rt->events;
    events_executed_ += rt->events;
    rt->events = 0;
  }
  adapt_events_ += window_events;

  // Obs flush batching: defer while traffic is light, bounded by
  // flush_max_defer windows so registry staleness stays small. Consecutive
  // windows never overlap in time (all events left pending after window k
  // are >= its end), so batched records still sort into the exact sequence
  // per-window flushes would have produced.
  pending_obs_records_ = 0;
  for (const ShardObsBuffer* buffer : obs_buffers_) {
    if (buffer != nullptr) {
      pending_obs_records_ += buffer->pending();
    }
  }
  ++windows_since_flush_;
  if (pending_obs_records_ >= config_.flush_batch_records ||
      windows_since_flush_ >= std::max(1u, config_.flush_max_defer)) {
    FlushObsNow();
  }

  ++windows_;
  if (!links_.empty()) {
    RetireDrainedLinks();
  }
  MaybeAdaptWindow();
  if (config_.auto_rebalance) {
    MaybeRebalance();
  }
}

void ParallelKernel::FlushObsNow() {
  if (windows_since_flush_ == 0 && pending_obs_records_ == 0) {
    return;
  }
  flush_records_.Add(
      static_cast<double>(flusher_.Flush(obs_buffers_, targets_)));
  pending_obs_records_ = 0;
  windows_since_flush_ = 0;
  ++flushes_;
}

void ParallelKernel::MaybeAdaptWindow() {
  if (lookahead_bound_ <= lookahead_) {
    return;  // widening not declared safe; the window stays at the floor
  }
  if (++adapt_windows_ < std::max(1u, config_.adapt_period)) {
    return;
  }
  const uint64_t spills = channel_spills();
  const uint64_t spill_delta = spills - adapt_last_spills_;
  // Multiplicative increase/decrease between the declared bounds. Every
  // input — merged cross-shard counts, executed-event counts, spill totals
  // — is a pure function of the seed and the shard map, so the width
  // trajectory is identical at every thread count.
  if (spill_delta > 0 || adapt_cross_ * kShrinkCrossDen > adapt_events_) {
    eff_lookahead_ = std::max(lookahead_, eff_lookahead_ / 2);
  } else if (adapt_cross_ * kGrowCrossDen < adapt_events_) {
    eff_lookahead_ = std::min(lookahead_bound_, eff_lookahead_ * 2);
  }
  adapt_last_spills_ = spills;
  adapt_cross_ = 0;
  adapt_events_ = 0;
  adapt_windows_ = 0;
}

void ParallelKernel::RetireDrainedLinks() {
  // A migration's source has drained: no event that predates the move can
  // still touch the migrated rack's entities, so the sequential-execution
  // fence can drop and the two shards become independent claim units again.
  bool changed = false;
  for (size_t i = 0; i < links_.size();) {
    if (runtimes_[links_[i].src]->queue->empty() &&
        Channel(links_[i].src, links_[i].dst).empty()) {
      links_[i] = links_.back();
      links_.pop_back();
      changed = true;
    } else {
      ++i;
    }
  }
  if (changed) {
    RebuildGroups();
  }
}

void ParallelKernel::RebuildGroups() {
  // Tiny union-find over the worker shards; the leader is the smallest
  // member id so group identity is stable and deterministic.
  for (uint32_t s = 0; s < shard_total_; ++s) {
    group_of_[s] = s;
  }
  auto find = [this](uint32_t s) {
    while (group_of_[s] != s) {
      group_of_[s] = group_of_[group_of_[s]];
      s = group_of_[s];
    }
    return s;
  };
  for (const ShardLink& link : links_) {
    const uint32_t a = find(link.src);
    const uint32_t b = find(link.dst);
    if (a != b) {
      group_of_[std::max(a, b)] = std::min(a, b);
    }
  }
  for (uint32_t s = 1; s < shard_total_; ++s) {
    group_of_[s] = find(s);
  }
}

void ParallelKernel::MaybeRebalance() {
  if (windows_ % std::max(1u, config_.rebalance_period) != 0 ||
      shard_total_ <= 2 || rack_to_shard_.empty()) {
    return;
  }
  // Hot / cold worker shards by events executed since the last check.
  uint64_t total = 0;
  uint32_t hot = 0, cold = 0;
  uint64_t hot_events = 0;
  uint64_t cold_events = UINT64_MAX;
  for (uint32_t s = 1; s < shard_total_; ++s) {
    const uint64_t e = runtimes_[s]->period_events;
    total += e;
    if (e > hot_events) {
      hot_events = e;
      hot = s;
    }
    if (e < cold_events) {
      cold_events = e;
      cold = s;
    }
  }
  const uint32_t workers = shard_total_ - 1;
  const double mean = static_cast<double>(total) / workers;
  const bool skewed =
      total > 0 && hot != cold &&
      static_cast<double>(hot_events) > config_.rebalance_trigger * mean;
  if (skewed && group_of_[hot] != group_of_[cold]) {
    // Pick the migration rack: the hot shard's most-loaded attributed rack
    // whose traffic fits inside the excess (so one move cannot overshoot
    // and flip the skew), falling back to its lightest nonzero rack. Racks
    // on shard 0 are never touched — the coordinator domain is special.
    const uint64_t excess =
        hot_events - static_cast<uint64_t>(mean);
    int pick = -1;
    uint64_t pick_events = 0;
    int fallback = -1;
    uint64_t fallback_events = UINT64_MAX;
    int hot_racks = 0;
    for (size_t r = 0; r < rack_to_shard_.size(); ++r) {
      if (rack_to_shard_[r] != hot) {
        continue;
      }
      ++hot_racks;
      const uint64_t e = rack_period_events_[r];
      if (e == 0 || rack_move_cooldown_[r] > 0) {
        continue;
      }
      if (e <= excess && e > pick_events) {
        pick_events = e;
        pick = static_cast<int>(r);
      }
      if (e < fallback_events) {
        fallback_events = e;
        fallback = static_cast<int>(r);
      }
    }
    if (pick < 0) {
      pick = fallback;
    }
    // A shard whose only rack is hot has nothing to shed — moving it would
    // just relocate the whole problem and pay a link for it.
    if (pick >= 0 && hot_racks >= 2) {
      rack_to_shard_[static_cast<size_t>(pick)] = cold;
      rack_move_cooldown_[static_cast<size_t>(pick)] =
          kRackMoveCooldownPeriods;
      links_.push_back(ShardLink{hot, cold});
      RebuildGroups();
      ++rebalances_;
    }
  }
  for (auto& rt : runtimes_) {
    rt->period_events = 0;
  }
  std::fill(rack_period_events_.begin(), rack_period_events_.end(), 0);
  for (uint32_t& cd : rack_move_cooldown_) {
    if (cd > 0) {
      --cd;
    }
  }
}

SimTime ParallelKernel::FoldFinalTime(SimTime deadline) {
  SimTime final = *now_;
  for (const auto& rt : runtimes_) {
    if (rt->id != 0 && rt->now > final) {
      final = rt->now;
    }
  }
  if (final > deadline) {
    final = deadline;
  }
  *now_ = final;
  return final;
}

SimTime ParallelKernel::RunLoop(SimTime deadline) {
  sharded_work_ = HasShardedWork();
  for (;;) {
    if (!sharded_work_) {
      // Serial fast path: the kFast inner loop, verbatim. ScheduleOnShard
      // flips sharded_work_ the moment an event lands on a worker shard.
      const SimTime next = root_queue_->NextTime();
      if (next == SimTime::Max() || next > deadline) {
        break;
      }
      *now_ = next;
      root_queue_->PopAndRun();
      ++events_executed_;
      continue;
    }
    if (!RunWindowBatch(deadline)) {
      break;
    }
    sharded_work_ = HasShardedWork();
    if (!sharded_work_) {
      // Leaving windowed mode: any deferred obs records must land before
      // shard 0 resumes writing the shared sinks directly, and the idle
      // queues are the natural moment for migration links to retire.
      FlushObsNow();
      if (!links_.empty()) {
        RetireDrainedLinks();
      }
    }
  }
  FlushObsNow();
  if (!links_.empty()) {
    RetireDrainedLinks();
  }
  return FoldFinalTime(deadline);
}

SimTime ParallelKernel::RunToCompletion() { return RunLoop(SimTime::Max()); }

SimTime ParallelKernel::RunUntil(SimTime deadline) {
  RunLoop(deadline);
  if (*now_ < deadline) {
    *now_ = deadline;
  }
  return *now_;
}

bool ParallelKernel::Step() {
  if (!HasShardedWork()) {
    if (root_queue_->empty()) {
      return false;
    }
    *now_ = root_queue_->NextTime();
    root_queue_->PopAndRun();
    ++events_executed_;
    return true;
  }
  const bool ran = RunWindowBatch(SimTime::Max());
  // Single-stepping is an inspection workflow: make the window's effects
  // visible immediately instead of batching across steps.
  FlushObsNow();
  return ran;
}

}  // namespace udc
