#include "src/sim/parallel_kernel.h"

#include <algorithm>
#include <cassert>
#include <utility>

#include "src/common/logging.h"
#include "src/obs/flight_recorder.h"

namespace udc {

thread_local ParallelKernel::ShardRuntime* ParallelKernel::tls_shard_ =
    nullptr;

namespace {
// Spin budget before falling back to the condvar, for both sides of the
// window barrier. Windows are typically a few microseconds of work, so a
// short spin absorbs most handoffs without burning a syscall.
constexpr int kBarrierSpins = 4096;
}  // namespace

ParallelKernel::ParallelKernel(EventQueue* root_queue, SimTime* now,
                               ParallelConfig config)
    : root_queue_(root_queue),
      now_(now),
      lookahead_(config.lookahead),
      shard_total_(static_cast<uint32_t>(std::max(0, config.shards)) + 1) {
  int threads = config.threads;
  if (threads <= 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    threads = hw > 1 ? static_cast<int>(hw - 1) : 1;
  }
  const int worker_shards = static_cast<int>(shard_total_) - 1;
  thread_count_ = worker_shards > 0 ? std::min(threads, worker_shards) : 0;

  runtimes_.resize(shard_total_);
  obs_buffers_.resize(shard_total_, nullptr);
  for (uint32_t s = 0; s < shard_total_; ++s) {
    auto rt = std::make_unique<ShardRuntime>();
    rt->id = s;
    if (s == 0) {
      rt->queue = root_queue_;
    } else {
      rt->owned_queue = std::make_unique<EventQueue>();
      rt->queue = rt->owned_queue.get();
      obs_buffers_[s] = &rt->obs;
    }
    runtimes_[s] = std::move(rt);
  }

  channels_.resize(static_cast<size_t>(shard_total_) * shard_total_);
  for (uint32_t src = 0; src < shard_total_; ++src) {
    for (uint32_t dest = 0; dest < shard_total_; ++dest) {
      if (src != dest) {
        channels_[src * shard_total_ + dest] =
            std::make_unique<SpscChannel<CrossShardEvent>>(
                config.channel_capacity);
      }
    }
  }
}

ParallelKernel::~ParallelKernel() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    shutdown_.store(true, std::memory_order_release);
  }
  cv_work_.notify_all();
  for (std::thread& t : workers_) {
    t.join();
  }
}

void ParallelKernel::AssignRack(int rack, uint32_t shard) {
  // Cold serial-phase contract points use UDC_CHECK so a violation in a
  // release build dies loudly — after the flight recorder dumps its rings.
  UDC_CHECK(shard < shard_total_) << " rack " << rack << " -> shard " << shard;
  UDC_CHECK(!in_window_) << " shard map is fixed while a window is executing";
  if (rack < 0) {
    return;
  }
  if (static_cast<size_t>(rack) >= rack_to_shard_.size()) {
    rack_to_shard_.resize(static_cast<size_t>(rack) + 1, 0);
  }
  rack_to_shard_[rack] = shard;
}

uint32_t ParallelKernel::CurrentShard() {
  ShardRuntime* rt = tls_shard_;
  return rt != nullptr ? rt->id : 0;
}

ShardObsBuffer* ParallelKernel::CurrentObsBuffer() {
  ShardRuntime* rt = tls_shard_;
  return rt != nullptr ? &rt->obs : nullptr;
}

SimTime ParallelKernel::CurrentNow(const SimTime* coordinator_now) const {
  ShardRuntime* rt = tls_shard_;
  return rt != nullptr ? rt->now : *coordinator_now;
}

void ParallelKernel::SetFlightRecorder(FlightRecorder* recorder) {
  UDC_CHECK(!in_window_) << " flight recorder wiring is serial-phase only";
  if (recorder != nullptr) {
    recorder->EnsureRings(shard_total_);
  }
  for (uint32_t s = 1; s < shard_total_; ++s) {
    runtimes_[s]->obs.SetFlightRing(recorder, s);
  }
}

BarrierHookRegistration ParallelKernel::AddBarrierHook(
    std::function<void()> hook) {
  assert(!in_window_ && "barrier hooks are registered in the serial phase");
  const uint64_t id = ++next_hook_id_;
  barrier_hooks_.push_back(BarrierHook{id, std::move(hook)});
  return BarrierHookRegistration(this, id);
}

void ParallelKernel::RemoveBarrierHook(uint64_t id) {
  assert(!in_window_ && "barrier hooks are removed in the serial phase");
  for (auto it = barrier_hooks_.begin(); it != barrier_hooks_.end(); ++it) {
    if (it->id == id) {
      barrier_hooks_.erase(it);
      return;
    }
  }
}

void ParallelKernel::ScheduleOnShard(uint32_t shard, SimTime when,
                                     InlineCallback cb) {
  assert(shard < shard_total_);
  ShardRuntime* src = tls_shard_;
  const uint32_t src_id = src != nullptr ? src->id : 0;
  if (shard == src_id) {
    (src != nullptr ? src->queue : root_queue_)->Schedule(when, std::move(cb));
    return;
  }
  if (!in_window_) {
    // Serial phase: the coordinator owns every queue; insert directly.
    runtimes_[shard]->queue->Schedule(when, std::move(cb));
    if (shard != 0) {
      sharded_work_ = true;
    }
    return;
  }
  assert(when >= window_end_ &&
         "cross-shard schedule lands inside the lookahead window");
  ShardRuntime* owner = src != nullptr ? src : runtimes_[0].get();
  Channel(src_id, shard).Push(
      CrossShardEvent{when, owner->emit_seq++, std::move(cb)});
}

bool ParallelKernel::HasShardedWork() const {
  for (uint32_t s = 1; s < shard_total_; ++s) {
    if (!runtimes_[s]->queue->empty()) {
      return true;
    }
  }
  return false;
}

uint64_t ParallelKernel::channel_spills() const {
  uint64_t total = 0;
  for (const auto& ch : channels_) {
    if (ch != nullptr) {
      total += ch->spill_count();
    }
  }
  return total;
}

void ParallelKernel::RunShardWindow(ShardRuntime* rt, SimTime window_end,
                                    SimTime deadline) {
  EventQueue* q = rt->queue;
  if (rt->id == 0) {
    // The unsharded domain writes the published clock and the shared obs
    // sinks directly; no thread-local context (CurrentObsBuffer stays null).
    for (;;) {
      const SimTime next = q->NextTime();
      if (next >= window_end || next > deadline) {
        break;
      }
      *now_ = next;
      q->PopAndRun();
      ++rt->events;
    }
    return;
  }
  tls_shard_ = rt;
  for (;;) {
    const SimTime next = q->NextTime();
    if (next >= window_end || next > deadline) {
      break;
    }
    rt->now = next;
    q->PopAndRun();
    ++rt->events;
  }
  tls_shard_ = nullptr;
}

void ParallelKernel::StartWorkers() {
  workers_.reserve(thread_count_);
  for (int i = 0; i < thread_count_; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

void ParallelKernel::WorkerLoop(int worker_index) {
  uint64_t seen = 0;
  for (;;) {
    const uint64_t target = seen + 1;
    bool ready = false;
    for (int spin = 0; spin < kBarrierSpins; ++spin) {
      if (shutdown_.load(std::memory_order_acquire)) {
        return;
      }
      if (epoch_.load(std::memory_order_acquire) >= target) {
        ready = true;
        break;
      }
    }
    if (!ready) {
      std::unique_lock<std::mutex> lk(mu_);
      cv_work_.wait(lk, [&] {
        return shutdown_.load(std::memory_order_acquire) ||
               epoch_.load(std::memory_order_acquire) >= target;
      });
      if (shutdown_.load(std::memory_order_acquire)) {
        return;
      }
    }
    seen = target;
    // The epoch acquire pairs with the coordinator's release: window bounds
    // written before the bump are visible here.
    const SimTime window_end = window_end_;
    const SimTime deadline = window_deadline_;
    for (uint32_t s = static_cast<uint32_t>(1 + worker_index);
         s < shard_total_; s += static_cast<uint32_t>(thread_count_)) {
      RunShardWindow(runtimes_[s].get(), window_end, deadline);
    }
    const int active = static_cast<int>(workers_.size());
    if (done_count_.fetch_add(1, std::memory_order_acq_rel) + 1 == active) {
      // Lock pairs with the coordinator's predicate check so the final
      // notify can never be missed.
      std::lock_guard<std::mutex> lk(mu_);
      cv_done_.notify_one();
    }
  }
}

bool ParallelKernel::RunWindowBatch(SimTime deadline) {
  SimTime t_min = SimTime::Max();
  SimTime t_second = SimTime::Max();
  uint32_t argmin = 0;
  for (uint32_t s = 0; s < shard_total_; ++s) {
    const SimTime t = runtimes_[s]->queue->NextTime();
    if (t < t_min) {
      t_second = t_min;
      t_min = t;
      argmin = s;
    } else if (t < t_second) {
      t_second = t;
    }
  }
  if (t_min == SimTime::Max() || t_min > deadline) {
    return false;
  }
  const SimTime window_end = t_min + lookahead_;
  window_end_ = window_end;
  window_deadline_ = deadline;
  in_window_ = true;
  if (t_second >= window_end) {
    // Solo window: every event before window_end lives on one shard. Run it
    // inline (with the worker-shard context if it is a worker shard) and
    // skip the pool wakeup. The outcome is identical either way — solo
    // detection reads only queue state, which is deterministic.
    RunShardWindow(runtimes_[argmin].get(), window_end, deadline);
  } else {
    if (workers_.empty()) {
      StartWorkers();
    }
    done_count_.store(0, std::memory_order_relaxed);
    {
      std::lock_guard<std::mutex> lk(mu_);
      epoch_.fetch_add(1, std::memory_order_release);
    }
    cv_work_.notify_all();
    RunShardWindow(runtimes_[0].get(), window_end, deadline);
    const int active = static_cast<int>(workers_.size());
    bool done = false;
    for (int spin = 0; spin < kBarrierSpins; ++spin) {
      if (done_count_.load(std::memory_order_acquire) == active) {
        done = true;
        break;
      }
    }
    if (!done) {
      std::unique_lock<std::mutex> lk(mu_);
      cv_done_.wait(lk, [&] {
        return done_count_.load(std::memory_order_acquire) == active;
      });
    }
  }
  in_window_ = false;
  FinishWindow();
  return true;
}

void ParallelKernel::MergeChannels() {
  for (uint32_t dest = 0; dest < shard_total_; ++dest) {
    merge_scratch_.clear();
    for (uint32_t src = 0; src < shard_total_; ++src) {
      if (src == dest) {
        continue;
      }
      SpscChannel<CrossShardEvent>& ch = Channel(src, dest);
      if (ch.empty()) {
        continue;
      }
      drain_scratch_.clear();
      ch.DrainAll(&drain_scratch_);
      for (CrossShardEvent& ev : drain_scratch_) {
        merge_scratch_.push_back(
            MergeItem{ev.when, src, ev.seq, std::move(ev.cb)});
      }
    }
    if (merge_scratch_.empty()) {
      continue;
    }
    // Canonical cross-shard arrival order: independent of which thread ran
    // which source shard, hence independent of the thread count.
    std::sort(merge_scratch_.begin(), merge_scratch_.end(),
              [](const MergeItem& a, const MergeItem& b) {
                if (a.when != b.when) {
                  return a.when < b.when;
                }
                if (a.src != b.src) {
                  return a.src < b.src;
                }
                return a.seq < b.seq;
              });
    EventQueue* q = runtimes_[dest]->queue;
    for (MergeItem& item : merge_scratch_) {
      q->Schedule(item.when, std::move(item.cb));
    }
  }
}

void ParallelKernel::FinishWindow() {
  MergeChannels();
  for (const auto& hook : barrier_hooks_) {
    hook.fn();
  }
  size_t flush_records = 0;
  for (const ShardObsBuffer* buffer : obs_buffers_) {
    if (buffer != nullptr) {
      flush_records += buffer->pending();
    }
  }
  flush_records_.Add(static_cast<double>(flush_records));
  flusher_.Flush(obs_buffers_, targets_);
  for (const auto& rt : runtimes_) {
    events_executed_ += rt->events;
    rt->events = 0;
  }
  ++windows_;
}

SimTime ParallelKernel::FoldFinalTime(SimTime deadline) {
  SimTime final = *now_;
  for (const auto& rt : runtimes_) {
    if (rt->id != 0 && rt->now > final) {
      final = rt->now;
    }
  }
  if (final > deadline) {
    final = deadline;
  }
  *now_ = final;
  return final;
}

SimTime ParallelKernel::RunLoop(SimTime deadline) {
  sharded_work_ = HasShardedWork();
  for (;;) {
    if (!sharded_work_) {
      // Serial fast path: the kFast inner loop, verbatim. ScheduleOnShard
      // flips sharded_work_ the moment an event lands on a worker shard.
      const SimTime next = root_queue_->NextTime();
      if (next == SimTime::Max() || next > deadline) {
        break;
      }
      *now_ = next;
      root_queue_->PopAndRun();
      ++events_executed_;
      continue;
    }
    if (!RunWindowBatch(deadline)) {
      break;
    }
    sharded_work_ = HasShardedWork();
  }
  return FoldFinalTime(deadline);
}

SimTime ParallelKernel::RunToCompletion() { return RunLoop(SimTime::Max()); }

SimTime ParallelKernel::RunUntil(SimTime deadline) {
  RunLoop(deadline);
  if (*now_ < deadline) {
    *now_ = deadline;
  }
  return *now_;
}

bool ParallelKernel::Step() {
  if (!HasShardedWork()) {
    if (root_queue_->empty()) {
      return false;
    }
    *now_ = root_queue_->NextTime();
    root_queue_->PopAndRun();
    ++events_executed_;
    return true;
  }
  return RunWindowBatch(SimTime::Max());
}

}  // namespace udc
