// Conservative parallel simulation kernel (SimKernel::kParallel).
//
// The simulated topology is partitioned into shard domains at rack
// granularity. Shard 0 is the *unsharded domain*: it is always executed by
// the coordinator thread (the thread that called Run*), writes the shared
// clock / trace / metrics / spans directly, and is where everything lives by
// default — a run that never calls AssignRack() behaves exactly like
// SimKernel::kFast, event for event and byte for byte. Shards 1..S are
// *worker shards*: each owns a private slot-slab EventQueue and a
// ShardObsBuffer.
//
// Time advances in conservative lookahead windows. Each window spans
// [W, W + L) where W is the earliest pending event across all shards and
// `L` is the current window width (see the adaptive controller below): no
// event executed inside the window can schedule a cross-shard effect
// earlier than the window's end, so every shard may drain its own queue
// through the window without synchronizing. Cross-shard schedules issued
// inside a window ride per-(source, destination) lock-free SPSC channels
// and are merged at the window barrier in canonical (when, source shard,
// emission seq) order; buffered observability records flush in canonical
// (time, shard, seq) order (src/obs/shard_buffer.h). Both orders are pure
// functions of the seed and the shard map, so the same run at 1, 2, 4 or 8
// worker threads produces byte-identical traces and metric snapshots.
//
// Execution inside a window is *work stealing* at shard granularity: the
// coordinator publishes a worklist of claimable shard groups ordered by
// predicted cost (last window's event count, heaviest first — LPT), and
// every executor — the worker threads and the coordinator itself, once its
// shard-0 slice is drained — claims groups off a shared atomic ticket until
// the list is empty. Which thread runs a group is invisible to the output
// (all state a window touches is shard-local or channel-buffered), so the
// dynamic assignment is determinism-free by construction, and a skewed
// shard no longer serializes behind whatever else a static stripe pinned to
// its thread.
//
// Between windows — at the barrier, with every worker quiesced — the kernel
// may *rebalance* the rack->shard map (auto_rebalance): per-shard event
// counts are tracked per window, and when one worker shard runs hot
// (max/mean above rebalance_trigger) a rack is migrated from it to the
// coldest worker shard. Events already sitting in the hot shard's queue
// cannot move (callbacks are opaque), so the migration *links* source and
// destination: linked shards form one claim unit that interleaves its
// member queues by event time — a kFast-style sub-simulation on a single
// thread — until the source has fully drained. That preserves the
// invariant that all events touching a rack's entities execute on one
// thread at a time, and makes sub-lookahead traffic between the linked
// shards legal (schedules within a claim unit insert directly instead of
// riding a channel). The migration decision reads only sim-visible state
// (window counts, the window index), so the rebalance trajectory — and
// therefore the trace — is identical at every thread count.
//
// The window width L adapts between `lookahead` (the guaranteed-safe
// minimum cross-shard latency) and `lookahead_bound` (a caller-declared
// upper bound that must also be <= the true minimum cross-shard scheduling
// delay of the workload): sparse cross-shard traffic widens the window
// (fewer barriers per simulated second), channel spills or a high
// cross-shard event fraction shrink it back. The controller's inputs —
// merged channel-event counts and spill totals — are pure functions of the
// seed, so the width trajectory is deterministic. When lookahead_bound is
// unset (0) the window is fixed at `lookahead`, exactly the old behavior.
//
// Two fast paths keep the serial case honest:
//   * while no worker shard has pending events, the coordinator drains
//     shard 0 directly — no windows, no barriers, no buffering; this is the
//     kFast inner loop verbatim.
//   * when at most one claim unit has events inside the coming window, the
//     coordinator executes the window inline instead of waking the pool.
//
// Contract for code running on worker shards: interact with the simulation
// only through At/After/now/Cancel (which this kernel routes to the current
// shard via a thread-local context), the shard-aware Fabric/ActorSystem
// paths, and ShardObsBuffer. The shared MetricsRegistry, SpanTracer and
// TraceRecorder are coordinator-only.
//
// Determinism contract: output is always byte-identical across thread
// counts. It is additionally byte-identical to kFast when same-timestamp
// events never straddle a shard boundary (kFast breaks global-time ties by
// global scheduling order, which a partitioned run cannot observe); the
// differential tests construct their workloads accordingly.

#ifndef UDC_SRC_SIM_PARALLEL_KERNEL_H_
#define UDC_SRC_SIM_PARALLEL_KERNEL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "src/common/sketch_histogram.h"
#include "src/common/units.h"
#include "src/obs/shard_buffer.h"
#include "src/sim/event_queue.h"
#include "src/sim/inline_callback.h"
#include "src/sim/spsc_channel.h"

namespace udc {

class ParallelKernel;

// RAII registration for a window-barrier hook
// (ParallelKernel::AddBarrierHook). Deregisters the hook on destruction, so
// a Fabric/ActorSystem destroyed before the simulation's next Run* cannot
// leave a dangling callback behind, and repeated construction against one
// kernel cannot accumulate hooks. Movable, not copyable. The kernel must
// outlive the registration — it does in practice, because the Simulation
// owns the kernel and every shard-aware layer holds a Simulation*.
class BarrierHookRegistration {
 public:
  BarrierHookRegistration() = default;
  BarrierHookRegistration(ParallelKernel* kernel, uint64_t id)
      : kernel_(kernel), id_(id) {}
  BarrierHookRegistration(BarrierHookRegistration&& other) noexcept
      : kernel_(other.kernel_), id_(other.id_) {
    other.kernel_ = nullptr;
  }
  BarrierHookRegistration& operator=(BarrierHookRegistration&& other) noexcept {
    if (this != &other) {
      Reset();
      kernel_ = other.kernel_;
      id_ = other.id_;
      other.kernel_ = nullptr;
    }
    return *this;
  }
  BarrierHookRegistration(const BarrierHookRegistration&) = delete;
  BarrierHookRegistration& operator=(const BarrierHookRegistration&) = delete;
  ~BarrierHookRegistration() { Reset(); }

  // Deregisters now (idempotent); defined below ParallelKernel.
  void Reset();

 private:
  ParallelKernel* kernel_ = nullptr;
  uint64_t id_ = 0;
};

struct ParallelConfig {
  // Worker shard domains (ids 1..shards). Shard 0 — the unsharded
  // coordinator domain — always exists on top of these.
  int shards = 8;
  // Worker threads; 0 = min(shards, hardware_concurrency - 1), at least 1.
  int threads = 0;
  // Minimum (guaranteed-safe) conservative window width. Must be <= the
  // minimum cross-shard fabric latency; the default matches
  // TopologyParams::inter_rack_latency.
  SimTime lookahead = SimTime::Micros(6);
  // Upper bound the adaptive controller may widen the window to. The caller
  // declares it safe: no cross-shard schedule may ever target a time closer
  // than this to the emitting event (the in-window assert enforces the
  // declaration). 0 disables widening — the window stays at `lookahead`.
  SimTime lookahead_bound = SimTime(0);
  // Windows between adaptive-controller decisions.
  uint32_t adapt_period = 8;
  // Ring capacity of each cross-shard SPSC channel (bursts spill).
  size_t channel_capacity = 256;
  // Barrier-time rack migration off hot shards (see file comment). The
  // decision inputs are sim-deterministic, so enabling it never perturbs
  // the cross-thread-count determinism contract.
  bool auto_rebalance = true;
  // Windows between rebalance checks.
  uint32_t rebalance_period = 64;
  // Per-shard event imbalance (max/mean over worker shards, measured across
  // the last rebalance period) that arms a migration.
  double rebalance_trigger = 2.0;
  // Obs flush batching: a barrier skips the flush while fewer than
  // `flush_batch_records` records are pending and fewer than
  // `flush_max_defer` windows have elapsed since the last flush. Batching
  // is deterministic (driven by pending-record counts); the flush still
  // applies records in canonical order, and consecutive windows never
  // overlap in time, so the merged stream is unchanged — only the registry
  // staleness visible to shard-0 readers grows, bounded by flush_max_defer
  // windows. 1/0 restores a flush at every barrier.
  uint32_t flush_max_defer = 8;
  size_t flush_batch_records = 4096;
};

// Point-in-time kernel counters for benches, SLO probes and tests.
// Deliberately not registry series: the registry's exposition must stay
// byte-identical to kFast, which runs no windows. Wall-clock-derived fields
// (barrier_stall_pct) are observational only — no control decision reads
// them.
struct ParallelKernelStats {
  uint64_t windows = 0;
  uint64_t flushes = 0;           // obs flushes actually run (<= windows)
  uint64_t rebalances = 0;        // racks migrated between worker shards
  uint64_t cross_shard_events = 0;  // channel events merged at barriers
  uint64_t steal_claims = 0;      // claim-units executed via the worklist
  // Lifetime per-worker-shard executed events: max/mean, 1.0 = balanced.
  double imbalance_ratio = 1.0;
  // Coordinator time spent waiting at pooled-window barriers, as a percent
  // of pooled-window wall time. 0 when no pooled window ran.
  double barrier_stall_pct = 0.0;
  SimTime effective_lookahead;    // current adaptive window width
};

class ParallelKernel {
 public:
  // `root_queue` is the Simulation's own (shard 0) queue and `now` its
  // clock; both stay owned by the Simulation so unsharded execution is
  // indistinguishable from kFast. This header is included by simulation.h,
  // hence the pointer seam instead of a Simulation reference.
  ParallelKernel(EventQueue* root_queue, SimTime* now, ParallelConfig config);
  ParallelKernel(const ParallelKernel&) = delete;
  ParallelKernel& operator=(const ParallelKernel&) = delete;
  ~ParallelKernel();

  // --- Setup (serial phase only).

  // Maps a topology rack to a shard domain. Unassigned racks belong to
  // shard 0. `shard` may be 0..shards().
  void AssignRack(int rack, uint32_t shard);
  uint32_t ShardOfRack(int rack) const {
    return rack >= 0 && static_cast<size_t>(rack) < rack_to_shard_.size()
               ? rack_to_shard_[rack]
               : 0;
  }
  // Widens/narrows the guaranteed-safe window floor. Callers that raise
  // cross-shard latency above the default (e.g. a bench topology) should
  // raise lookahead to match.
  void set_lookahead(SimTime lookahead) {
    lookahead_ = lookahead;
    eff_lookahead_ = lookahead;
  }
  SimTime lookahead() const { return lookahead_; }
  // Declares the adaptive upper bound post-construction (serial phase).
  void set_lookahead_bound(SimTime bound) { lookahead_bound_ = bound; }

  // Worker shard count S (domains are 0..S, 0 = coordinator).
  uint32_t shards() const { return shard_total_ - 1; }
  int threads() const { return thread_count_; }

  // Destination sinks for the barrier flush of buffered observability.
  void SetObsTargets(ObsFlushTargets targets) { targets_ = std::move(targets); }
  // Tees every worker shard's completed spans / trace lines into
  // `recorder`'s per-shard rings at emission time (the black box sees them
  // even if the run dies before the next barrier). Serial phase only.
  void SetFlightRecorder(FlightRecorder* recorder);
  // Registers a hook that runs at every window barrier, on the coordinator,
  // with all workers quiesced — after cross-shard merge, before the obs
  // flush. Used by the fabric and actor layers to fold per-shard counter
  // deltas. The returned registration deregisters the hook when destroyed;
  // the caller must keep it alive for as long as the hook should fire.
  // Serial phase only.
  [[nodiscard]] BarrierHookRegistration AddBarrierHook(
      std::function<void()> hook);
  void RemoveBarrierHook(uint64_t id);

  // --- Execution context (any thread).

  // Shard executing on this thread; 0 on the coordinator and outside Run*.
  static uint32_t CurrentShard();
  // This thread's obs buffer, or nullptr on shard 0 (which writes the
  // shared sinks directly).
  static ShardObsBuffer* CurrentObsBuffer();
  // The simulated time as seen by the current thread: the executing worker
  // shard's clock, else `*coordinator_now` (the Simulation's shard-0
  // clock). Takes a pointer so the shard-0 clock is dereferenced only when
  // this thread has no shard context — a worker thread must never load it,
  // since the coordinator writes it concurrently while running shard 0's
  // half of the window.
  SimTime CurrentNow(const SimTime* coordinator_now) const;

  // Schedules onto the current thread's shard (Simulation::At routes here).
  EventHandle ScheduleCurrent(SimTime when, InlineCallback cb) {
    ShardRuntime* rt = tls_shard_;
    return (rt != nullptr ? rt->queue : root_queue_)
        ->Schedule(when, std::move(cb));
  }

  // Schedules onto an explicit shard. In the serial phase the coordinator
  // owns every queue and inserts directly; inside a window, cross-shard
  // schedules ride the SPSC channel and merge at the barrier (which is why
  // no cancellable handle is returned — handles are queue-local).
  // In-window cross-shard `when` must be >= the window end; any path whose
  // delay is >= the effective lookahead satisfies this by construction.
  // `rack`, when >= 0, attributes the event to a topology rack for the
  // rebalancer's per-rack load accounting (the fabric/actor layers pass the
  // destination rack; plain timers are unattributed).
  void ScheduleOnShard(uint32_t shard, SimTime when, InlineCallback cb,
                       int rack = -1);

  // Cancels a handle scheduled from this thread's shard. Handles do not
  // travel across shards.
  bool Cancel(EventHandle handle) {
    ShardRuntime* rt = tls_shard_;
    return (rt != nullptr ? rt->queue : root_queue_)->Cancel(handle);
  }

  bool InWindow() const { return in_window_; }

  // --- Run loop (coordinator thread only).

  SimTime RunToCompletion();
  SimTime RunUntil(SimTime deadline);
  // Serial phase: runs one shard-0 event. Sharded phase: runs one whole
  // window (and flushes buffered obs, so state is inspectable between
  // steps). Returns false when idle.
  bool Step();

  bool HasShardedWork() const;
  uint64_t events_executed() const { return events_executed_; }
  uint64_t windows_run() const { return windows_; }
  // Total cross-shard events that overflowed a channel ring (diagnostic).
  uint64_t channel_spills() const;
  // Counters/ratios for benches and SLO probes; see ParallelKernelStats.
  ParallelKernelStats Stats() const;
  // Lifetime executed-event counts for worker shards 1..S (index 0 of the
  // returned vector is worker shard 1).
  std::vector<uint64_t> PerShardEvents() const;
  // Distribution of buffered obs records applied per barrier flush (a flush
  // may cover several batched windows). Deliberately kernel-internal, never
  // a registry series: the registry's exposition must stay byte-identical
  // to kFast, which runs no windows. SLO probes (SloSpec::SourceKind::
  // kProbe) are the sanctioned reader.
  const SketchHistogram& flush_records_per_window() const {
    return flush_records_;
  }

 private:
  struct ShardRuntime {
    uint32_t id = 0;
    EventQueue* queue = nullptr;  // shard 0 aliases the Simulation queue
    std::unique_ptr<EventQueue> owned_queue;
    ShardObsBuffer obs;
    SimTime now;        // local clock while executing a window
    uint64_t events = 0;    // window-local; folded at the barrier
    uint64_t emit_seq = 0;  // cross-shard emission order (merge key)
    // Coordinator-only bookkeeping (written at the barrier):
    uint64_t cost_pred = 0;     // last nonempty window's events (LPT key)
    uint64_t total_events = 0;  // lifetime, for imbalance stats
    uint64_t period_events = 0; // since the last rebalance check
  };
  struct CrossShardEvent {
    SimTime when;
    uint64_t seq = 0;
    int32_t rack = -1;  // destination rack for rebalancer attribution
    InlineCallback cb;
  };
  struct MergeItem {
    SimTime when;
    uint32_t src = 0;
    uint64_t seq = 0;
    InlineCallback cb;
  };
  struct BarrierHook {
    uint64_t id = 0;
    std::function<void()> fn;
  };
  // A migration's safety fence: shards `src` and `dst` execute as one
  // time-interleaved claim unit until `src`'s queue fully drains (its
  // leftover events may touch entities of the migrated rack, which now also
  // receive events on `dst`).
  struct ShardLink {
    uint32_t src = 0;
    uint32_t dst = 0;
  };

  SpscChannel<CrossShardEvent>& Channel(uint32_t src, uint32_t dest) {
    return *channels_[src * shard_total_ + dest];
  }

  SimTime RunLoop(SimTime deadline);
  // Opens and retires one window; false when the earliest event (across all
  // shards) is absent or past the deadline.
  bool RunWindowBatch(SimTime deadline);
  void RunShardWindow(ShardRuntime* rt, SimTime window_end, SimTime deadline);
  // Claims groups off work_list_ until the ticket runs out; runs on worker
  // threads and on the coordinator once its shard-0 slice is drained.
  void ClaimLoop();
  void RunClaimUnit(uint32_t leader, SimTime window_end, SimTime deadline);
  void MergeChannels();
  void FinishWindow();
  // Applies pending obs records now (canonical order); no-op when empty.
  void FlushObsNow();
  void MaybeAdaptWindow();
  void MaybeRebalance();
  void RetireDrainedLinks();
  void RebuildGroups();
  SimTime FoldFinalTime(SimTime deadline);

  void StartWorkers();
  void WorkerLoop(int worker_index);

  static thread_local ShardRuntime* tls_shard_;

  EventQueue* root_queue_;
  SimTime* now_;
  SimTime lookahead_;        // guaranteed-safe floor
  SimTime lookahead_bound_;  // adaptive ceiling; 0 = fixed window
  SimTime eff_lookahead_;    // current width, in [lookahead_, bound]
  uint32_t shard_total_;  // worker shards + 1
  int thread_count_;
  ParallelConfig config_;
  std::vector<uint32_t> rack_to_shard_;
  std::vector<std::unique_ptr<ShardRuntime>> runtimes_;
  std::vector<std::unique_ptr<SpscChannel<CrossShardEvent>>> channels_;
  std::vector<ShardObsBuffer*> obs_buffers_;  // by shard id; [0] is null
  ObsFlushTargets targets_;
  std::vector<BarrierHook> barrier_hooks_;
  uint64_t next_hook_id_ = 0;
  ObsFlusher flusher_;
  SketchHistogram flush_records_{0.01};
  std::vector<CrossShardEvent> drain_scratch_;
  std::vector<MergeItem> merge_scratch_;

  // Rebalancer state (coordinator-only).
  std::vector<uint64_t> rack_period_events_;  // arrivals since last check
  std::vector<uint32_t> rack_move_cooldown_;  // checks until movable again
  std::vector<ShardLink> links_;
  std::vector<uint32_t> group_of_;  // worker shard -> group leader shard
  uint64_t rebalances_ = 0;

  // Adaptive-window accumulators (coordinator-only).
  uint64_t adapt_events_ = 0;
  uint64_t adapt_cross_ = 0;
  uint64_t adapt_last_spills_ = 0;
  uint32_t adapt_windows_ = 0;

  // Obs flush batching (coordinator-only).
  uint32_t windows_since_flush_ = 0;
  size_t pending_obs_records_ = 0;
  uint64_t flushes_ = 0;

  // Lifetime stats (coordinator-only).
  uint64_t cross_shard_events_ = 0;
  uint64_t steal_claims_total_ = 0;
  uint64_t stall_ns_ = 0;        // coordinator barrier wait, pooled windows
  uint64_t pooled_wall_ns_ = 0;  // wall time of pooled windows

  // Run-loop state (coordinator-written; workers read window bounds after
  // the epoch release-store below).
  bool in_window_ = false;
  bool sharded_work_ = false;  // serial-loop hint; ScheduleOnShard sets it
  SimTime window_end_;
  SimTime window_deadline_;
  uint64_t events_executed_ = 0;
  uint64_t windows_ = 0;

  // Worker pool. The coordinator publishes the window bounds and the
  // claimable worklist, then bumps `epoch_`; executors claim entries via
  // `next_claim_` and bump `done_count_` when the ticket runs out. Condvars
  // back the spin phases, but syscalls are conditional: the coordinator
  // only takes the wake mutex when `parked_workers_` says someone actually
  // sleeps, and the last worker only signals `cv_done_` when
  // `coord_parked_` says the coordinator stopped spinning (both flag
  // handoffs are seq_cst — the classic Dekker store/load pairs).
  std::vector<std::thread> workers_;
  std::vector<uint32_t> work_list_;      // claimable group leaders, LPT order
  std::vector<uint64_t> group_cost_;     // scratch, by leader shard id
  std::mutex mu_;
  std::condition_variable cv_work_;
  std::condition_variable cv_done_;
  std::atomic<uint64_t> epoch_{0};
  std::atomic<uint32_t> next_claim_{0};
  std::atomic<int> done_count_{0};
  std::atomic<int> parked_workers_{0};
  std::atomic<bool> coord_parked_{false};
  std::atomic<bool> shutdown_{false};
};

inline void BarrierHookRegistration::Reset() {
  if (kernel_ != nullptr) {
    kernel_->RemoveBarrierHook(id_);
    kernel_ = nullptr;
  }
}

}  // namespace udc

#endif  // UDC_SRC_SIM_PARALLEL_KERNEL_H_
