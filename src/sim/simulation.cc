#include "src/sim/simulation.h"

#include <algorithm>
#include <cassert>
#include <utility>

#include "src/common/logging.h"

namespace udc {

Simulation::Simulation(uint64_t seed, SimKernel kernel, ParallelConfig parallel)
    : kernel_(kernel),
      now_(SimTime(0)),
      legacy_queue_(kernel == SimKernel::kLegacy
                        ? std::make_unique<LegacyEventQueue>()
                        : nullptr),
      parallel_(kernel == SimKernel::kParallel
                    ? std::make_unique<ParallelKernel>(&queue_, &now_, parallel)
                    : nullptr),
      rng_(seed),
      spans_([this] { return now_; }) {
  // The flight recorder is always on: ring 0 for the coordinator plus one
  // ring per worker shard, sized eagerly so recording never allocates.
  flight_recorder_.EnsureRings(1);
  if (parallel_ != nullptr) {
    // Buffered worker-shard observability lands in the shared sinks at every
    // window barrier. The trace target mirrors Trace(): render any spans
    // closed earlier in the flush first, so line order matches kFast.
    // `recorder` lets the flush suppress the span end-sink below while it
    // replays worker spans their own shard already taped.
    parallel_->SetObsTargets(ObsFlushTargets{
        &metrics_, &spans_,
        [this](SimTime t, std::string_view category, std::string_view detail) {
          MirrorSpans();
          trace_.Record(t, category, detail);
        },
        &flight_recorder_});
    parallel_->SetFlightRecorder(&flight_recorder_);
    breach_barrier_hook_ = parallel_->AddBarrierHook([this] {
      if (pending_breach_dump_reason_.empty()) {
        return;
      }
      const Status status = flight_recorder_.Dump(
          breach_dump_path_, &metrics_, pending_breach_dump_reason_);
      if (!status.ok()) {
        UDC_LOG(Error) << "breach dump failed: " << status.ToString();
      }
      pending_breach_dump_reason_.clear();
    });
  }
  spans_.set_on_end([this](const Span& span) {
    if (!flight_recorder_.in_flush_replay()) {
      flight_recorder_.RecordSpan(0, span.start, span.end, span.category,
                                  span.name);
    }
  });
  slos_.set_on_breach([this](const SloVerdict& v) { OnSloBreach(v); });
}

Simulation::~Simulation() {
  if (crash_hook_id_ != 0) {
    UnregisterCrashDumpHook(crash_hook_id_);
  }
}

void Simulation::set_crash_dump_path(std::string path) {
  crash_dump_path_ = std::move(path);
  if (crash_hook_id_ == 0 && !crash_dump_path_.empty()) {
    crash_hook_id_ = RegisterCrashDumpHook([this](std::string_view reason) {
      const Status status =
          flight_recorder_.Dump(crash_dump_path_, &metrics_, reason);
      if (!status.ok()) {
        UDC_LOG(Error) << "crash dump failed: " << status.ToString();
      }
    });
  }
}

void Simulation::ArmSloTicks(SimTime period, SimTime until) {
  assert(period > SimTime(0));
  const SimTime start = now();
  if (start >= until) {
    return;
  }
  const SimTime when = std::min(start + period, until);
  At(when, [this, period, until] {
    slos_.Tick(now());
    ArmSloTicks(period, until);  // no-op once now() >= until
  });
}

void Simulation::OnSloBreach(const SloVerdict& verdict) {
  flight_recorder_.RecordEvent(0, verdict.evaluated_at, "slo",
                               verdict.name + " BREACH");
  if (breach_dump_path_.empty()) {
    return;
  }
  const std::string reason = "slo breach: " + verdict.name;
  if (parallel_ != nullptr && parallel_->InWindow()) {
    // An SLO tick can fire while shard 0 executes its half of a window;
    // worker rings are being written concurrently, so reading them here
    // would race. Defer to the next window barrier (workers quiesced) via
    // the hook registered in the constructor.
    pending_breach_dump_reason_ = reason;
    return;
  }
  const Status status =
      flight_recorder_.Dump(breach_dump_path_, &metrics_, reason);
  if (!status.ok()) {
    UDC_LOG(Error) << "breach dump failed: " << status.ToString();
  }
}

void Simulation::MirrorSpans() const {
  const std::vector<uint64_t>& closed = spans_.closed_order();
  if (mirrored_closed_ > closed.size()) {
    mirrored_closed_ = closed.size();  // spans were cleared externally
  }
  for (; mirrored_closed_ < closed.size(); ++mirrored_closed_) {
    const Span* span = spans_.SpanById(closed[mirrored_closed_]);
    if (span != nullptr) {
      trace_.Record(span->start, span->category, span->Detail());
    }
  }
}

SimTime Simulation::RunToCompletion() {
  if (parallel_ != nullptr) {
    return parallel_->RunToCompletion();
  }
  if (legacy_queue_ != nullptr) {
    while (!legacy_queue_->empty()) {
      now_ = legacy_queue_->NextTime();
      legacy_queue_->PopAndRun();
      ++events_executed_;
    }
    return now_;
  }
  while (!queue_.empty()) {
    // Advance the clock before dispatch so callbacks observe their own time.
    now_ = queue_.NextTime();
    queue_.PopAndRun();
    ++events_executed_;
  }
  return now_;
}

SimTime Simulation::RunUntil(SimTime deadline) {
  if (parallel_ != nullptr) {
    return parallel_->RunUntil(deadline);
  }
  if (legacy_queue_ != nullptr) {
    while (!legacy_queue_->empty() && legacy_queue_->NextTime() <= deadline) {
      now_ = legacy_queue_->NextTime();
      legacy_queue_->PopAndRun();
      ++events_executed_;
    }
  } else {
    while (!queue_.empty() && queue_.NextTime() <= deadline) {
      now_ = queue_.NextTime();
      queue_.PopAndRun();
      ++events_executed_;
    }
  }
  if (now_ < deadline) {
    now_ = deadline;
  }
  return now_;
}

bool Simulation::Step() {
  if (parallel_ != nullptr) {
    return parallel_->Step();
  }
  if (legacy_queue_ != nullptr) {
    if (legacy_queue_->empty()) {
      return false;
    }
    now_ = legacy_queue_->NextTime();
    legacy_queue_->PopAndRun();
    ++events_executed_;
    return true;
  }
  if (queue_.empty()) {
    return false;
  }
  now_ = queue_.NextTime();
  queue_.PopAndRun();
  ++events_executed_;
  return true;
}

}  // namespace udc
