#include "src/sim/simulation.h"

#include <cassert>
#include <utility>

namespace udc {

Simulation::Simulation(uint64_t seed)
    : now_(SimTime(0)), rng_(seed), spans_([this] { return now_; }) {}

void Simulation::MirrorSpans() const {
  const std::vector<uint64_t>& closed = spans_.closed_order();
  if (mirrored_closed_ > closed.size()) {
    mirrored_closed_ = closed.size();  // spans were cleared externally
  }
  for (; mirrored_closed_ < closed.size(); ++mirrored_closed_) {
    const Span* span = spans_.SpanById(closed[mirrored_closed_]);
    if (span != nullptr) {
      trace_.Record(span->start, span->category, span->Detail());
    }
  }
}

EventHandle Simulation::At(SimTime when, EventQueue::Callback cb) {
  assert(when >= now_);
  return queue_.Schedule(when, std::move(cb));
}

EventHandle Simulation::After(SimTime delay, EventQueue::Callback cb) {
  assert(delay >= SimTime(0));
  return queue_.Schedule(now_ + delay, std::move(cb));
}

SimTime Simulation::RunToCompletion() {
  while (!queue_.empty()) {
    // Advance the clock before dispatch so callbacks observe their own time.
    now_ = queue_.NextTime();
    queue_.PopAndRun();
    ++events_executed_;
  }
  return now_;
}

SimTime Simulation::RunUntil(SimTime deadline) {
  while (!queue_.empty() && queue_.NextTime() <= deadline) {
    now_ = queue_.NextTime();
    queue_.PopAndRun();
    ++events_executed_;
  }
  if (now_ < deadline) {
    now_ = deadline;
  }
  return now_;
}

bool Simulation::Step() {
  if (queue_.empty()) {
    return false;
  }
  now_ = queue_.NextTime();
  queue_.PopAndRun();
  ++events_executed_;
  return true;
}

}  // namespace udc
