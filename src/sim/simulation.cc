#include "src/sim/simulation.h"

#include <utility>

namespace udc {

Simulation::Simulation(uint64_t seed, SimKernel kernel, ParallelConfig parallel)
    : kernel_(kernel),
      now_(SimTime(0)),
      legacy_queue_(kernel == SimKernel::kLegacy
                        ? std::make_unique<LegacyEventQueue>()
                        : nullptr),
      parallel_(kernel == SimKernel::kParallel
                    ? std::make_unique<ParallelKernel>(&queue_, &now_, parallel)
                    : nullptr),
      rng_(seed),
      spans_([this] { return now_; }) {
  if (parallel_ != nullptr) {
    // Buffered worker-shard observability lands in the shared sinks at every
    // window barrier. The trace target mirrors Trace(): render any spans
    // closed earlier in the flush first, so line order matches kFast.
    parallel_->SetObsTargets(ObsFlushTargets{
        &metrics_, &spans_,
        [this](SimTime t, std::string_view category, std::string_view detail) {
          MirrorSpans();
          trace_.Record(t, category, detail);
        }});
  }
}

void Simulation::MirrorSpans() const {
  const std::vector<uint64_t>& closed = spans_.closed_order();
  if (mirrored_closed_ > closed.size()) {
    mirrored_closed_ = closed.size();  // spans were cleared externally
  }
  for (; mirrored_closed_ < closed.size(); ++mirrored_closed_) {
    const Span* span = spans_.SpanById(closed[mirrored_closed_]);
    if (span != nullptr) {
      trace_.Record(span->start, span->category, span->Detail());
    }
  }
}

SimTime Simulation::RunToCompletion() {
  if (parallel_ != nullptr) {
    return parallel_->RunToCompletion();
  }
  if (legacy_queue_ != nullptr) {
    while (!legacy_queue_->empty()) {
      now_ = legacy_queue_->NextTime();
      legacy_queue_->PopAndRun();
      ++events_executed_;
    }
    return now_;
  }
  while (!queue_.empty()) {
    // Advance the clock before dispatch so callbacks observe their own time.
    now_ = queue_.NextTime();
    queue_.PopAndRun();
    ++events_executed_;
  }
  return now_;
}

SimTime Simulation::RunUntil(SimTime deadline) {
  if (parallel_ != nullptr) {
    return parallel_->RunUntil(deadline);
  }
  if (legacy_queue_ != nullptr) {
    while (!legacy_queue_->empty() && legacy_queue_->NextTime() <= deadline) {
      now_ = legacy_queue_->NextTime();
      legacy_queue_->PopAndRun();
      ++events_executed_;
    }
  } else {
    while (!queue_.empty() && queue_.NextTime() <= deadline) {
      now_ = queue_.NextTime();
      queue_.PopAndRun();
      ++events_executed_;
    }
  }
  if (now_ < deadline) {
    now_ = deadline;
  }
  return now_;
}

bool Simulation::Step() {
  if (parallel_ != nullptr) {
    return parallel_->Step();
  }
  if (legacy_queue_ != nullptr) {
    if (legacy_queue_->empty()) {
      return false;
    }
    now_ = legacy_queue_->NextTime();
    legacy_queue_->PopAndRun();
    ++events_executed_;
    return true;
  }
  if (queue_.empty()) {
    return false;
  }
  now_ = queue_.NextTime();
  queue_.PopAndRun();
  ++events_executed_;
  return true;
}

}  // namespace udc
