// Simulation engine: clock + event queue + RNG + telemetry.
//
// Everything in the UDC substrate (fabric, devices, control plane, baselines)
// runs on one Simulation instance, making an entire datacenter reproducible
// from a single seed.

#ifndef UDC_SRC_SIM_SIMULATION_H_
#define UDC_SRC_SIM_SIMULATION_H_

#include <cassert>
#include <cstdint>
#include <functional>
#include <memory>
#include <utility>

#include <string>
#include <string_view>

#include "src/common/rng.h"
#include "src/common/units.h"
#include "src/obs/flight_recorder.h"
#include "src/obs/metrics.h"
#include "src/obs/slo.h"
#include "src/obs/span.h"
#include "src/sim/event_queue.h"
#include "src/sim/legacy_event_queue.h"
#include "src/sim/parallel_kernel.h"
#include "src/sim/trace.h"

namespace udc {

// Which event-queue implementation drives the run. kFast is the slot-slab
// zero-allocation kernel and the default everywhere; kLegacy is the
// pre-fast-path queue (std::function + hash-set cancellation) kept as a
// differential-test oracle — semantics are identical, so a run's trace must
// match byte for byte across kernels for the same seed. kParallel partitions
// the topology into shard domains executed by worker threads in conservative
// lookahead windows (src/sim/parallel_kernel.h); kFast doubles as its
// differential oracle.
enum class SimKernel {
  kFast,
  kLegacy,
  kParallel,
};

class Simulation {
 public:
  // `parallel` only applies under SimKernel::kParallel.
  explicit Simulation(uint64_t seed = 42, SimKernel kernel = SimKernel::kFast,
                      ParallelConfig parallel = {});
  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;
  ~Simulation();

  // Under kParallel, the executing worker shard's local clock when called
  // from one, else the shard-0 (coordinator) clock.
  SimTime now() const {
    // &now_ (not now_): on a worker shard CurrentNow returns the shard
    // clock without touching the shard-0 clock, which the coordinator may
    // be writing concurrently.
    return parallel_ != nullptr ? parallel_->CurrentNow(&now_) : now_;
  }
  SimKernel kernel() const { return kernel_; }
  // The parallel kernel, or nullptr unless kernel() == kParallel. Shard
  // setup (AssignRack, lookahead) and shard-aware layers go through this.
  ParallelKernel* parallel() { return parallel_.get(); }
  const ParallelKernel* parallel() const { return parallel_.get(); }
  Rng& rng() { return rng_; }
  MetricsRegistry& metrics() { return metrics_; }
  const MetricsRegistry& metrics() const { return metrics_; }
  // Closed spans are mirrored into the legacy trace lazily, on access, so
  // the span hot path never pays for string rendering (see MirrorSpans).
  TraceRecorder& trace() {
    MirrorSpans();
    return trace_;
  }
  const TraceRecorder& trace() const {
    MirrorSpans();
    return trace_;
  }
  SpanTracer& spans() { return spans_; }
  const SpanTracer& spans() const { return spans_; }
  // Always-on black box: every closed span and trace line also lands in a
  // per-shard ring (see src/obs/flight_recorder.h). Dumped on SLO breach
  // (set_breach_dump_path), UDC_CHECK failure (set_crash_dump_path), or
  // explicitly via flight_recorder().Dump(...).
  FlightRecorder& flight_recorder() { return flight_recorder_; }
  const FlightRecorder& flight_recorder() const { return flight_recorder_; }
  // Declarative objectives over this simulation's registry. Drive with
  // ArmSloTicks (kernel timers) or slos().EvaluateNow(now()).
  SloEngine& slos() { return slos_; }
  const SloEngine& slos() const { return slos_; }

  // Evaluates the SLO engine every `period` of simulated time until `until`
  // (the last tick lands exactly at `until`). Bounded on purpose: an
  // unconditional recurring timer would keep RunToCompletion alive forever.
  void ArmSloTicks(SimTime period, SimTime until);

  // When set, the first transition of any objective into BREACH dumps the
  // flight recorder (Chrome trace + metrics snapshot) to this path.
  void set_breach_dump_path(std::string path) {
    breach_dump_path_ = std::move(path);
  }
  // When set, a UDC_CHECK failure anywhere in the process dumps this
  // simulation's flight recorder to the path before aborting.
  void set_crash_dump_path(std::string path);

  // Convenience: record a trace event at the current simulated time. On a
  // parallel worker shard the line is buffered and merged into the shared
  // recorder at the window barrier, in canonical order.
  void Trace(std::string_view category, std::string_view detail) {
    if (parallel_ != nullptr) {
      ShardObsBuffer* buffer = ParallelKernel::CurrentObsBuffer();
      if (buffer != nullptr) {
        // The buffer tees into the flight ring for its own shard.
        buffer->TraceLine(parallel_->CurrentNow(&now_), std::string(category),
                          std::string(detail));
        return;
      }
    }
    flight_recorder_.RecordTrace(0, now_, category, detail);
    MirrorSpans();
    trace_.Record(now_, category, detail);
  }

  // Opens an RAII span at the current simulated time; nested scopes parent
  // automatically. When the span closes it is mirrored into the legacy
  // TraceRecorder as "category: name k=v ... dur=..".
  ScopedSpan Scope(std::string category, std::string name,
                   SpanLabels labels = {}) {
    return ScopedSpan(&spans_, std::move(category), std::move(name),
                      std::move(labels));
  }

  // Schedules `cb` at absolute simulated time `when` (>= now). Templated so
  // the caller's closure is constructed directly into the active kernel's
  // callback type — InlineCallback on the fast path (zero heap allocation
  // for captures up to 64 bytes, pooled slab beyond), std::function on the
  // legacy oracle.
  template <typename F>
  EventHandle At(SimTime when, F&& cb) {
    if (legacy_queue_ != nullptr) {
      assert(when >= now_);
      return legacy_queue_->Schedule(
          when, LegacyEventQueue::Callback(std::forward<F>(cb)));
    }
    if (parallel_ != nullptr) {
      // Routes to the shard executing on this thread; the shard queue's own
      // monotonicity assert covers the when >= now check.
      return parallel_->ScheduleCurrent(when,
                                        InlineCallback(std::forward<F>(cb)));
    }
    assert(when >= now_);
    return queue_.Schedule(when, InlineCallback(std::forward<F>(cb)));
  }

  // Schedules `cb` after `delay` from now.
  template <typename F>
  EventHandle After(SimTime delay, F&& cb) {
    assert(delay >= SimTime(0));
    return At(now() + delay, std::forward<F>(cb));
  }

  bool Cancel(EventHandle handle) {
    if (legacy_queue_ != nullptr) {
      return legacy_queue_->Cancel(handle);
    }
    if (parallel_ != nullptr) {
      return parallel_->Cancel(handle);
    }
    return queue_.Cancel(handle);
  }

  // Runs events until the queue is empty. Returns the final time.
  SimTime RunToCompletion();

  // Runs events with time <= deadline; leaves later events pending. The clock
  // advances to min(deadline, last event time).
  SimTime RunUntil(SimTime deadline);

  // Runs a single event if one is pending. Returns false when idle.
  bool Step();

  uint64_t events_executed() const {
    return parallel_ != nullptr ? parallel_->events_executed()
                                : events_executed_;
  }

 private:
  // Renders every span closed since the last mirror into the legacy trace
  // (as "category: name k=v ... dur=..." at the span's start time). Closed
  // spans double as legacy trace events so string-based assertions and
  // timeline dumps keep working on top of the structured layer, but the
  // rendering cost is paid here — at read time — not per event.
  void MirrorSpans() const;

  // Fired on an objective's OK/WARN -> BREACH transition (SloEngine wiring
  // set up in the constructor): annotates the flight ring and, when a dump
  // path is set, writes the black box out.
  void OnSloBreach(const SloVerdict& verdict);

  SimKernel kernel_;
  SimTime now_;
  EventQueue queue_;
  // Non-null only under SimKernel::kLegacy (differential tests/benches);
  // the fast queue above then stays empty and unused.
  std::unique_ptr<LegacyEventQueue> legacy_queue_;
  // Non-null only under SimKernel::kParallel. Shard 0 runs on `queue_`
  // above, so unsharded execution matches kFast exactly.
  std::unique_ptr<ParallelKernel> parallel_;
  Rng rng_;
  MetricsRegistry metrics_;
  mutable TraceRecorder trace_;
  mutable size_t mirrored_closed_ = 0;
  SpanTracer spans_;
  FlightRecorder flight_recorder_;
  SloEngine slos_{&metrics_};
  std::string breach_dump_path_;
  std::string crash_dump_path_;
  // A breach noticed mid-window defers its dump to the next barrier (the
  // hook below), when every worker ring is quiescent.
  std::string pending_breach_dump_reason_;
  BarrierHookRegistration breach_barrier_hook_;
  uint64_t crash_hook_id_ = 0;
  uint64_t events_executed_ = 0;
};

}  // namespace udc

#endif  // UDC_SRC_SIM_SIMULATION_H_
