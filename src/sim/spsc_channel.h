// Single-producer / single-consumer channel for cross-shard event traffic.
//
// The parallel kernel gives every (source shard, destination shard) pair its
// own channel, so during a lookahead window each worker pushes cross-shard
// events without taking a lock and without contending with any other
// producer. The hot path is a classic Lamport ring: one atomic load + one
// atomic store per push/pop, cache-line-separated head and tail so the two
// sides never false-share.
//
// Two usage modes:
//   * TryPush/TryPop — the strict lock-free SPSC protocol. Safe with one
//     producer thread and one consumer thread running concurrently
//     (BM_SpscChannelPingPong measures this path).
//   * Push/DrainAll — the kernel's window protocol. Push falls back to a
//     producer-private spill vector when the ring is full (a burst larger
//     than the ring inside one window); DrainAll empties ring + spill but is
//     only legal once the producer has quiesced (the kernel's window barrier
//     provides that happens-before edge).

#ifndef UDC_SRC_SIM_SPSC_CHANNEL_H_
#define UDC_SRC_SIM_SPSC_CHANNEL_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace udc {

template <typename T>
class SpscChannel {
 public:
  // `capacity` is rounded up to a power of two (minimum 2).
  explicit SpscChannel(size_t capacity = 512) {
    size_t cap = 2;
    while (cap < capacity) {
      cap <<= 1;
    }
    ring_.resize(cap);
    mask_ = cap - 1;
  }

  SpscChannel(const SpscChannel&) = delete;
  SpscChannel& operator=(const SpscChannel&) = delete;

  size_t capacity() const { return ring_.size(); }

  // Producer side. Returns false when the ring is full.
  bool TryPush(T&& value) {
    const size_t tail = tail_.load(std::memory_order_relaxed);
    const size_t head = head_.load(std::memory_order_acquire);
    if (tail - head >= ring_.size()) {
      return false;
    }
    ring_[tail & mask_] = std::move(value);
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  // Producer side, never fails: spills to the producer-private overflow
  // vector when the ring is full. The spill is only read by DrainAll under
  // external synchronization, so this stays single-writer.
  void Push(T&& value) {
    if (!TryPush(std::move(value))) {
      spill_.push_back(std::move(value));
      ++spill_total_;
    }
  }

  // Consumer side. Returns false when the ring is empty. Does not see the
  // spill — concurrent consumers use the strict ring protocol only.
  bool TryPop(T* out) {
    const size_t head = head_.load(std::memory_order_relaxed);
    const size_t tail = tail_.load(std::memory_order_acquire);
    if (head == tail) {
      return false;
    }
    *out = std::move(ring_[head & mask_]);
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  // Barrier-phase drain: appends everything (ring order first, then spill
  // order — which is push order, since the spill only fills after the ring)
  // to `out`. Caller must guarantee the producer has quiesced. Returns the
  // number of items drained, so the merge loop can account traffic without
  // re-measuring the output vector.
  size_t DrainAll(std::vector<T>* out) {
    size_t drained = 0;
    T item;
    while (TryPop(&item)) {
      out->push_back(std::move(item));
      ++drained;
    }
    for (T& spilled : spill_) {
      out->push_back(std::move(spilled));
      ++drained;
    }
    spill_.clear();
    return drained;
  }

  bool empty() const {
    return head_.load(std::memory_order_acquire) ==
               tail_.load(std::memory_order_acquire) &&
           spill_.empty();
  }

  uint64_t spill_count() const { return spill_total_; }

 private:
  std::vector<T> ring_;
  size_t mask_ = 0;
  std::vector<T> spill_;
  uint64_t spill_total_ = 0;
  alignas(64) std::atomic<size_t> head_{0};
  alignas(64) std::atomic<size_t> tail_{0};
};

}  // namespace udc

#endif  // UDC_SRC_SIM_SPSC_CHANNEL_H_
