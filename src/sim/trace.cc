#include "src/sim/trace.h"

#include "src/common/strings.h"

namespace udc {

void TraceRecorder::Record(SimTime time, std::string_view category,
                           std::string_view detail) {
  events_.push_back(TraceEvent{time, std::string(category), std::string(detail)});
}

std::vector<TraceEvent> TraceRecorder::EventsInCategory(
    std::string_view category) const {
  std::vector<TraceEvent> out;
  for (const auto& e : events_) {
    if (e.category == category) {
      out.push_back(e);
    }
  }
  return out;
}

bool TraceRecorder::Contains(std::string_view category,
                             std::string_view needle) const {
  for (const auto& e : events_) {
    if (e.category == category && e.detail.find(needle) != std::string::npos) {
      return true;
    }
  }
  return false;
}

std::string TraceRecorder::Dump() const {
  std::string out;
  for (const auto& e : events_) {
    out += StrFormat("%-12s [%-8s] %s\n", e.time.ToString().c_str(),
                     e.category.c_str(), e.detail.c_str());
  }
  return out;
}

}  // namespace udc
