// Trace recorder: an append-only log of typed simulation events.
//
// Used by tests to assert on causality (e.g. "checkpoint restored before
// re-execution") and by tools to dump timelines.

#ifndef UDC_SRC_SIM_TRACE_H_
#define UDC_SRC_SIM_TRACE_H_

#include <string>
#include <string_view>
#include <vector>

#include "src/common/units.h"

namespace udc {

struct TraceEvent {
  SimTime time;
  std::string category;  // e.g. "sched", "net", "exec"
  std::string detail;
};

class TraceRecorder {
 public:
  TraceRecorder() = default;

  void Record(SimTime time, std::string_view category, std::string_view detail);

  const std::vector<TraceEvent>& events() const { return events_; }
  size_t size() const { return events_.size(); }
  void Clear() { events_.clear(); }

  // All events in a category, in time order.
  std::vector<TraceEvent> EventsInCategory(std::string_view category) const;

  // True when some event in `category` has detail containing `needle`.
  bool Contains(std::string_view category, std::string_view needle) const;

  // Multi-line "time [category] detail" dump.
  std::string Dump() const;

 private:
  std::vector<TraceEvent> events_;
};

}  // namespace udc

#endif  // UDC_SRC_SIM_TRACE_H_
