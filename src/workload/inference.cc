#include "src/workload/inference.h"

#include <algorithm>
#include <cmath>

namespace udc {

std::vector<InferenceRequest> GenerateInferenceTrace(
    Rng& rng, const InferenceTraceConfig& config) {
  std::vector<InferenceRequest> out;
  const double horizon_h = config.horizon.hours();
  double t_h = 0.0;
  // Alternate quiet and burst windows; window lengths ~30 min.
  bool bursting = false;
  double window_end_h = 0.0;
  while (t_h < horizon_h) {
    if (t_h >= window_end_h) {
      bursting = rng.NextBool(config.burst_fraction);
      window_end_h = t_h + 0.5;
    }
    const double rate =
        config.mean_rate_per_hour * (bursting ? config.burst_multiplier : 1.0);
    t_h += rng.NextExponential(rate);
    if (t_h >= horizon_h) {
      break;
    }
    InferenceRequest req;
    req.arrival = SimTime::Micros(static_cast<int64_t>(t_h * 3600e6));
    req.work_units = config.work_units * rng.NextDoubleInRange(0.8, 1.25);
    out.push_back(req);
  }
  std::sort(out.begin(), out.end(),
            [](const InferenceRequest& a, const InferenceRequest& b) {
              return a.arrival < b.arrival;
            });
  return out;
}

}  // namespace udc
