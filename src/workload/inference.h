// Event-triggered ML inference workload (claim C4: GPU + serverless).
//
// "Many ML inference tasks are event-triggered and could benefit from
// serverless computing and GPU acceleration. Despite the high demand ...
// no cloud provider has yet supported GPU in their serverless offerings."
// The generator produces a bursty Poisson arrival stream of CNN inference
// requests; bench E7 runs it on FaaS (CPU), IaaS (dedicated GPU box) and
// UDC (fine-grained GPU slice, pay-per-use).

#ifndef UDC_SRC_WORKLOAD_INFERENCE_H_
#define UDC_SRC_WORKLOAD_INFERENCE_H_

#include <vector>

#include "src/common/rng.h"
#include "src/common/units.h"

namespace udc {

struct InferenceRequest {
  SimTime arrival;
  double work_units = 30000;  // CNN forward pass, reference-core units
  Bytes input = Bytes::MiB(2);
};

struct InferenceTraceConfig {
  double mean_rate_per_hour = 120.0;
  double burst_multiplier = 6.0;   // rate during bursts
  double burst_fraction = 0.15;    // fraction of the horizon bursting
  SimTime horizon = SimTime::Hours(24);
  double work_units = 30000;
};

// Piecewise-Poisson arrivals with bursts.
std::vector<InferenceRequest> GenerateInferenceTrace(
    Rng& rng, const InferenceTraceConfig& config = {});

}  // namespace udc

#endif  // UDC_SRC_WORKLOAD_INFERENCE_H_
