#include "src/workload/medical.h"

namespace udc {

std::string MedicalAppUdcl() {
  return R"(# Medical information processing — paper Figure 2 / Table 1.
app medical

# --- data modules -----------------------------------------------------
data S1 size=64GiB    # patient medical records
data S2 size=8GiB     # patient consent forms
data S3 size=512MiB   # medical images, generated at real time
data S4 size=32GiB    # anonymized records/images

# --- diagnosis pipeline ------------------------------------------------
task A1 work=2000 out=8MiB      # preprocessing: resize + greyscale
task A2 work=30000 out=1MiB     # object detection: CNN inference
task A3 work=60000 out=1MiB     # record NLP: BERT inference
task A4 work=5000 out=256KiB    # automated diagnosis

# --- analytics pipeline ------------------------------------------------
task B1 work=20000 out=16MiB    # consent filter + anonymize
task B2 work=80000 out=64MiB    # third-party analytics

edge S3 -> A1
edge A1 -> A2
edge A2 -> A4
edge S1 -> A3
edge A3 -> A4
edge S1 -> B1
edge S2 -> B1
edge B1 -> S4
edge S4 -> B2

colocate A1 A2    # sec 3.1: "executed together on the same hardware unit"
affinity A3 S1    # sec 3.1: "S1 is frequently used by A3"

# --- Table 1: per-module UDC aspect specification ----------------------
aspect A1 resource objective=fastest
aspect A1 exec isolation=strong tenancy=single tee_if_cpu
aspect A1 dist replication=1

aspect A2 resource gpu=1000m dram=4GiB
aspect A2 exec isolation=strong tenancy=single
aspect A2 dist replication=1 checkpoint

aspect A3 resource gpu=1000m dram=8GiB
aspect A3 exec isolation=strong tenancy=single
aspect A3 dist replication=1 checkpoint

aspect A4 resource cpu=2000m dram=2GiB
aspect A4 exec isolation=strongest tenancy=single tee_if_cpu
aspect A4 dist replication=2 checkpoint

aspect B1 resource objective=cheapest
aspect B1 exec isolation=strong tenancy=single tee_if_cpu
aspect B1 dist replication=1

aspect B2 resource objective=cheapest
aspect B2 exec isolation=weak
aspect B2 dist replication=1 checkpoint

aspect S1 resource ssd=64GiB
aspect S1 exec encrypt integrity
aspect S1 dist replication=3 consistency=sequential

aspect S2 resource objective=cheapest
aspect S2 exec encrypt integrity
aspect S2 dist replication=2 prefer=reader

aspect S3 resource dram=512MiB
aspect S3 exec encrypt integrity
aspect S3 dist replication=2

aspect S4 resource objective=cheapest
aspect S4 exec integrity
aspect S4 dist replication=1 consistency=release
)";
}

Result<AppSpec> MedicalAppSpec() { return ParseAppSpec(MedicalAppUdcl()); }

}  // namespace udc
