// The paper's motivating workload: medical information processing
// (Figure 2) with the user definitions of Table 1.
//
// Three hospital pipelines share ten modules:
//   storage:   S1 medical records, S2 consent forms, S3 live images,
//              S4 anonymized records
//   diagnosis: A1 preprocess -> A2 CNN inference -> A4 diagnose,
//              S1 -> A3 BERT inference -> A4, A4 appends to S1
//   analytics: S1,S2 -> B1 anonymize -> S4 -> B2 analytics

#ifndef UDC_SRC_WORKLOAD_MEDICAL_H_
#define UDC_SRC_WORKLOAD_MEDICAL_H_

#include <string>

#include "src/aspects/spec_parser.h"

namespace udc {

// The Figure 2 + Table 1 application in udcl text form.
std::string MedicalAppUdcl();

// Parsed and validated; crashes only if the embedded text is broken (a
// build-time bug caught by tests).
Result<AppSpec> MedicalAppSpec();

}  // namespace udc

#endif  // UDC_SRC_WORKLOAD_MEDICAL_H_
