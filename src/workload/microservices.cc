#include "src/workload/microservices.h"

#include "src/common/strings.h"

namespace udc {

Result<AppSpec> GenerateMicroserviceApp(Rng& rng,
                                        const MicroserviceConfig& config) {
  if (config.chain_length < 1) {
    return Status(InvalidArgumentError("chain_length must be >= 1"));
  }
  AppSpec spec;
  spec.graph.set_app_name("microservices");

  auto service_aspects = [&](bool latency_critical) {
    AspectSet aspects = ProviderDefaults();
    aspects.resource.defined = true;
    aspects.resource.objective = ResourceObjective::kExplicit;
    const int64_t milli = 250 + static_cast<int64_t>(rng.NextUint64(1750));
    aspects.resource.demand =
        ResourceVector::MilliCpu(milli) +
        ResourceVector::Dram(
            Bytes::MiB(256 + static_cast<int64_t>(rng.NextUint64(1792))));
    aspects.exec.defined = true;
    aspects.exec.isolation =
        latency_critical ? IsolationLevel::kWeak : IsolationLevel::kMedium;
    return aspects;
  };

  // Request-path chain.
  std::vector<ModuleId> chain;
  for (int i = 0; i < config.chain_length; ++i) {
    const double work =
        config.work_scale * (200.0 + static_cast<double>(rng.NextUint64(1800)));
    UDC_ASSIGN_OR_RETURN(
        const ModuleId id,
        spec.graph.AddTask(StrFormat("svc%d", i), work,
                           Bytes::KiB(4 + static_cast<int64_t>(
                                              rng.NextUint64(60)))));
    spec.aspects[id] = service_aspects(/*latency_critical=*/i < 2);
    if (!chain.empty()) {
      UDC_RETURN_IF_ERROR(spec.graph.AddEdge(chain.back(), id));
    }
    chain.push_back(id);
  }

  // Fan-out after the chain head (e.g. recommendations + ads in parallel).
  std::vector<ModuleId> fanout;
  for (int i = 0; i < config.fanout_services; ++i) {
    const double work =
        config.work_scale * (400.0 + static_cast<double>(rng.NextUint64(2600)));
    UDC_ASSIGN_OR_RETURN(
        const ModuleId id,
        spec.graph.AddTask(StrFormat("fan%d", i), work, Bytes::KiB(32)));
    spec.aspects[id] = service_aspects(false);
    UDC_RETURN_IF_ERROR(spec.graph.AddEdge(chain.front(), id));
    if (chain.size() > 1) {
      UDC_RETURN_IF_ERROR(spec.graph.AddEdge(id, chain.back()));
    }
    fanout.push_back(id);
  }

  // Stateful backend: a replicated, integrity-protected data module the
  // chain tail reads and writes.
  if (config.stateful_backend) {
    UDC_ASSIGN_OR_RETURN(
        const ModuleId db,
        spec.graph.AddData("db", Bytes::GiB(2 + static_cast<int64_t>(
                                                rng.NextUint64(30)))));
    AspectSet aspects = ProviderDefaults();
    aspects.resource.defined = true;
    aspects.resource.objective = ResourceObjective::kExplicit;
    aspects.resource.demand = ResourceVector::Ssd(Bytes::GiB(32));
    aspects.exec.defined = true;
    aspects.exec.protection.integrity = true;
    aspects.dist.defined = true;
    aspects.dist.replication_factor = 2 + static_cast<int>(rng.NextUint64(2));
    aspects.dist.consistency_specified = true;
    aspects.dist.consistency = ConsistencyLevel::kSequential;
    spec.aspects[db] = aspects;
    UDC_RETURN_IF_ERROR(spec.graph.AddEdge(db, chain.back()));
    // Locality: the chain tail reads the db on every request.
    UDC_RETURN_IF_ERROR(spec.graph.AddAffinity(chain.back(), db));
  }

  UDC_RETURN_IF_ERROR(spec.graph.Validate());
  return spec;
}

}  // namespace udc
