// Microservice-chain workload generator.
//
// The paper's deployment story (sec. 4) leans on the observation that
// "serverless computing and microservices are already making cloud users
// write modularized code" — i.e. real applications already look like module
// DAGs. This generator emits such applications: request-path chains with
// fan-outs (auth -> api -> {svc_a, svc_b} -> db), sized from a seeded RNG,
// with aspects assigned per role (stateless services cheap+weak, stateful
// stores replicated+protected).

#ifndef UDC_SRC_WORKLOAD_MICROSERVICES_H_
#define UDC_SRC_WORKLOAD_MICROSERVICES_H_

#include "src/aspects/spec_parser.h"
#include "src/common/rng.h"

namespace udc {

struct MicroserviceConfig {
  int chain_length = 4;        // services on the request path
  int fanout_services = 2;     // parallel services after the chain head
  bool stateful_backend = true;  // add a replicated data module
  double work_scale = 1.0;     // multiplies per-service work
};

// Builds a validated AppSpec. Names are deterministic per (rng, config).
Result<AppSpec> GenerateMicroserviceApp(Rng& rng,
                                        const MicroserviceConfig& config = {});

}  // namespace udc

#endif  // UDC_SRC_WORKLOAD_MICROSERVICES_H_
