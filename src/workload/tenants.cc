#include "src/workload/tenants.h"

#include <algorithm>
#include <cmath>

namespace udc {

std::vector<TenantDemand> SampleTenantMix(Rng& rng, int count,
                                          const TenantMixConfig& config) {
  std::vector<TenantDemand> out;
  out.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    TenantDemand d;
    const double roll = rng.NextDouble();
    if (roll < config.gpu_fraction) {
      // GPU-heavy: 1..max_gpus GPUs, deliberately few cores (the paper's
      // GPU-orchestration example).
      d.gpu_heavy = true;
      const int gpus = 1 << rng.NextUint64(4);  // 1,2,4,8
      const int capped = std::min(gpus, config.max_gpus);
      d.demand += ResourceVector::MilliGpu(capped * 1000);
      const int cores = 1 + static_cast<int>(rng.NextUint64(4));  // 1..4
      d.demand += ResourceVector::MilliCpu(cores * 1000);
      d.demand += ResourceVector::Dram(
          Bytes::GiB(8 * capped + static_cast<int64_t>(rng.NextUint64(16))));
    } else if (roll < config.gpu_fraction + config.storage_fraction) {
      // Storage-dominated: little compute, lots of bytes.
      const int cores = 1 + static_cast<int>(rng.NextUint64(2));
      d.demand += ResourceVector::MilliCpu(cores * 1000);
      d.demand += ResourceVector::Dram(
          Bytes::GiB(4 + static_cast<int64_t>(rng.NextUint64(28))));
      d.demand += ResourceVector::Ssd(Bytes::GiB(
          static_cast<int64_t>(rng.NextLognormal(6.0, 1.0))));  // ~400 GiB
    } else {
      // General CPU workload: lognormal cores, correlated memory.
      double cores_f =
          rng.NextLognormal(config.cpu_lognormal_mu, config.cpu_lognormal_sigma);
      cores_f = std::clamp(cores_f, 0.25, static_cast<double>(config.max_cpu_cores));
      const auto milli = static_cast<int64_t>(std::llround(cores_f * 1000.0));
      d.demand += ResourceVector::MilliCpu(milli);
      const double gib_per_core = rng.NextDoubleInRange(1.0, 8.0);
      d.demand += ResourceVector::Dram(Bytes(static_cast<int64_t>(
          cores_f * gib_per_core * 1024.0 * 1024.0 * 1024.0)));
      if (rng.NextBool(0.5)) {
        d.demand += ResourceVector::Ssd(
            Bytes::GiB(8 + static_cast<int64_t>(rng.NextUint64(120))));
      }
    }
    // Lifetimes: exponential around 6 hours, floored at 10 minutes.
    const double hours = std::max(1.0 / 6.0, rng.NextExponential(1.0 / 6.0));
    d.lifetime = SimTime::Micros(static_cast<int64_t>(hours * 3600e6));
    out.push_back(std::move(d));
  }
  return out;
}

}  // namespace udc
