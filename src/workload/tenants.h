// Synthetic tenant population for the waste / utilization / economics
// experiments (claims C1, C2, C7).
//
// Demands are drawn from a heavy-tailed mix resembling public cluster
// traces: most workloads are small (1-4 cores, few GiB), a long tail wants
// dozens of cores, and a minority needs GPUs with only a little CPU — the
// paper's "8 GPUs but few vCPUs" shape.

#ifndef UDC_SRC_WORKLOAD_TENANTS_H_
#define UDC_SRC_WORKLOAD_TENANTS_H_

#include <vector>

#include "src/common/rng.h"
#include "src/common/units.h"
#include "src/hw/resource.h"

namespace udc {

struct TenantDemand {
  ResourceVector demand;
  SimTime lifetime;     // how long the workload holds its resources
  bool gpu_heavy = false;
};

struct TenantMixConfig {
  double gpu_fraction = 0.12;      // workloads that need >= 1 GPU
  double storage_fraction = 0.10;  // workloads dominated by storage
  double cpu_lognormal_mu = 0.9;   // exp(mu) ~ 2.5 cores typical
  double cpu_lognormal_sigma = 0.9;
  int max_cpu_cores = 64;
  int max_gpus = 8;
};

// Draws `count` independent tenant demands.
std::vector<TenantDemand> SampleTenantMix(Rng& rng, int count,
                                          const TenantMixConfig& config = {});

}  // namespace udc

#endif  // UDC_SRC_WORKLOAD_TENANTS_H_
