#include <gtest/gtest.h>

#include "src/actor/actor_system.h"

namespace udc {
namespace {

class ActorTest : public ::testing::Test {
 protected:
  ActorTest() : sim_(1) {
    const int r0 = topo_.AddRack();
    const int r1 = topo_.AddRack();
    n0_ = topo_.AddNode(r0, NodeRole::kDevice);
    n1_ = topo_.AddNode(r1, NodeRole::kDevice);
    system_ = std::make_unique<ActorSystem>(&sim_, &topo_);
  }
  Simulation sim_;
  Topology topo_;
  NodeId n0_, n1_;
  std::unique_ptr<ActorSystem> system_;
};

TEST_F(ActorTest, DeliversInjectedMessage) {
  std::vector<std::string> seen;
  const ActorId a = system_->Spawn(n0_, [&](ActorContext&, const ActorMessage& m) {
    seen.push_back(m.name + ":" + m.payload);
  });
  system_->Inject(a, "input", "hello", Bytes::B(10));
  sim_.RunToCompletion();
  EXPECT_EQ(seen, (std::vector<std::string>{"input:hello"}));
}

TEST_F(ActorTest, ActorToActorChargesFabricLatency) {
  SimTime received_at;
  const ActorId sink = system_->Spawn(n1_, [&](ActorContext& ctx,
                                               const ActorMessage&) {
    received_at = ctx.now();
  });
  const ActorId source =
      system_->Spawn(n0_, [&](ActorContext& ctx, const ActorMessage&) {
        ctx.Send(sink, "data", "", Bytes::MiB(8));
      });
  system_->Inject(source, "go", "", Bytes::B(1));
  sim_.RunToCompletion();
  EXPECT_GE(received_at, topo_.TransferTime(n0_, n1_, Bytes::MiB(8)));
}

TEST_F(ActorTest, WorkSerializesMessageProcessing) {
  std::vector<SimTime> starts;
  const ActorId a = system_->Spawn(n0_, [&](ActorContext& ctx,
                                            const ActorMessage&) {
    starts.push_back(ctx.now());
    ctx.Work(SimTime::Millis(10));
  });
  system_->Inject(a, "m1", "", Bytes::B(1));
  system_->Inject(a, "m2", "", Bytes::B(1));
  sim_.RunToCompletion();
  ASSERT_EQ(starts.size(), 2u);
  EXPECT_GE(starts[1] - starts[0], SimTime::Millis(10));
  EXPECT_EQ(system_->messages_processed(), 2u);
}

TEST_F(ActorTest, KilledActorDropsMessages) {
  int processed = 0;
  const ActorId a = system_->Spawn(
      n0_, [&](ActorContext&, const ActorMessage&) { ++processed; });
  ASSERT_TRUE(system_->Kill(a).ok());
  system_->Inject(a, "m", "", Bytes::B(1));
  sim_.RunToCompletion();
  EXPECT_EQ(processed, 0);
  EXPECT_EQ(system_->StateOf(a), ActorState::kDead);
}

TEST_F(ActorTest, RecoverReplaysLoggedMessages) {
  std::vector<std::string> seen;
  const ActorId a = system_->Spawn(n0_, [&](ActorContext&, const ActorMessage& m) {
    seen.push_back(m.payload);
  });
  system_->Inject(a, "m", "1", Bytes::B(1));
  system_->Inject(a, "m", "2", Bytes::B(1));
  sim_.RunToCompletion();
  ASSERT_EQ(seen.size(), 2u);

  ASSERT_TRUE(system_->Kill(a).ok());
  seen.clear();
  const auto replayed = system_->Recover(a, n1_);  // re-homed on another node
  ASSERT_TRUE(replayed.ok());
  EXPECT_EQ(*replayed, 2u);
  sim_.RunToCompletion();
  EXPECT_EQ(seen, (std::vector<std::string>{"1", "2"}));
  EXPECT_EQ(system_->NodeOf(a), n1_);
  EXPECT_EQ(sim_.metrics().counter("actor.recoveries"), 1);
}

TEST_F(ActorTest, RecoverRequiresDeadActor) {
  const ActorId a = system_->Spawn(n0_, [](ActorContext&, const ActorMessage&) {});
  EXPECT_FALSE(system_->Recover(a, n0_).ok());
}

TEST_F(ActorTest, RecoverWithoutLoggingFails) {
  const ActorId a = system_->Spawn(
      n0_, [](ActorContext&, const ActorMessage&) {}, /*log_messages=*/false);
  ASSERT_TRUE(system_->Kill(a).ok());
  EXPECT_FALSE(system_->Recover(a, n0_).ok());
}

TEST_F(ActorTest, PipelineAcrossThreeActors) {
  std::string result;
  const ActorId third = system_->Spawn(n0_, [&](ActorContext&,
                                                const ActorMessage& m) {
    result = m.payload + "!";
  });
  const ActorId second =
      system_->Spawn(n1_, [&, third](ActorContext& ctx, const ActorMessage& m) {
        ctx.Work(SimTime::Millis(1));
        ctx.Send(third, "stage2", m.payload + "-processed", Bytes::KiB(1));
      });
  const ActorId first =
      system_->Spawn(n0_, [&, second](ActorContext& ctx, const ActorMessage& m) {
        ctx.Send(second, "stage1", m.payload, Bytes::KiB(1));
      });
  system_->Inject(first, "input", "data", Bytes::KiB(1));
  sim_.RunToCompletion();
  EXPECT_EQ(result, "data-processed!");
}

TEST_F(ActorTest, QueueDepthReflectsBacklog) {
  const ActorId a = system_->Spawn(n0_, [](ActorContext& ctx,
                                           const ActorMessage&) {
    ctx.Work(SimTime::Seconds(1));
  });
  system_->Inject(a, "m1", "", Bytes::B(1));
  system_->Inject(a, "m2", "", Bytes::B(1));
  system_->Inject(a, "m3", "", Bytes::B(1));
  // First message is picked up immediately; two wait.
  EXPECT_EQ(system_->QueueDepth(a), 2u);
  sim_.RunToCompletion();
  EXPECT_EQ(system_->QueueDepth(a), 0u);
}

}  // namespace
}  // namespace udc
