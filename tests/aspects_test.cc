#include <gtest/gtest.h>

#include "src/aspects/aspects.h"
#include "src/aspects/spec_parser.h"
#include "src/workload/medical.h"

namespace udc {
namespace {

TEST(ParseSizeTest, Suffixes) {
  EXPECT_EQ(ParseSize("512")->bytes(), 512);
  EXPECT_EQ(ParseSize("3B")->bytes(), 3);
  EXPECT_EQ(ParseSize("2KiB")->bytes(), 2048);
  EXPECT_EQ(ParseSize("4MiB")->bytes(), 4 * 1024 * 1024);
  EXPECT_EQ(ParseSize("1GiB")->bytes(), 1024LL * 1024 * 1024);
  EXPECT_EQ(ParseSize("2TiB")->bytes(), 2048LL * 1024 * 1024 * 1024);
  EXPECT_FALSE(ParseSize("abc").ok());
  EXPECT_FALSE(ParseSize("1.5GiB").ok());  // integral only
}

TEST(ParseMilliTest, WholeAndMilli) {
  EXPECT_EQ(*ParseMilli("4"), 4000);
  EXPECT_EQ(*ParseMilli("2500m"), 2500);
  EXPECT_FALSE(ParseMilli("xm").ok());
  EXPECT_FALSE(ParseMilli("").ok());
}

TEST(AspectDefaultsTest, ProviderDefaultsAreTodaysCloud) {
  const AspectSet d = ProviderDefaults();
  EXPECT_FALSE(d.resource.defined);
  EXPECT_FALSE(d.exec.defined);
  EXPECT_FALSE(d.dist.defined);
  EXPECT_EQ(d.exec.isolation, IsolationLevel::kWeak);
  EXPECT_EQ(d.dist.replication_factor, 1);
  EXPECT_TRUE(ValidateAspects(d).ok());
}

TEST(ValidateAspectsTest, CatchesIncoherentSpecs) {
  AspectSet a = ProviderDefaults();
  a.dist.replication_factor = 0;
  EXPECT_FALSE(ValidateAspects(a).ok());

  AspectSet b = ProviderDefaults();
  b.dist.checkpoint = true;
  b.dist.failure_handling = FailureHandling::kReexecute;
  EXPECT_FALSE(ValidateAspects(b).ok());

  AspectSet c = ProviderDefaults();
  c.exec.protection.replay_protection = true;
  EXPECT_FALSE(ValidateAspects(c).ok());
  c.exec.protection.integrity = true;
  EXPECT_TRUE(ValidateAspects(c).ok());

  AspectSet d = ProviderDefaults();
  d.resource.defined = true;
  d.resource.objective = ResourceObjective::kExplicit;
  EXPECT_FALSE(ValidateAspects(d).ok());  // explicit but empty demand
}

TEST(SpecParserTest, ParsesMinimalApp) {
  const auto spec = ParseAppSpec(R"(
app tiny
task T1 work=100 out=1MiB
data D1 size=2GiB
edge D1 -> T1
aspect T1 resource cpu=2000m dram=1GiB
)");
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  EXPECT_EQ(spec->graph.app_name(), "tiny");
  EXPECT_EQ(spec->graph.size(), 2u);
  const ModuleId t1 = spec->graph.IdOf("T1");
  const AspectSet aspects = spec->AspectsFor(t1);
  EXPECT_TRUE(aspects.resource.defined);
  EXPECT_EQ(aspects.resource.demand.Get(ResourceKind::kCpu), 2000);
  EXPECT_EQ(aspects.resource.demand.Get(ResourceKind::kDram),
            Bytes::GiB(1).bytes());
  // Unspecified module falls back to provider defaults.
  const AspectSet d1 = spec->AspectsFor(spec->graph.IdOf("D1"));
  EXPECT_FALSE(d1.resource.defined);
}

TEST(SpecParserTest, ParsesExecAndDistAspects) {
  const auto spec = ParseAppSpec(R"(
app x
task T work=1
aspect T exec isolation=strongest tenancy=single tee_if_cpu encrypt integrity replay
aspect T dist replication=3 consistency=causal prefer=writer failure=failover
)");
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  const AspectSet a = spec->AspectsFor(spec->graph.IdOf("T"));
  EXPECT_EQ(a.exec.isolation, IsolationLevel::kStrongest);
  EXPECT_EQ(a.exec.tenancy, TenancyMode::kSingleTenant);
  EXPECT_TRUE(a.exec.tee_if_cpu);
  EXPECT_TRUE(a.exec.protection.encryption);
  EXPECT_TRUE(a.exec.protection.replay_protection);
  EXPECT_EQ(a.dist.replication_factor, 3);
  EXPECT_EQ(a.dist.consistency, ConsistencyLevel::kCausal);
  EXPECT_TRUE(a.dist.consistency_specified);
  EXPECT_EQ(a.dist.preference, AccessPreference::kWriter);
  EXPECT_EQ(a.dist.failure_handling, FailureHandling::kFailover);
}

TEST(SpecParserTest, CheckpointFlagImpliesHandling) {
  const auto spec = ParseAppSpec(R"(
app x
task T work=1
aspect T dist checkpoint
)");
  ASSERT_TRUE(spec.ok());
  const AspectSet a = spec->AspectsFor(spec->graph.IdOf("T"));
  EXPECT_TRUE(a.dist.checkpoint);
  EXPECT_EQ(a.dist.failure_handling, FailureHandling::kCheckpointRestore);
  EXPECT_FALSE(a.dist.consistency_specified);
}

TEST(SpecParserTest, ReportsLineNumbers) {
  const auto spec = ParseAppSpec("app x\ntask T work=1\nbogus directive\n");
  ASSERT_FALSE(spec.ok());
  EXPECT_NE(spec.status().message().find("line 3"), std::string::npos);
}

TEST(SpecParserTest, RejectsUnknownModuleInAspect) {
  const auto spec = ParseAppSpec("app x\naspect NOPE resource cpu=1\n");
  EXPECT_FALSE(spec.ok());
}

TEST(SpecParserTest, RejectsUnknownKeysAndValues) {
  EXPECT_FALSE(ParseAppSpec("app x\ntask T work=1\naspect T resource quark=1\n").ok());
  EXPECT_FALSE(
      ParseAppSpec("app x\ntask T work=1\naspect T exec isolation=ultra\n").ok());
  EXPECT_FALSE(
      ParseAppSpec("app x\ntask T work=1\naspect T dist replication=0\n").ok());
}

TEST(SpecParserTest, RejectsCyclicGraph) {
  const auto spec = ParseAppSpec(R"(
app x
task A work=1
task B work=1
edge A -> B
edge B -> A
)");
  EXPECT_FALSE(spec.ok());
}

TEST(SpecParserTest, CommentsAndBlankLinesIgnored) {
  const auto spec = ParseAppSpec(R"(
# full-line comment

app x   # trailing comment
task T work=1  # another
)");
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  EXPECT_EQ(spec->graph.size(), 1u);
}

TEST(SpecParserTest, EdgeSyntaxEnforced) {
  EXPECT_FALSE(ParseAppSpec("app x\ntask A work=1\nedge A ->\n").ok());
  EXPECT_FALSE(ParseAppSpec("app x\ntask A work=1\nedge A => A\n").ok());
}


TEST(SpecParserTest, ParsesFailureDomains) {
  const auto spec = ParseAppSpec(R"(
app x
task A work=1
task B work=1
task C work=1
edge A -> B
domain front members=A,B replication=2 failure=checkpoint
)");
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  ASSERT_EQ(spec->domains.size(), 1u);
  EXPECT_EQ(spec->domains[0].name, "front");
  EXPECT_EQ(spec->domains[0].members.size(), 2u);
  EXPECT_EQ(spec->domains[0].replication_factor, 2);
  EXPECT_EQ(spec->domains[0].handling, FailureHandling::kCheckpointRestore);

  const ModuleId a = spec->graph.IdOf("A");
  const ModuleId c = spec->graph.IdOf("C");
  ASSERT_NE(spec->DomainOf(a), nullptr);
  EXPECT_EQ(spec->DomainOf(c), nullptr);
  EXPECT_EQ(spec->CoFailingWith(a).size(), 2u);
  EXPECT_EQ(spec->CoFailingWith(c).size(), 1u);
}

TEST(SpecParserTest, DomainRejectsUnknownAndOverlappingMembers) {
  EXPECT_FALSE(
      ParseAppSpec("app x\ntask A work=1\ndomain d members=A,NOPE\n").ok());
  EXPECT_FALSE(ParseAppSpec(
                   "app x\ntask A work=1\ndomain d1 members=A\n"
                   "domain d2 members=A\n")
                   .ok());
  EXPECT_FALSE(ParseAppSpec("app x\ntask A work=1\ndomain d\n").ok());
  EXPECT_FALSE(
      ParseAppSpec("app x\ntask A work=1\ndomain d members=A replication=0\n")
          .ok());
}

TEST(MedicalSpecTest, ParsesAndMatchesTable1) {
  const auto spec = MedicalAppSpec();
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  EXPECT_EQ(spec->graph.app_name(), "medical");
  EXPECT_EQ(spec->graph.TaskIds().size(), 6u);   // A1-A4, B1-B2
  EXPECT_EQ(spec->graph.DataIds().size(), 4u);   // S1-S4

  // Table 1 row checks.
  const AspectSet a1 = spec->AspectsFor(spec->graph.IdOf("A1"));
  EXPECT_EQ(a1.resource.objective, ResourceObjective::kFastest);
  EXPECT_TRUE(a1.exec.tee_if_cpu);

  const AspectSet a2 = spec->AspectsFor(spec->graph.IdOf("A2"));
  EXPECT_EQ(a2.resource.demand.Get(ResourceKind::kGpu), 1000);
  EXPECT_EQ(a2.exec.tenancy, TenancyMode::kSingleTenant);
  EXPECT_TRUE(a2.dist.checkpoint);

  const AspectSet a4 = spec->AspectsFor(spec->graph.IdOf("A4"));
  EXPECT_EQ(a4.exec.isolation, IsolationLevel::kStrongest);
  EXPECT_EQ(a4.dist.replication_factor, 2);

  const AspectSet s1 = spec->AspectsFor(spec->graph.IdOf("S1"));
  EXPECT_EQ(s1.resource.demand.Get(ResourceKind::kSsd), Bytes::GiB(64).bytes());
  EXPECT_TRUE(s1.exec.protection.encryption);
  EXPECT_TRUE(s1.exec.protection.integrity);
  EXPECT_EQ(s1.dist.replication_factor, 3);
  EXPECT_EQ(s1.dist.consistency, ConsistencyLevel::kSequential);

  const AspectSet s2 = spec->AspectsFor(spec->graph.IdOf("S2"));
  EXPECT_EQ(s2.dist.preference, AccessPreference::kReader);

  const AspectSet s4 = spec->AspectsFor(spec->graph.IdOf("S4"));
  EXPECT_FALSE(s4.exec.protection.encryption);
  EXPECT_TRUE(s4.exec.protection.integrity);
  EXPECT_EQ(s4.dist.consistency, ConsistencyLevel::kRelease);

  // Locality hints from sec 3.1.
  const auto partners =
      spec->graph.LocalityPartners(spec->graph.IdOf("A1"));
  ASSERT_EQ(partners.size(), 1u);
  EXPECT_EQ(partners[0], spec->graph.IdOf("A2"));
}

TEST(AspectToStringTest, RendersReadably) {
  const auto spec = MedicalAppSpec();
  ASSERT_TRUE(spec.ok());
  const AspectSet a2 = spec->AspectsFor(spec->graph.IdOf("A2"));
  const std::string s = a2.ToString();
  EXPECT_NE(s.find("gpu=1000m"), std::string::npos);
  EXPECT_NE(s.find("single"), std::string::npos);
  EXPECT_NE(s.find("checkpoint"), std::string::npos);
  const std::string defaults = ProviderDefaults().ToString();
  EXPECT_NE(defaults.find("provider default"), std::string::npos);
}

}  // namespace
}  // namespace udc
