#include <gtest/gtest.h>

#include "src/attest/attestation_service.h"
#include "src/attest/quote.h"
#include "src/hw/pool.h"

namespace udc {
namespace {

TEST(MeasurementRegisterTest, ExtendIsOrderSensitive) {
  MeasurementRegister a;
  MeasurementRegister b;
  a.Extend("first");
  a.Extend("second");
  b.Extend("second");
  b.Extend("first");
  EXPECT_FALSE(DigestEqual(a.value(), b.value()));
  EXPECT_EQ(a.extensions(), 2u);
}

TEST(MeasurementRegisterTest, SameSequenceSameValue) {
  MeasurementRegister a;
  MeasurementRegister b;
  for (const char* s : {"boot", "kernel", "app"}) {
    a.Extend(s);
    b.Extend(s);
  }
  EXPECT_TRUE(DigestEqual(a.value(), b.value()));
}

TEST(QuoteTest, SignAndVerify) {
  const Key256 vendor = KeyFromString("vendor");
  RootOfTrust rot(vendor, /*device_identity=*/7);
  const Quote q = rot.Sign(QuoteId(1), QuoteSubject::kEnvironment,
                           SimTime::Millis(5), "claim text");
  QuoteVerifier verifier(vendor);
  EXPECT_TRUE(verifier.Verify(q).ok());
  EXPECT_TRUE(verifier.VerifyClaim(q, "claim text").ok());
}

TEST(QuoteTest, TamperedReportFailsVerification) {
  const Key256 vendor = KeyFromString("vendor");
  RootOfTrust rot(vendor, 7);
  Quote q = rot.Sign(QuoteId(1), QuoteSubject::kResources, SimTime(0), "amount=8");
  q.report = "amount=9";
  QuoteVerifier verifier(vendor);
  EXPECT_EQ(verifier.Verify(q).code(), StatusCode::kVerificationFailed);
}

TEST(QuoteTest, ForgedSignerFailsVerification) {
  const Key256 vendor = KeyFromString("vendor");
  RootOfTrust rot(vendor, 7);
  Quote q = rot.Sign(QuoteId(1), QuoteSubject::kResources, SimTime(0), "x");
  q.signer_device = 8;  // pretend another device signed it
  QuoteVerifier verifier(vendor);
  EXPECT_FALSE(verifier.Verify(q).ok());
}

TEST(QuoteTest, WrongVendorKeyFails) {
  RootOfTrust rot(KeyFromString("real-vendor"), 7);
  const Quote q = rot.Sign(QuoteId(1), QuoteSubject::kSoftware, SimTime(0), "x");
  QuoteVerifier wrong(KeyFromString("fake-vendor"));
  EXPECT_FALSE(wrong.Verify(q).ok());
}

TEST(QuoteTest, ClaimMismatchDetected) {
  const Key256 vendor = KeyFromString("vendor");
  RootOfTrust rot(vendor, 7);
  const Quote q = rot.Sign(QuoteId(1), QuoteSubject::kReplication, SimTime(0),
                           ReplicationReport("S1", 7, 1));
  QuoteVerifier verifier(vendor);
  EXPECT_TRUE(verifier.VerifyClaim(q, ReplicationReport("S1", 7, 1)).ok());
  EXPECT_FALSE(verifier.VerifyClaim(q, ReplicationReport("S1", 8, 1)).ok());
}

class AttestationServiceTest : public ::testing::Test {
 protected:
  AttestationServiceTest()
      : sim_(1), vendor_(KeyFromString("vendor")), service_(&sim_, vendor_),
        verifier_(vendor_) {}
  Simulation sim_;
  Key256 vendor_;
  AttestationService service_;
  QuoteVerifier verifier_;
};

TEST_F(AttestationServiceTest, UnprovisionedDeviceCannotQuote) {
  const auto q = service_.QuoteReplica(99, "obj", TenantId(1));
  EXPECT_FALSE(q.ok());
  EXPECT_EQ(q.status().code(), StatusCode::kNotFound);
}

TEST_F(AttestationServiceTest, EnvironmentQuoteVerifies) {
  service_.ProvisionDevice(5);
  ExecEnvironment env(0, EnvKind::kTeeEnclave, TenancyMode::kSingleTenant,
                      TenantId(3), NodeId(5));
  const auto q = service_.QuoteEnvironment(env);
  ASSERT_TRUE(q.ok());
  const std::string expected = EnvironmentReport(
      env.measurement(), "strongest", "single", 3);
  EXPECT_TRUE(verifier_.VerifyClaim(*q, expected).ok());
}

TEST_F(AttestationServiceTest, NonAttestableSharedEnvRefused) {
  service_.ProvisionDevice(5);
  ExecEnvironment env(0, EnvKind::kContainer, TenancyMode::kShared,
                      TenantId(3), NodeId(5));
  EXPECT_FALSE(service_.QuoteEnvironment(env).ok());
}

TEST_F(AttestationServiceTest, ResourceQuotesCoverLedger) {
  Topology topo;
  const int rack = topo.AddRack();
  ResourcePool pool(PoolId(0), DeviceKind::kGpuBoard);
  pool.AddDevice(std::make_unique<Device>(
      DeviceId(11), DeviceKind::kGpuBoard, 4000,
      topo.AddNode(rack, NodeRole::kDevice),
      DeviceProfile::DefaultFor(DeviceKind::kGpuBoard)));
  AllocationConstraints constraints;
  auto alloc = pool.Allocate(TenantId(2), 2000, constraints, topo);
  ASSERT_TRUE(alloc.ok());
  service_.ProvisionDevice(11);

  const auto quotes = service_.QuoteResources(pool, TenantId(2));
  ASSERT_TRUE(quotes.ok());
  ASSERT_EQ(quotes->size(), 1u);
  EXPECT_TRUE(verifier_.Verify((*quotes)[0]).ok());
  EXPECT_TRUE(verifier_
                  .VerifyClaim((*quotes)[0],
                               ResourceReport(11, "gpu", 2, 2000))
                  .ok());
  // Another tenant's view is empty.
  const auto other = service_.QuoteResources(pool, TenantId(9));
  ASSERT_TRUE(other.ok());
  EXPECT_TRUE(other->empty());
}

TEST_F(AttestationServiceTest, SoftwareQuoteBindsMeasurement) {
  service_.ProvisionDevice(4);
  const Sha256Digest code = Sha256::Hash("module binary");
  const auto q = service_.QuoteSoftware(4, code, "A2");
  ASSERT_TRUE(q.ok());
  EXPECT_TRUE(verifier_.VerifyClaim(*q, SoftwareReport(code, "A2")).ok());
  const Sha256Digest other = Sha256::Hash("different binary");
  EXPECT_FALSE(verifier_.VerifyClaim(*q, SoftwareReport(other, "A2")).ok());
}

TEST_F(AttestationServiceTest, ImageQuoteMintedOncePerContentAndRefCounted) {
  const Sha256Digest digest = Sha256::Hash("env-image content");
  const Bytes size = Bytes::MiB(96);

  const Quote* first = service_.AcquireImageQuote(digest, size);
  const Quote* second = service_.AcquireImageQuote(digest, size);
  EXPECT_EQ(first, second);  // memoized: one quote object per content
  EXPECT_EQ(service_.image_quotes_minted(), 1u);
  EXPECT_EQ(service_.ImageQuoteRefs(digest), 2);
  EXPECT_EQ(service_.live_image_quotes(), 1u);
  // The store identity is reserved — it never shows up as a provisioned
  // device, so drain checks on provisioned_count stay meaningful.
  EXPECT_EQ(service_.provisioned_count(), 0u);

  // The quote verifies against the vendor root and binds digest + size.
  EXPECT_EQ(first->subject, QuoteSubject::kImage);
  EXPECT_TRUE(verifier_.Verify(*first).ok());
  EXPECT_TRUE(
      verifier_
          .VerifyClaim(*first,
                       ImageReport(digest, static_cast<uint64_t>(size.bytes())))
          .ok());
  const Sha256Digest other = Sha256::Hash("other content");
  EXPECT_FALSE(
      verifier_
          .VerifyClaim(*first,
                       ImageReport(other, static_cast<uint64_t>(size.bytes())))
          .ok());

  // Release to zero, then re-acquire: the count goes dormant and comes
  // back without a second mint.
  service_.ReleaseImageQuote(digest);
  service_.ReleaseImageQuote(digest);
  EXPECT_EQ(service_.live_image_quotes(), 0u);
  EXPECT_EQ(service_.ImageQuoteRefs(digest), 0);
  service_.ReleaseImageQuote(digest);  // idempotent past zero
  EXPECT_EQ(service_.ImageQuoteRefs(digest), 0);
  ASSERT_NE(service_.FindImageQuote(digest), nullptr);  // stays memoized

  const Quote* again = service_.AcquireImageQuote(digest, size);
  EXPECT_EQ(again, first);
  EXPECT_EQ(service_.image_quotes_minted(), 1u);
  EXPECT_EQ(sim_.metrics().counter("attest.image_quotes_minted"), 1);
}

}  // namespace
}  // namespace udc
