#include <gtest/gtest.h>

#include "src/baseline/caas.h"
#include "src/baseline/catalog.h"
#include "src/baseline/faas.h"
#include "src/baseline/iaas.h"

namespace udc {
namespace {

TEST(CatalogTest, CheapestFittingPicksMinimalPrice) {
  const InstanceCatalog catalog = InstanceCatalog::Ec2Style();
  const ResourceVector demand =
      ResourceVector::MilliCpu(3000) + ResourceVector::Dram(Bytes::GiB(10));
  const auto pick = catalog.CheapestFitting(demand);
  ASSERT_TRUE(pick.ok());
  EXPECT_EQ(pick->name, "m5.xlarge");  // 4c/16GiB is the cheapest cover
}

TEST(CatalogTest, EightGpusForceThePaperExample) {
  // The paper's motivating case: 8 GPUs + tiny CPU need still buys a
  // p3.16xlarge-class box with 64 vCPUs.
  const InstanceCatalog catalog = InstanceCatalog::Ec2Style();
  const ResourceVector demand = ResourceVector::MilliGpu(8000) +
                                ResourceVector::MilliCpu(4000) +
                                ResourceVector::Dram(Bytes::GiB(64));
  const auto pick = catalog.CheapestFitting(demand);
  ASSERT_TRUE(pick.ok());
  EXPECT_EQ(pick->name, "p3.16xlarge");
  EXPECT_EQ(pick->shape.Get(ResourceKind::kCpu), 64000);
  // >90% of the vCPUs are paid for but unused.
  EXPECT_GT(WasteFraction(*pick, demand), 0.4);
}

TEST(CatalogTest, UnsatisfiableDemandFails) {
  const InstanceCatalog catalog = InstanceCatalog::Ec2Style();
  EXPECT_FALSE(catalog.CheapestFitting(ResourceVector::MilliGpu(64000)).ok());
}

TEST(CatalogTest, AllFittingSortedByPrice) {
  const InstanceCatalog catalog = InstanceCatalog::Ec2Style();
  const auto fitting =
      catalog.AllFitting(ResourceVector::MilliCpu(1000));
  ASSERT_GT(fitting.size(), 3u);
  for (size_t i = 1; i < fitting.size(); ++i) {
    EXPECT_LE(fitting[i - 1].hourly, fitting[i].hourly);
  }
}

TEST(CatalogTest, WasteValuePricesUnusedShare) {
  const InstanceCatalog catalog = InstanceCatalog::Ec2Style();
  const auto exact = catalog.CheapestFitting(ResourceVector::MilliCpu(2000) +
                                             ResourceVector::Dram(Bytes::GiB(8)));
  ASSERT_TRUE(exact.ok());
  const Money none = WasteValue(*exact, exact->shape,
                                PriceList::DefaultOnDemand(), SimTime::Hours(1));
  EXPECT_EQ(none.micro_usd(), 0);
  const Money some = WasteValue(
      *exact, ResourceVector::MilliCpu(1000), PriceList::DefaultOnDemand(),
      SimTime::Hours(1));
  EXPECT_GT(some.micro_usd(), 0);
}

class IaasTest : public ::testing::Test {
 protected:
  IaasTest() : sim_(1) {
    for (int i = 0; i < 2; ++i) {
      topo_.AddRack();
    }
    cloud_ = std::make_unique<IaasCloud>(&sim_, &topo_, /*servers_per_rack=*/4);
  }
  Simulation sim_;
  Topology topo_;
  std::unique_ptr<IaasCloud> cloud_;
};

TEST_F(IaasTest, LaunchPlacesOnServer) {
  const ResourceVector demand =
      ResourceVector::MilliCpu(2000) + ResourceVector::Dram(Bytes::GiB(4));
  const auto instance = cloud_->LaunchForDemand(TenantId(1), demand);
  ASSERT_TRUE(instance.ok()) << instance.status().ToString();
  EXPECT_EQ(cloud_->live_instances(), 1u);
  EXPECT_GE(cloud_->ServersInUse(), 1u);
  EXPECT_GT(cloud_->MeanWasteFraction(), 0.0);
  ASSERT_TRUE(cloud_->Terminate(instance->id).ok());
  EXPECT_EQ(cloud_->live_instances(), 0u);
}

TEST_F(IaasTest, BestFitConsolidates) {
  const ResourceVector small =
      ResourceVector::MilliCpu(2000) + ResourceVector::Dram(Bytes::GiB(8));
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(cloud_->LaunchForDemand(TenantId(1), small).ok());
  }
  // Six m5.large-ish instances should share few servers.
  EXPECT_LE(cloud_->ServersInUse(), 2u);
}

TEST_F(IaasTest, GpuDemandNeedsGpuBox) {
  const ResourceVector gpu_demand = ResourceVector::MilliGpu(8000) +
                                    ResourceVector::MilliCpu(2000) +
                                    ResourceVector::Dram(Bytes::GiB(32));
  const auto instance = cloud_->LaunchForDemand(TenantId(1), gpu_demand);
  ASSERT_TRUE(instance.ok());
  EXPECT_EQ(instance->type.name, "p3.16xlarge");
  // Effective GPU utilization on occupied servers is 100% of what's asked,
  // but CPU is mostly stranded.
  EXPECT_LT(cloud_->EffectiveUtilization(ResourceKind::kCpu), 0.25);
}

TEST_F(IaasTest, WholeInstanceBilling) {
  const auto instance = cloud_->LaunchForDemand(
      TenantId(1), ResourceVector::MilliCpu(1000));
  ASSERT_TRUE(instance.ok());
  const Money bill = cloud_->BillFor(*instance, SimTime::Hours(10));
  EXPECT_NEAR(bill.dollars(), instance->type.hourly.dollars() * 10, 0.01);
}

TEST_F(IaasTest, CapacityExhaustionFails) {
  const ResourceVector big = ResourceVector::MilliGpu(8000) +
                             ResourceVector::MilliCpu(4000) +
                             ResourceVector::Dram(Bytes::GiB(64));
  // Only 2 GPU boxes exist (one per 4 servers per rack, 2 racks).
  ASSERT_TRUE(cloud_->LaunchForDemand(TenantId(1), big).ok());
  ASSERT_TRUE(cloud_->LaunchForDemand(TenantId(1), big).ok());
  EXPECT_FALSE(cloud_->LaunchForDemand(TenantId(1), big).ok());
}

class FaasTest : public ::testing::Test {
 protected:
  Simulation sim_{1};
  FaasCloud faas_{&sim_};
};

TEST_F(FaasTest, FirstInvocationIsCold) {
  FaasFunction fn{"infer", Bytes::MiB(1769), 10000};
  const auto first = faas_.Invoke(fn);
  EXPECT_TRUE(first.cold);
  const auto second = faas_.Invoke(fn);
  EXPECT_FALSE(second.cold);
  EXPECT_LT(second.latency, first.latency);
  EXPECT_EQ(faas_.cold_starts(), 1u);
}

TEST_F(FaasTest, WarmInstanceExpires) {
  FaasFunction fn{"f", Bytes::MiB(512), 1000};
  faas_.Invoke(fn, /*keep_warm=*/SimTime::Minutes(1));
  sim_.RunUntil(SimTime::Minutes(5));  // idle past expiry
  const auto later = faas_.Invoke(fn);
  EXPECT_TRUE(later.cold);
}

TEST_F(FaasTest, CpuScalesWithMemory) {
  FaasFunction small{"s", Bytes::MiB(512), 20000};
  FaasFunction large{"l", Bytes::MiB(3538), 20000};
  const auto slow = faas_.Invoke(small);
  const auto fast = faas_.Invoke(large);
  EXPECT_GT(slow.execution, fast.execution);
}

TEST_F(FaasTest, ChargesGbSecondsPlusRequest) {
  FaasFunction fn{"f", Bytes::MiB(1024), 100000};  // 1 GB, ~173 s on 0.58 vCPU
  const auto r = faas_.Invoke(fn);
  EXPECT_GT(r.charge.micro_usd(), FaasPricing().per_request.micro_usd());
}

TEST_F(FaasTest, NoGpuOffering) {
  FaasFunction fn{"cnn", Bytes::MiB(2048), 30000};
  const auto r = faas_.InvokeGpu(fn);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kFailedPrecondition);
}

class CaasTest : public ::testing::Test {
 protected:
  CaasTest() : sim_(1) {
    topo_.AddRack();
    caas_ = std::make_unique<CaasCloud>(&sim_, &topo_, /*nodes_per_rack=*/3);
  }
  Simulation sim_;
  Topology topo_;
  std::unique_ptr<CaasCloud> caas_;
};

TEST_F(CaasTest, PacksContainersTightly) {
  const ResourceVector request =
      ResourceVector::MilliCpu(4000) + ResourceVector::Dram(Bytes::GiB(16));
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(caas_->Schedule(TenantId(1), request).ok());
  }
  // 8 x 4 cores on 48-core nodes: all fit on one node.
  EXPECT_EQ(caas_->NodesInUse(), 1u);
  EXPECT_GT(caas_->NodeUtilization(ResourceKind::kCpu), 0.6);
}

TEST_F(CaasTest, RemoveFreesCapacity) {
  const auto c = caas_->Schedule(TenantId(1), ResourceVector::MilliCpu(1000));
  ASSERT_TRUE(c.ok());
  ASSERT_TRUE(caas_->Remove(c->id).ok());
  EXPECT_EQ(caas_->live_containers(), 0u);
  EXPECT_FALSE(caas_->Remove(c->id).ok());
}

TEST_F(CaasTest, BillsDominantShareOfNode) {
  // Half the node's cores -> half the node price.
  const auto c = caas_->Schedule(
      TenantId(1), ResourceVector::MilliCpu(24000));
  ASSERT_TRUE(c.ok());
  const Money bill = caas_->BillFor(*c, SimTime::Hours(1));
  EXPECT_NEAR(bill.dollars(), 2.304 * 0.5, 0.01);
}

TEST_F(CaasTest, ClusterExhaustionFails) {
  const ResourceVector huge = ResourceVector::MilliCpu(48000);
  ASSERT_TRUE(caas_->Schedule(TenantId(1), huge).ok());
  ASSERT_TRUE(caas_->Schedule(TenantId(1), huge).ok());
  ASSERT_TRUE(caas_->Schedule(TenantId(1), huge).ok());
  EXPECT_FALSE(caas_->Schedule(TenantId(1), huge).ok());
}

}  // namespace
}  // namespace udc
