// Hierarchical control-plane tests: cell partitioning (topology mapping,
// per-cell free summaries), the router's balanced home-cell choice,
// cross-cell deploys that span cells inside one transaction, multi-cell
// abort atomicity (snapshot pools/envs/attestation before and after, as in
// placement_txn_test), PlacementTxn::AbortTo partial rollback, and a
// randomized differential test asserting the cell-partitioned control
// plane and the legacy single-index scheduler make byte-identical
// admit/reject decisions and end with byte-identical pool occupancy on the
// same deploy/teardown sequence.
//
// The specs used here have uniform explicit demands (every task is exactly
// a quarter of a cpu blade), so admission is count-based: whether a deploy
// fits cannot depend on WHERE previous modules landed, only on how many
// are live — which is what makes the legacy scheduler a differential
// oracle for the router despite their different placement geometry.

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/common/rng.h"
#include "src/core/placement_engine.h"
#include "src/core/placement_txn.h"
#include "src/core/udc_cloud.h"
#include "src/crypto/hmac.h"

namespace udc {
namespace {

// One task = 8000 millicores = a quarter of a 32-core cpu blade, plus a
// working set far below any dram module's capacity. Tasks are independent
// (no edges): admission order is the graph's insertion order either way.
AppSpec MakeUniformSpec(const std::string& name, int tasks) {
  AppSpec spec;
  spec.graph.set_app_name(name);
  for (int i = 0; i < tasks; ++i) {
    auto id = spec.graph.AddTask(name + "-t" + std::to_string(i),
                                 /*work_units=*/1.0);
    AspectSet aspects = ProviderDefaults();
    aspects.resource.defined = true;
    aspects.resource.objective = ResourceObjective::kExplicit;
    aspects.resource.demand.Set(ResourceKind::kCpu, 8000);
    aspects.resource.demand.Set(ResourceKind::kDram, Bytes::MiB(64).bytes());
    spec.aspects[*id] = aspects;
  }
  return spec;
}

UdcCloudConfig CellConfig(int racks, int cells) {
  UdcCloudConfig config;
  config.datacenter.racks = racks;
  config.datacenter.cells = cells;
  config.scheduler.use_placement_index = true;
  return config;
}

using PoolOccupancy = std::array<int64_t, kNumDeviceKinds>;

PoolOccupancy OccupancyOf(UdcCloud& cloud) {
  PoolOccupancy occupancy{};
  for (int k = 0; k < kNumDeviceKinds; ++k) {
    occupancy[static_cast<size_t>(k)] =
        cloud.datacenter().pool(static_cast<DeviceKind>(k)).TotalAllocated();
  }
  return occupancy;
}

TEST(TopologyCellsTest, SetCellCountPartitionsRacksContiguously) {
  DisaggregatedDatacenter dc(DatacenterConfig{.racks = 7});
  Topology& topo = dc.topology();
  topo.SetCellCount(3);
  ASSERT_EQ(topo.cell_count(), 3);
  // Every rack maps to exactly one cell, cells are contiguous and
  // non-decreasing, and no cell is empty.
  std::vector<int> racks_per_cell(3, 0);
  int prev = 0;
  for (int rack = 0; rack < topo.rack_count(); ++rack) {
    const int cell = topo.CellOf(rack);
    ASSERT_GE(cell, 0);
    ASSERT_LT(cell, 3);
    ASSERT_GE(cell, prev);
    ASSERT_LE(cell - prev, 1);
    prev = cell;
    ++racks_per_cell[static_cast<size_t>(cell)];
    EXPECT_GE(rack, topo.CellRackBegin(cell));
    EXPECT_LT(rack, topo.CellRackEnd(cell));
  }
  for (int c = 0; c < 3; ++c) {
    EXPECT_GT(racks_per_cell[static_cast<size_t>(c)], 0);
  }
  // Out of range / unpartitioned.
  EXPECT_EQ(topo.CellOf(-1), -1);
  EXPECT_EQ(topo.CellOf(7), -1);
}

TEST(CapacityIndexCellsTest, CellFreeSummaryTracksCommitDeltas) {
  UdcCloud cloud(CellConfig(/*racks=*/4, /*cells=*/2));
  const auto& cell_free =
      cloud.datacenter()
          .pool(DeviceKind::kCpuBlade)
          .PlacementIndex(cloud.datacenter().topology())
          .cell_free();
  ASSERT_EQ(cell_free.size(), 2u);
  // 2 racks x 4 blades x 32000 millicores per cell, all free and healthy.
  EXPECT_EQ(cell_free[0], 2 * 4 * 32000);
  EXPECT_EQ(cell_free[0], cell_free[1]);

  const int64_t before_0 = cell_free[0];
  const int64_t before_1 = cell_free[1];
  const AppSpec spec = MakeUniformSpec("one", 1);
  auto deployment = cloud.Deploy(cloud.RegisterTenant("t"), spec);
  ASSERT_TRUE(deployment.ok());
  cloud.sim()->RunToCompletion();
  // Exactly one cell's summary moved, by exactly the task's demand.
  EXPECT_EQ(before_0 + before_1 - cell_free[0] - cell_free[1], 8000);
  deployment->reset();  // teardown releases the slice
  cloud.sim()->RunToCompletion();
  EXPECT_EQ(cell_free[0], before_0);
  EXPECT_EQ(cell_free[1], before_1);
}

TEST(CellRouterTest, BalancesHomeCellsByFreeCapacity) {
  UdcCloud cloud(CellConfig(/*racks=*/4, /*cells=*/2));
  ASSERT_NE(cloud.cell_router(), nullptr);
  const AppSpec spec = MakeUniformSpec("one", 1);
  std::vector<std::unique_ptr<Deployment>> live;
  for (int i = 0; i < 4; ++i) {
    auto deployment =
        cloud.Deploy(cloud.RegisterTenant("t" + std::to_string(i)), spec);
    ASSERT_TRUE(deployment.ok());
    live.push_back(std::move(*deployment));
    cloud.sim()->RunToCompletion();
  }
  // Equal capacity, equal demands: the router alternates home cells.
  EXPECT_EQ(cloud.cell_router()->CellDeploys(0), 2);
  EXPECT_EQ(cloud.cell_router()->CellDeploys(1), 2);
  EXPECT_EQ(cloud.cell_router()->cross_cell_deploys(), 0);
}

// Fills a 2-cell cloud until each cell has exactly `free_slots_per_cell`
// quarter-blade slots left, returning the filler deployments.
std::vector<std::unique_ptr<Deployment>> FillAllBut(
    UdcCloud& cloud, int free_slots_per_cell) {
  // racks=2, cells=2: 4 blades x 4 slots = 16 slots per cell.
  const int fillers = 2 * (16 - free_slots_per_cell);
  const AppSpec spec = MakeUniformSpec("filler", 1);
  std::vector<std::unique_ptr<Deployment>> live;
  for (int i = 0; i < fillers; ++i) {
    auto deployment =
        cloud.Deploy(cloud.RegisterTenant("f" + std::to_string(i)), spec);
    EXPECT_TRUE(deployment.ok());
    if (deployment.ok()) {
      live.push_back(std::move(*deployment));
    }
    cloud.sim()->RunToCompletion();
  }
  return live;
}

TEST(CellRouterTest, CrossCellDeploySpansCellsInOneTransaction) {
  UdcCloud cloud(CellConfig(/*racks=*/2, /*cells=*/2));
  auto fillers = FillAllBut(cloud, /*free_slots_per_cell=*/2);
  // 3 tasks against 2 free slots per cell: no single cell fits the DAG, so
  // the deploy must span — and still commit atomically.
  const AppSpec spec = MakeUniformSpec("span", 3);
  auto deployment = cloud.Deploy(cloud.RegisterTenant("span"), spec);
  ASSERT_TRUE(deployment.ok());
  cloud.sim()->RunToCompletion();
  EXPECT_EQ(cloud.cell_router()->cross_cell_deploys(), 1);
  EXPECT_GE(cloud.cell_router()->cell_fallbacks(), 1);
  EXPECT_EQ(cloud.sim()->metrics().counter("core.txn_aborted"), 0);

  deployment->reset();
  fillers.clear();
  cloud.sim()->RunToCompletion();
  EXPECT_EQ(cloud.datacenter().TotalAllocated(), ResourceVector());
  EXPECT_EQ(cloud.envs().live_count(), 0u);
}

TEST(CellRouterTest, MultiCellAbortRestoresSnapshotState) {
  UdcCloud cloud(CellConfig(/*racks=*/2, /*cells=*/2));
  auto fillers = FillAllBut(cloud, /*free_slots_per_cell=*/2);

  const PoolOccupancy occupancy_before = OccupancyOf(cloud);
  const size_t envs_before = cloud.envs().live_count();
  const size_t attested_before = cloud.attestation().provisioned_count();
  const int64_t committed_before =
      cloud.sim()->metrics().counter("core.txn_committed");

  // 5 tasks against 4 free slots datacenter-wide: the home cell admits 2,
  // 2 spill to the other cell, the 5th fits nowhere — every staged sub-plan
  // (both cells') must unwind.
  const AppSpec spec = MakeUniformSpec("toobig", 5);
  auto deployment = cloud.Deploy(cloud.RegisterTenant("toobig"), spec);
  EXPECT_FALSE(deployment.ok());
  cloud.sim()->RunToCompletion();

  EXPECT_EQ(OccupancyOf(cloud), occupancy_before);
  EXPECT_EQ(cloud.envs().live_count(), envs_before);
  EXPECT_EQ(cloud.attestation().provisioned_count(), attested_before);
  // The abort really staged work across cells before unwinding.
  EXPECT_GE(cloud.cell_router()->cell_fallbacks(), 1);
  EXPECT_GE(cloud.sim()->metrics().counter("core.txn_aborted"), 1);
  EXPECT_EQ(cloud.sim()->metrics().counter("core.txn_committed"),
            committed_before);
}

TEST(PlacementTxnAbortToTest, UnwindsOnlyTheSuffixAfterTheMark) {
  Simulation sim;
  DisaggregatedDatacenter dc(DatacenterConfig{.racks = 2});
  EnvManager envs(&sim);
  AttestationService attest(&sim, KeyFromString("cell-test-vendor"));
  PlacementEngine engine(&sim, &dc, &envs, &attest);

  PlacementTxn txn = engine.Begin("abort_to");
  ASSERT_TRUE(txn.Allocate(DeviceKind::kCpuBlade, TenantId(1), 1000,
                           AllocationConstraints{})
                  .ok());
  const size_t mark = txn.staged_ops();
  ASSERT_TRUE(txn.Allocate(DeviceKind::kCpuBlade, TenantId(1), 2000,
                           AllocationConstraints{})
                  .ok());
  ASSERT_TRUE(txn.Allocate(DeviceKind::kCpuBlade, TenantId(1), 4000,
                           AllocationConstraints{})
                  .ok());
  EXPECT_EQ(dc.pool(DeviceKind::kCpuBlade).TotalAllocated(), 7000);

  txn.AbortTo(mark);
  // The suffix is gone, the prefix is still staged and the txn still open.
  EXPECT_EQ(dc.pool(DeviceKind::kCpuBlade).TotalAllocated(), 1000);
  EXPECT_EQ(txn.staged_ops(), mark);
  EXPECT_TRUE(txn.Commit().ok());
  EXPECT_EQ(dc.pool(DeviceKind::kCpuBlade).TotalAllocated(), 1000);
}

// --- The randomized differential: cells vs. legacy on one shared script.

struct Action {
  bool deploy = false;
  uint64_t value = 0;  // teardown slot selector
};

struct LegOutcome {
  std::vector<bool> decisions;
  PoolOccupancy occupancy{};
  size_t live_envs = 0;
};

LegOutcome RunLeg(int cells, const std::vector<Action>& script,
                  const std::shared_ptr<const AppSpec>& spec) {
  UdcCloud cloud(CellConfig(/*racks=*/4, cells));
  LegOutcome outcome;
  std::vector<std::unique_ptr<Deployment>> live;
  int tenant = 0;
  for (const Action& action : script) {
    if (action.deploy || live.empty()) {
      auto deployment = cloud.Deploy(
          cloud.RegisterTenant("d" + std::to_string(tenant++)), spec);
      outcome.decisions.push_back(deployment.ok());
      if (deployment.ok()) {
        live.push_back(std::move(*deployment));
      }
    } else {
      const size_t idx = action.value % live.size();
      live.erase(live.begin() + static_cast<long>(idx));
    }
    cloud.sim()->RunToCompletion();
  }
  outcome.occupancy = OccupancyOf(cloud);
  outcome.live_envs = cloud.envs().live_count();
  return outcome;
}

TEST(CellRouterDifferentialTest, MatchesLegacySchedulerDecisionForDecision) {
  // 4 racks = 64 quarter-blade slots; 2-task deploys saturate at 32 live,
  // and the 70/30 deploy/teardown mix keeps the run bouncing off the
  // capacity ceiling, so both admits and rejects are exercised heavily.
  const auto spec =
      std::make_shared<const AppSpec>(MakeUniformSpec("diff", 2));
  for (const uint64_t seed : {0xCE11ull, 0xD1FFull, 0xF00Dull}) {
    Rng rng(seed);
    std::vector<Action> script;
    for (int i = 0; i < 400; ++i) {
      script.push_back(Action{rng.NextUint64(100) < 70,
                              rng.NextUint64(1u << 30)});
    }
    const LegOutcome legacy = RunLeg(/*cells=*/0, script, spec);
    const LegOutcome cells = RunLeg(/*cells=*/2, script, spec);

    ASSERT_EQ(legacy.decisions.size(), cells.decisions.size());
    EXPECT_EQ(legacy.decisions, cells.decisions) << "seed " << seed;
    EXPECT_EQ(legacy.occupancy, cells.occupancy) << "seed " << seed;
    EXPECT_EQ(legacy.live_envs, cells.live_envs) << "seed " << seed;
    // The scripts are tuned to hit exhaustion: a run with no rejects would
    // be vacuous as a differential.
    EXPECT_NE(std::find(legacy.decisions.begin(), legacy.decisions.end(),
                        false),
              legacy.decisions.end())
        << "seed " << seed << " never hit capacity";
  }
}

}  // namespace
}  // namespace udc
