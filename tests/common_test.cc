#include <gtest/gtest.h>

#include <set>

#include "src/common/histogram.h"
#include "src/common/ids.h"
#include "src/common/rng.h"
#include "src/common/status.h"
#include "src/common/strings.h"
#include "src/common/units.h"

namespace udc {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  const Status s = ResourceExhaustedError("pool empty");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(s.message(), "pool empty");
  EXPECT_EQ(s.ToString(), "RESOURCE_EXHAUSTED: pool empty");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (int i = 0; i <= static_cast<int>(StatusCode::kInternal); ++i) {
    EXPECT_NE(StatusCodeName(static_cast<StatusCode>(i)), "UNKNOWN");
  }
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value_or(7), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = NotFoundError("nope");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(7), 7);
}

Result<int> Doubler(Result<int> in) {
  UDC_ASSIGN_OR_RETURN(const int v, in);
  return v * 2;
}

TEST(ResultTest, AssignOrReturnPropagates) {
  EXPECT_EQ(*Doubler(21), 42);
  EXPECT_FALSE(Doubler(InternalError("boom")).ok());
}

TEST(IdsTest, TypedIdsAreDistinctTypes) {
  const TenantId t(1);
  const ModuleId m(1);
  EXPECT_EQ(t.value(), m.value());
  EXPECT_FALSE(TenantId().valid());
  EXPECT_TRUE(t.valid());
}

TEST(IdsTest, GeneratorIsMonotonic) {
  IdGenerator<DeviceId> gen;
  EXPECT_EQ(gen.Next().value(), 0u);
  EXPECT_EQ(gen.Next().value(), 1u);
  EXPECT_EQ(gen.issued(), 2u);
}

TEST(UnitsTest, SimTimeArithmetic) {
  EXPECT_EQ(SimTime::Millis(1).micros(), 1000);
  EXPECT_EQ(SimTime::Seconds(2).micros(), 2000000);
  EXPECT_EQ((SimTime::Millis(3) + SimTime::Millis(4)).micros(), 7000);
  EXPECT_LT(SimTime::Millis(1), SimTime::Seconds(1));
  EXPECT_DOUBLE_EQ(SimTime::Hours(2).hours(), 2.0);
}

TEST(UnitsTest, ScaleTime) {
  EXPECT_EQ(Scale(SimTime::Millis(10), 1.5).micros(), 15000);
}

TEST(UnitsTest, MoneyFromDollarsRounds) {
  EXPECT_EQ(Money::FromDollars(0.096).micro_usd(), 96000);
  EXPECT_EQ(Money::Cents(5).micro_usd(), 50000);
  EXPECT_DOUBLE_EQ(Money::Dollars(3).dollars(), 3.0);
}

TEST(UnitsTest, BytesHelpers) {
  EXPECT_EQ(Bytes::KiB(1).bytes(), 1024);
  EXPECT_EQ(Bytes::GiB(1).bytes(), 1024LL * 1024 * 1024);
  EXPECT_DOUBLE_EQ(Bytes::MiB(512).gib(), 0.5);
}

TEST(UnitsTest, ToStringFormats) {
  EXPECT_EQ(SimTime::Micros(5).ToString(), "5us");
  EXPECT_NE(SimTime::Millis(12).ToString().find("ms"), std::string::npos);
  EXPECT_NE(Bytes::GiB(2).ToString().find("GiB"), std::string::npos);
  EXPECT_EQ(Money::Dollars(1).ToString(), "$1.0000");
}

TEST(StringsTest, SplitKeepsEmptyFields) {
  const auto parts = SplitString("a,,b", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
}

TEST(StringsTest, Trim) {
  EXPECT_EQ(TrimWhitespace("  x \t"), "x");
  EXPECT_EQ(TrimWhitespace(""), "");
  EXPECT_EQ(TrimWhitespace("   "), "");
}

TEST(StringsTest, PrefixSuffix) {
  EXPECT_TRUE(StartsWith("hello", "he"));
  EXPECT_FALSE(StartsWith("he", "hello"));
  EXPECT_TRUE(EndsWith("file.cc", ".cc"));
}

TEST(StringsTest, ParseUint64RejectsBadInput) {
  uint64_t v = 0;
  EXPECT_TRUE(ParseUint64("123", &v));
  EXPECT_EQ(v, 123u);
  EXPECT_FALSE(ParseUint64("", &v));
  EXPECT_FALSE(ParseUint64("12a", &v));
  EXPECT_FALSE(ParseUint64("-1", &v));
  EXPECT_FALSE(ParseUint64("99999999999999999999999", &v));  // overflow
}

TEST(StringsTest, ParseDouble) {
  double v = 0;
  EXPECT_TRUE(ParseDouble("2.5", &v));
  EXPECT_DOUBLE_EQ(v, 2.5);
  EXPECT_FALSE(ParseDouble("x2", &v));
  EXPECT_FALSE(ParseDouble("2x", &v));
}

TEST(StringsTest, StrFormat) {
  EXPECT_EQ(StrFormat("%d-%s", 3, "x"), "3-x");
  EXPECT_EQ(StrFormat("%s", std::string(300, 'a').c_str()).size(), 300u);
}

TEST(HistogramTest, BasicStats) {
  Histogram h;
  for (double v : {1.0, 2.0, 3.0, 4.0, 5.0}) {
    h.Add(v);
  }
  EXPECT_EQ(h.count(), 5);
  EXPECT_DOUBLE_EQ(h.Mean(), 3.0);
  EXPECT_DOUBLE_EQ(h.Min(), 1.0);
  EXPECT_DOUBLE_EQ(h.Max(), 5.0);
  EXPECT_DOUBLE_EQ(h.Median(), 3.0);
}

TEST(HistogramTest, QuantileInterpolates) {
  Histogram h;
  h.Add(0.0);
  h.Add(10.0);
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), 5.0);
  EXPECT_DOUBLE_EQ(h.Quantile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(h.Quantile(1.0), 10.0);
}

TEST(HistogramTest, EmptyIsSafe) {
  Histogram h;
  EXPECT_EQ(h.count(), 0);
  EXPECT_DOUBLE_EQ(h.Mean(), 0.0);
  EXPECT_DOUBLE_EQ(h.Quantile(0.99), 0.0);
}

TEST(HistogramTest, MergeCombines) {
  Histogram a;
  Histogram b;
  a.Add(1.0);
  b.Add(3.0);
  a.Merge(b);
  EXPECT_EQ(a.count(), 2);
  EXPECT_DOUBLE_EQ(a.Mean(), 2.0);
}

TEST(RngTest, DeterministicAcrossInstances) {
  Rng a(7);
  Rng b(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextUint64(), b.NextUint64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 50; ++i) {
    if (a.NextUint64() == b.NextUint64()) {
      ++same;
    }
  }
  EXPECT_LT(same, 3);
}

TEST(RngTest, BoundedStaysInBounds) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextUint64(17), 17u);
    const int64_t v = rng.NextInt64InRange(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, ExponentialMeanApproximatelyCorrect) {
  Rng rng(11);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    sum += rng.NextExponential(2.0);
  }
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(RngTest, ZipfSkewsTowardLowRanks) {
  Rng rng(13);
  int low = 0;
  const int n = 5000;
  for (int i = 0; i < n; ++i) {
    if (rng.NextZipf(1000, 1.2) < 10) {
      ++low;
    }
  }
  // With s=1.2 the first 10 ranks carry a large share of the mass.
  EXPECT_GT(low, n / 5);
}

TEST(RngTest, ForkIsIndependent) {
  Rng parent(5);
  Rng child = parent.Fork();
  EXPECT_NE(parent.NextUint64(), child.NextUint64());
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(17);
  std::vector<int> v{1, 2, 3, 4, 5, 6};
  rng.Shuffle(v);
  std::set<int> s(v.begin(), v.end());
  EXPECT_EQ(s.size(), 6u);
}

}  // namespace
}  // namespace udc
