#include <gtest/gtest.h>

#include "src/core/billing.h"
#include "src/core/planner.h"
#include "src/core/runtime.h"
#include "src/core/tuner.h"
#include "src/core/udc_cloud.h"
#include "src/core/verifier.h"
#include "src/workload/medical.h"

namespace udc {
namespace {

class PlannerTest : public ::testing::Test {
 protected:
  PlannerTest()
      : dc_(DatacenterConfig{}), prices_(PriceList::DefaultOnDemand()),
        profiler_(&dc_, &prices_) {}

  Module MakeTask(double work) {
    Module m;
    m.id = ModuleId(1);
    m.name = "T";
    m.kind = ModuleKind::kTask;
    m.work_units = work;
    m.output_size = Bytes::MiB(1);
    return m;
  }

  DisaggregatedDatacenter dc_;
  PriceList prices_;
  DryRunProfiler profiler_;
};

TEST_F(PlannerTest, GpuProfileFasterCpuCheaper) {
  const Module m = MakeTask(100000);
  const auto cpu = profiler_.ProfileOn(m, ResourceKind::kCpu);
  const auto gpu = profiler_.ProfileOn(m, ResourceKind::kGpu);
  ASSERT_TRUE(cpu.ok());
  ASSERT_TRUE(gpu.ok());
  EXPECT_LT(gpu->estimated_time, cpu->estimated_time);
  EXPECT_LT(cpu->estimated_cost, gpu->estimated_cost);
}

TEST_F(PlannerTest, FastestObjectivePicksGpu) {
  const Module m = MakeTask(100000);
  ResourceAspect aspect;
  aspect.defined = true;
  aspect.objective = ResourceObjective::kFastest;
  const auto resolved = ResolveDemand(m, aspect, profiler_);
  ASSERT_TRUE(resolved.ok());
  EXPECT_EQ(resolved->chosen_profile.compute, ResourceKind::kGpu);
  EXPECT_GT(resolved->demand.Get(ResourceKind::kGpu), 0);
  // GPU orchestration needs only a sliver of CPU (the p3.16xlarge lesson).
  EXPECT_LE(resolved->demand.Get(ResourceKind::kCpu), 1000);
}

TEST_F(PlannerTest, CheapestObjectivePicksCpu) {
  const Module m = MakeTask(100000);
  ResourceAspect aspect;
  aspect.defined = true;
  aspect.objective = ResourceObjective::kCheapest;
  const auto resolved = ResolveDemand(m, aspect, profiler_);
  ASSERT_TRUE(resolved.ok());
  EXPECT_EQ(resolved->chosen_profile.compute, ResourceKind::kCpu);
  EXPECT_EQ(resolved->demand.Get(ResourceKind::kGpu), 0);
}

TEST_F(PlannerTest, AllowedComputeRestrictsCandidates) {
  const Module m = MakeTask(100000);
  ResourceAspect aspect;
  aspect.defined = true;
  aspect.objective = ResourceObjective::kFastest;
  aspect.allowed_compute = {ResourceKind::kCpu, ResourceKind::kFpga};
  const auto resolved = ResolveDemand(m, aspect, profiler_);
  ASSERT_TRUE(resolved.ok());
  EXPECT_EQ(resolved->chosen_profile.compute, ResourceKind::kFpga);
}

TEST_F(PlannerTest, ExplicitDemandGetsComputeAndMemoryFloors) {
  const Module m = MakeTask(1000);
  ResourceAspect aspect;
  aspect.defined = true;
  aspect.objective = ResourceObjective::kExplicit;
  aspect.demand = ResourceVector::MilliGpu(500);
  const auto resolved = ResolveDemand(m, aspect, profiler_);
  ASSERT_TRUE(resolved.ok());
  EXPECT_EQ(resolved->demand.Get(ResourceKind::kGpu), 500);
  EXPECT_GT(resolved->demand.Get(ResourceKind::kDram), 0);  // floored
}


TEST_F(PlannerTest, DeadlinePicksCheapestMeetingIt) {
  const Module m = MakeTask(100000);  // cpu: 100ms, fpga: ~8.3ms, gpu: 2.5ms
  ResourceAspect aspect;
  aspect.defined = true;
  aspect.objective = ResourceObjective::kCheapest;
  aspect.deadline = SimTime::Millis(10);  // rules out CPU
  const auto resolved = ResolveDemand(m, aspect, profiler_);
  ASSERT_TRUE(resolved.ok()) << resolved.status().ToString();
  // The 100ms CPU candidate is excluded; among the survivors the GPU is
  // actually cheapest *per run* (it finishes 3x sooner than FPGA).
  EXPECT_NE(resolved->chosen_profile.compute, ResourceKind::kCpu);
  EXPECT_LE(resolved->chosen_profile.estimated_time, SimTime::Millis(10));
}

TEST_F(PlannerTest, InfeasibleDeadlineFailsLoudly) {
  const Module m = MakeTask(100000000);  // even a GPU takes 2.5s
  ResourceAspect aspect;
  aspect.defined = true;
  aspect.deadline = SimTime::Millis(1);
  const auto resolved = ResolveDemand(m, aspect, profiler_);
  ASSERT_FALSE(resolved.ok());
  EXPECT_EQ(resolved.status().code(), StatusCode::kFailedPrecondition);
}

TEST_F(PlannerTest, BudgetPicksFastestWithinIt) {
  const Module m = MakeTask(100000);
  ResourceAspect aspect;
  aspect.defined = true;
  // $2/h affords CPU ($0.03) and FPGA ($1.66) but not the GPU ($2.47).
  aspect.hourly_budget = Money::FromDollars(2.0);
  const auto resolved = ResolveDemand(m, aspect, profiler_);
  ASSERT_TRUE(resolved.ok()) << resolved.status().ToString();
  EXPECT_NE(resolved->chosen_profile.compute, ResourceKind::kGpu);
  // Among the affordable candidates the fastest wins.
  EXPECT_EQ(resolved->chosen_profile.compute, ResourceKind::kFpga);
}

TEST_F(PlannerTest, GoalsParseFromUdcl) {
  const auto spec = ParseAppSpec(R"(
app goals
task fast work=100000
aspect fast resource objective=cheapest deadline=10ms
task frugal work=100000
aspect frugal resource budget=0.5
)");
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  const AspectSet fast = spec->AspectsFor(spec->graph.IdOf("fast"));
  ASSERT_TRUE(fast.resource.deadline.has_value());
  EXPECT_EQ(*fast.resource.deadline, SimTime::Millis(10));
  const AspectSet frugal = spec->AspectsFor(spec->graph.IdOf("frugal"));
  ASSERT_TRUE(frugal.resource.hourly_budget.has_value());
  EXPECT_EQ(frugal.resource.hourly_budget->micro_usd(), 500000);
  // Bad literals are rejected with line numbers.
  EXPECT_FALSE(ParseAppSpec(
                   "app x\ntask t work=1\naspect t resource deadline=10\n")
                   .ok());
  EXPECT_FALSE(ParseAppSpec(
                   "app x\ntask t work=1\naspect t resource budget=-1\n")
                   .ok());
}

TEST_F(PlannerTest, DataModuleMediumSelection) {
  Module data;
  data.id = ModuleId(2);
  data.kind = ModuleKind::kData;
  data.data_size = Bytes::GiB(10);

  ResourceAspect fastest;
  fastest.defined = true;
  fastest.objective = ResourceObjective::kFastest;
  EXPECT_EQ(ResolveDemand(data, fastest, profiler_)->storage_medium,
            ResourceKind::kDram);

  ResourceAspect cheapest;
  cheapest.defined = true;
  cheapest.objective = ResourceObjective::kCheapest;
  EXPECT_EQ(ResolveDemand(data, cheapest, profiler_)->storage_medium,
            ResourceKind::kHdd);

  ResourceAspect explicit_ssd;
  explicit_ssd.defined = true;
  explicit_ssd.objective = ResourceObjective::kExplicit;
  explicit_ssd.demand = ResourceVector::Ssd(Bytes::GiB(10));
  const auto resolved = ResolveDemand(data, explicit_ssd, profiler_);
  EXPECT_EQ(resolved->storage_medium, ResourceKind::kSsd);
  EXPECT_EQ(resolved->demand.Get(ResourceKind::kSsd), Bytes::GiB(10).bytes());
}

class DeployTest : public ::testing::Test {
 protected:
  DeployTest() {
    UdcCloudConfig config;
    config.datacenter.racks = 4;
    cloud_ = std::make_unique<UdcCloud>(config);
    tenant_ = cloud_->RegisterTenant("hospital");
    auto spec = MedicalAppSpec();
    EXPECT_TRUE(spec.ok());
    spec_ = std::make_unique<AppSpec>(*std::move(spec));
  }

  std::unique_ptr<UdcCloud> cloud_;
  TenantId tenant_;
  std::unique_ptr<AppSpec> spec_;
};

TEST_F(DeployTest, MedicalAppDeploysFully) {
  auto deployment = cloud_->Deploy(tenant_, *spec_);
  ASSERT_TRUE(deployment.ok()) << deployment.status().ToString();
  EXPECT_EQ((*deployment)->objects().size(), 10u);
  for (const ModuleId id : spec_->graph.ModuleIds()) {
    EXPECT_NE((*deployment)->PlacementOf(id), nullptr);
  }
}

TEST_F(DeployTest, ColocationHintLandsSameRack) {
  auto deployment = cloud_->Deploy(tenant_, *spec_);
  ASSERT_TRUE(deployment.ok());
  const Placement* a1 = (*deployment)->PlacementOf(spec_->graph.IdOf("A1"));
  const Placement* a2 = (*deployment)->PlacementOf(spec_->graph.IdOf("A2"));
  EXPECT_EQ(a1->rack, a2->rack);
  // Affinity: A3 near S1.
  const Placement* a3 = (*deployment)->PlacementOf(spec_->graph.IdOf("A3"));
  const Placement* s1 = (*deployment)->PlacementOf(spec_->graph.IdOf("S1"));
  EXPECT_EQ(a3->rack, s1->rack);
}

TEST_F(DeployTest, GpuModulesGetGpuSlices) {
  auto deployment = cloud_->Deploy(tenant_, *spec_);
  ASSERT_TRUE(deployment.ok());
  const ResourceVector a2 =
      (*deployment)->ResourcesOf(spec_->graph.IdOf("A2"));
  EXPECT_EQ(a2.Get(ResourceKind::kGpu), 1000);
  // Exactly what was asked — no instance-shaped bundle.
  EXPECT_LE(a2.Get(ResourceKind::kCpu), 1000);
}

TEST_F(DeployTest, ReplicationPlacesDistinctDevices) {
  auto deployment = cloud_->Deploy(tenant_, *spec_);
  ASSERT_TRUE(deployment.ok());
  const Placement* s1 = (*deployment)->PlacementOf(spec_->graph.IdOf("S1"));
  ASSERT_EQ(s1->replica_devices.size(), 3u);
  EXPECT_NE(s1->replica_devices[0], s1->replica_devices[1]);
  EXPECT_NE(s1->replica_devices[1], s1->replica_devices[2]);
  EXPECT_EQ(s1->storage_medium, ResourceKind::kSsd);
  EXPECT_EQ(s1->effective_consistency, ConsistencyLevel::kSequential);
  EXPECT_NE((*deployment)->StoreOf(spec_->graph.IdOf("S1")), nullptr);
}

TEST_F(DeployTest, SingleTenantModulesGetExclusiveDevices) {
  auto deployment = cloud_->Deploy(tenant_, *spec_);
  ASSERT_TRUE(deployment.ok());
  const Placement* a4 = (*deployment)->PlacementOf(spec_->graph.IdOf("A4"));
  const ResourceUnit* unit = (*deployment)->FindUnit(a4->unit);
  const DeviceId cpu_device = unit->PrimaryDevice(ResourceKind::kCpu);
  const Device* device =
      cloud_->datacenter().pool(DeviceKind::kCpuBlade).FindDevice(cpu_device);
  ASSERT_NE(device, nullptr);
  EXPECT_TRUE(device->exclusive());
  EXPECT_EQ(device->exclusive_tenant(), tenant_);
}

TEST_F(DeployTest, TeeIfCpuSelectsEnclaveOnCpu) {
  auto deployment = cloud_->Deploy(tenant_, *spec_);
  ASSERT_TRUE(deployment.ok());
  // A4 asked for CPU explicitly with tee_if_cpu -> enclave.
  const Placement* a4 = (*deployment)->PlacementOf(spec_->graph.IdOf("A4"));
  EXPECT_EQ(a4->env_kind, EnvKind::kTeeEnclave);
  // A2 is on GPU without TEE-GPU support -> not an enclave.
  const Placement* a2 = (*deployment)->PlacementOf(spec_->graph.IdOf("A2"));
  EXPECT_NE(a2->env_kind, EnvKind::kTeeEnclave);
}

TEST_F(DeployTest, TeardownReleasesEverything) {
  {
    auto deployment = cloud_->Deploy(tenant_, *spec_);
    ASSERT_TRUE(deployment.ok());
    EXPECT_FALSE(cloud_->datacenter().TotalAllocated().IsZero());
  }  // destructor tears down
  EXPECT_TRUE(cloud_->datacenter().TotalAllocated().IsZero());
}

TEST_F(DeployTest, InsufficientCapacityRollsBack) {
  UdcCloudConfig tiny;
  tiny.datacenter.racks = 1;
  tiny.datacenter.rack.gpu_boards = 0;  // medical needs GPUs
  UdcCloud small(tiny);
  const TenantId t = small.RegisterTenant("h");
  auto deployment = small.Deploy(t, *spec_);
  EXPECT_FALSE(deployment.ok());
  EXPECT_TRUE(small.datacenter().TotalAllocated().IsZero());
}

TEST_F(DeployTest, ConflictRejectPolicySurfacesConflict) {
  UdcCloudConfig config;
  config.scheduler.conflict_policy = ConflictPolicy::kReject;
  UdcCloud strict(config);
  const TenantId t = strict.RegisterTenant("h");
  // Two tasks accessing one data module with different explicit levels.
  const auto spec = ParseAppSpec(R"(
app conflict
data D size=1GiB
task R work=10
task W work=10
edge D -> R
edge W -> D
aspect R dist consistency=sequential
aspect W dist consistency=release
aspect D dist replication=2
)");
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  const auto deployment = strict.Deploy(t, *spec);
  ASSERT_FALSE(deployment.ok());
  EXPECT_EQ(deployment.status().code(), StatusCode::kConflict);
  // Default policy resolves to the strictest level instead.
  auto resolved = cloud_->Deploy(tenant_, *spec);
  ASSERT_TRUE(resolved.ok());
  EXPECT_EQ((*resolved)->PlacementOf(spec->graph.IdOf("D"))->effective_consistency,
            ConsistencyLevel::kSequential);
}

class RuntimeTest : public DeployTest {
 protected:
  RuntimeTest() {
    auto deployment = cloud_->Deploy(tenant_, *spec_);
    EXPECT_TRUE(deployment.ok());
    deployment_ = std::move(*deployment);
    runtime_ = std::make_unique<DagRuntime>(cloud_->sim(), deployment_.get());
  }
  std::unique_ptr<Deployment> deployment_;
  std::unique_ptr<DagRuntime> runtime_;
};

TEST_F(RuntimeTest, RunOnceProducesOrderedStages) {
  const auto report = runtime_->RunOnce();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->stages.size(), 6u);
  EXPECT_GT(report->end_to_end, SimTime(0));
  // DAG order: A1 finishes before A2 starts, A2/A3 before A4.
  const StageStats* a1 = report->StageOf("A1");
  const StageStats* a2 = report->StageOf("A2");
  const StageStats* a4 = report->StageOf("A4");
  ASSERT_NE(a1, nullptr);
  ASSERT_NE(a2, nullptr);
  ASSERT_NE(a4, nullptr);
  EXPECT_LE(a1->finish, a2->start);
  EXPECT_LE(a2->finish, a4->start);
  EXPECT_GE(report->resource_cost.micro_usd(), 0);
}

TEST_F(RuntimeTest, GpuStageComputesFasterThanItWouldOnCpu) {
  const auto report = runtime_->RunOnce();
  ASSERT_TRUE(report.ok());
  const StageStats* a2 = report->StageOf("A2");  // 30000 units on GPU
  ASSERT_NE(a2, nullptr);
  EXPECT_EQ(a2->compute_kind, ResourceKind::kGpu);
  // On a reference core 30000 units would be 30ms; the GPU slice must beat it.
  EXPECT_LT(a2->compute_time, SimTime::Millis(30));
}

TEST_F(RuntimeTest, ProtectionAddsCryptoTime) {
  // B1 reads S1 (encrypted+integrity) and S2 (encrypted+integrity):
  // its input time must exceed the bare transfer time.
  const auto report = runtime_->RunOnce();
  ASSERT_TRUE(report.ok());
  const StageStats* b1 = report->StageOf("B1");
  ASSERT_NE(b1, nullptr);
  EXPECT_GT(b1->input_time, SimTime(0));
}

TEST_F(RuntimeTest, CheckpointRecoveryBeatsReexecuteForLateFailures) {
  CheckpointStore checkpoints;
  const ModuleId a3 = spec_->graph.IdOf("A3");  // checkpointing enabled
  const auto with_ckpt =
      runtime_->SimulateFailure(a3, /*fail_fraction=*/0.9,
                                /*checkpoint_interval_fraction=*/0.2,
                                &checkpoints);
  ASSERT_TRUE(with_ckpt.ok()) << with_ckpt.status().ToString();

  // Compare against a clone of the module under re-execute handling: B1 has
  // no checkpointing; approximate by comparing to analytic re-execute cost.
  const auto stage = runtime_->ComputeStage(a3);
  ASSERT_TRUE(stage.ok());
  const SimTime reexec = Scale(stage->compute_time, 0.9) +
                         EnvProfile::DefaultFor(EnvKind::kLightweightVm).cold_start +
                         stage->compute_time;
  EXPECT_LT(*with_ckpt, reexec);
  EXPECT_GT(checkpoints.CountFor(a3), 0u);
}

TEST_F(RuntimeTest, FailFractionValidated) {
  CheckpointStore checkpoints;
  EXPECT_FALSE(runtime_
                   ->SimulateFailure(spec_->graph.IdOf("A3"), 1.5, 0.2,
                                     &checkpoints)
                   .ok());
}

TEST_F(RuntimeTest, TunerGrowsHotModules) {
  AdaptiveTuner tuner(cloud_->sim(), deployment_.get());
  const ModuleId a4 = spec_->graph.IdOf("A4");
  const int64_t before =
      deployment_->ResourcesOf(a4).Get(ResourceKind::kCpu);
  for (int i = 0; i < 5; ++i) {
    const auto action = tuner.Observe(a4, 0.97);
    ASSERT_TRUE(action.ok()) << action.status().ToString();
  }
  const int64_t after = deployment_->ResourcesOf(a4).Get(ResourceKind::kCpu);
  EXPECT_GT(after, before);
  EXPECT_GT(tuner.resizes(), 0);
}

TEST_F(RuntimeTest, TunerShrinksColdModules) {
  AdaptiveTuner tuner(cloud_->sim(), deployment_.get());
  const ModuleId b2 = spec_->graph.IdOf("B2");
  const int64_t before =
      deployment_->ResourcesOf(b2).Get(ResourceKind::kCpu);
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(tuner.Observe(b2, 0.05).ok());
  }
  const int64_t after = deployment_->ResourcesOf(b2).Get(ResourceKind::kCpu);
  EXPECT_LT(after, before);
  EXPECT_GE(after, 250);  // floor respected
}


TEST_F(RuntimeTest, TeeGpuSupportEnablesEnclaveOnGpu) {
  // Graviton-style hardware support (sec. 3.3): with TEE-on-GPU available,
  // the provider realizes strong isolation for GPU modules with an enclave
  // instead of falling back to a single-tenant lightweight VM.
  UdcCloudConfig config;
  config.scheduler.tee_gpu_supported = true;
  UdcCloud graviton(config);
  const TenantId t = graviton.RegisterTenant("h");
  auto deployment = graviton.Deploy(t, *spec_);
  ASSERT_TRUE(deployment.ok());
  const Placement* a2 = (*deployment)->PlacementOf(spec_->graph.IdOf("A2"));
  EXPECT_EQ(a2->env_kind, EnvKind::kTeeEnclave);
}

TEST_F(RuntimeTest, BillLinesCoverEveryObject) {
  const Bill bill = cloud_->billing().BillFor(*deployment_, SimTime(0),
                                              SimTime::Hours(1));
  ASSERT_EQ(bill.lines.size(), deployment_->objects().size());
  Money sum;
  for (const BillLine& line : bill.lines) {
    EXPECT_GE(line.amount.micro_usd(), 0);
    sum += line.amount;
  }
  EXPECT_EQ(sum, bill.total);
  EXPECT_NE(bill.Table().find("TOTAL"), std::string::npos);
}

TEST_F(RuntimeTest, VerifierPassesHonestDeployment) {
  const auto report = cloud_->Verify(deployment_.get());
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->all_ok) << report->Table();
  // Strong-isolation modules got their environments checked.
  bool a4_env_checked = false;
  for (const auto& v : report->modules) {
    if (v.name == "A4") {
      a4_env_checked = v.env_checked;
      EXPECT_TRUE(v.env_ok);
    }
    if (v.name == "S1") {
      EXPECT_TRUE(v.replication_checked);
      EXPECT_TRUE(v.replication_ok);
    }
    if (v.name == "B2") {
      EXPECT_FALSE(v.env_checked);  // weak isolation: trust the provider
    }
  }
  EXPECT_TRUE(a4_env_checked);
}

TEST_F(RuntimeTest, VerifierDetectsIsolationDowngrade) {
  // Sabotage: replace A4's environment with a shared container (what a
  // cheating provider would do to save cost).
  const Placement* a4 = deployment_->PlacementOf(spec_->graph.IdOf("A4"));
  ResourceUnit* unit = deployment_->FindUnit(a4->unit);
  LaunchOptions cheap;
  cheap.kind = EnvKind::kContainer;
  cheap.tenancy = TenancyMode::kShared;
  unit->env = cloud_->envs().Launch(tenant_, a4->home, cheap, nullptr);
  cloud_->sim()->RunToCompletion();

  const auto report = cloud_->Verify(deployment_.get());
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->all_ok);
  for (const auto& v : report->modules) {
    if (v.name == "A4") {
      EXPECT_TRUE(v.env_checked);
      EXPECT_FALSE(v.env_ok);
    }
  }
}

TEST_F(RuntimeTest, BillingScalesWithTimeAndPremiums) {
  BillingEngine billing(cloud_->sim(), cloud_->prices());
  const Bill hour = billing.BillFor(*deployment_, SimTime(0), SimTime::Hours(1));
  const Bill two = billing.BillFor(*deployment_, SimTime(0), SimTime::Hours(2));
  EXPECT_GT(hour.total.micro_usd(), 0);
  EXPECT_NEAR(static_cast<double>(two.total.micro_usd()),
              2.0 * static_cast<double>(hour.total.micro_usd()),
              static_cast<double>(hour.total.micro_usd()) * 0.01);
  EXPECT_EQ(hour.lines.size(), 10u);
  // The multiplier raises the bill proportionally.
  BillingConfig pricier;
  pricier.unit_price_multiplier = 1.3;
  BillingEngine expensive(cloud_->sim(), cloud_->prices(), pricier);
  const Bill dearer =
      expensive.BillFor(*deployment_, SimTime(0), SimTime::Hours(1));
  EXPECT_GT(dearer.total, hour.total);
}

}  // namespace
}  // namespace udc
