#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/crypto/cipher.h"
#include "src/crypto/hmac.h"
#include "src/crypto/merkle.h"
#include "src/crypto/sha256.h"

namespace udc {
namespace {

// FIPS 180-4 / NIST test vectors.
TEST(Sha256Test, EmptyString) {
  EXPECT_EQ(DigestToHex(Sha256::Hash(std::string_view())),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256Test, Abc) {
  EXPECT_EQ(DigestToHex(Sha256::Hash("abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256Test, TwoBlockMessage) {
  EXPECT_EQ(
      DigestToHex(Sha256::Hash(
          "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")),
      "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256Test, MillionAs) {
  Sha256 h;
  const std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) {
    h.Update(chunk);
  }
  EXPECT_EQ(DigestToHex(h.Finalize()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256Test, IncrementalMatchesOneShot) {
  Sha256 h;
  h.Update("hello ");
  h.Update("world");
  EXPECT_EQ(DigestToHex(h.Finalize()), DigestToHex(Sha256::Hash("hello world")));
}

TEST(Sha256Test, BoundaryLengths) {
  // 55/56/63/64/65 bytes cross the padding boundaries.
  for (size_t len : {55u, 56u, 63u, 64u, 65u}) {
    const std::string msg(len, 'x');
    Sha256 incremental;
    for (char c : msg) {
      incremental.Update(std::string_view(&c, 1));
    }
    EXPECT_EQ(DigestToHex(incremental.Finalize()),
              DigestToHex(Sha256::Hash(msg)))
        << "len=" << len;
  }
}

TEST(Sha256Test, DigestEqualConstantScan) {
  const Sha256Digest a = Sha256::Hash("a");
  Sha256Digest b = a;
  EXPECT_TRUE(DigestEqual(a, b));
  b[31] ^= 1;
  EXPECT_FALSE(DigestEqual(a, b));
}

// RFC 4231 test case 2 (key "Jefe" is shorter than block; our API uses
// fixed 32-byte keys, so we verify against a locally-computed reference of
// the same construction instead: determinism + key separation).
TEST(HmacTest, DeterministicAndKeySeparated) {
  const Key256 k1 = KeyFromString("key-one");
  const Key256 k2 = KeyFromString("key-two");
  const Sha256Digest m1 = HmacSha256(k1, "message");
  const Sha256Digest m1_again = HmacSha256(k1, "message");
  const Sha256Digest m2 = HmacSha256(k2, "message");
  EXPECT_TRUE(DigestEqual(m1, m1_again));
  EXPECT_FALSE(DigestEqual(m1, m2));
  EXPECT_FALSE(DigestEqual(m1, HmacSha256(k1, "messagf")));
}

TEST(HmacTest, DeriveKeyBindsLabel) {
  const Key256 parent = KeyFromString("parent");
  const Key256 a = DeriveKey(parent, "child-a");
  const Key256 b = DeriveKey(parent, "child-b");
  EXPECT_NE(a, b);
  EXPECT_EQ(a, DeriveKey(parent, "child-a"));
}

TEST(AeadTest, RoundTrips) {
  const AeadCipher cipher(KeyFromString("k"));
  const std::vector<uint8_t> plain{'s', 'e', 'c', 'r', 'e', 't'};
  const SealedBox box = cipher.Seal(plain, /*nonce=*/1);
  EXPECT_NE(box.ciphertext, plain);  // actually encrypted
  const auto out = cipher.Open(box);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(*out, plain);
}

TEST(AeadTest, DetectsTamper) {
  const AeadCipher cipher(KeyFromString("k"));
  const std::vector<uint8_t> plain{1, 2, 3, 4};
  SealedBox box = cipher.Seal(plain, 1);
  box.ciphertext[0] ^= 0xFF;
  const auto out = cipher.Open(box);
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), StatusCode::kVerificationFailed);
}

TEST(AeadTest, DetectsNonceTamper) {
  const AeadCipher cipher(KeyFromString("k"));
  SealedBox box = cipher.Seal(std::vector<uint8_t>{9}, 1);
  box.nonce = 2;  // replay under a different sequence number
  EXPECT_FALSE(cipher.Open(box).ok());
}

TEST(AeadTest, WrongKeyFails) {
  const AeadCipher alice(KeyFromString("alice"));
  const AeadCipher mallory(KeyFromString("mallory"));
  const SealedBox box = alice.Seal(std::vector<uint8_t>{7}, 1);
  EXPECT_FALSE(mallory.Open(box).ok());
}

TEST(AeadTest, EmptyPlaintext) {
  const AeadCipher cipher(KeyFromString("k"));
  const SealedBox box = cipher.Seal({}, 5);
  const auto out = cipher.Open(box);
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(out->empty());
}

TEST(ReplayGuardTest, RejectsReplayAndReorder) {
  ReplayGuard guard;
  EXPECT_TRUE(guard.Accept(1));
  EXPECT_TRUE(guard.Accept(2));
  EXPECT_FALSE(guard.Accept(2));  // replay
  EXPECT_FALSE(guard.Accept(1));  // reorder
  EXPECT_TRUE(guard.Accept(10));
}

TEST(MerkleTest, SingleLeaf) {
  const Sha256Digest leaf = Sha256::Hash("only");
  MerkleTree tree({leaf});
  EXPECT_TRUE(DigestEqual(tree.root(), leaf));
  const auto proof = tree.ProveLeaf(0);
  ASSERT_TRUE(proof.ok());
  EXPECT_TRUE(MerkleTree::VerifyProof(tree.root(), leaf, *proof));
}

TEST(MerkleTest, RejectsOutOfRange) {
  MerkleTree tree({Sha256::Hash("x")});
  EXPECT_FALSE(tree.ProveLeaf(1).ok());
}

TEST(MerkleTest, EmptyTreeHasConventionalRoot) {
  MerkleTree tree(std::vector<Sha256Digest>{});
  EXPECT_EQ(tree.leaf_count(), 1u);
}

class MerkleSizeTest : public ::testing::TestWithParam<int> {};

TEST_P(MerkleSizeTest, AllProofsVerifyAndTamperFails) {
  const int n = GetParam();
  std::vector<std::vector<uint8_t>> chunks;
  for (int i = 0; i < n; ++i) {
    chunks.push_back({static_cast<uint8_t>(i), static_cast<uint8_t>(i * 7)});
  }
  const MerkleTree tree = MerkleTree::FromChunks(chunks);
  for (int i = 0; i < n; ++i) {
    const Sha256Digest leaf = Sha256::Hash(
        std::span<const uint8_t>(chunks[static_cast<size_t>(i)].data(),
                                 chunks[static_cast<size_t>(i)].size()));
    const auto proof = tree.ProveLeaf(static_cast<uint64_t>(i));
    ASSERT_TRUE(proof.ok());
    EXPECT_TRUE(MerkleTree::VerifyProof(tree.root(), leaf, *proof))
        << "leaf " << i << " of " << n;
    // A tampered leaf must not verify.
    Sha256Digest bad = leaf;
    bad[0] ^= 1;
    EXPECT_FALSE(MerkleTree::VerifyProof(tree.root(), bad, *proof));
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, MerkleSizeTest,
                         ::testing::Values(1, 2, 3, 4, 5, 7, 8, 9, 16, 31, 33));

}  // namespace
}  // namespace udc
