#include <gtest/gtest.h>

#include "src/dist/checkpoint.h"
#include "src/dist/consistency.h"
#include "src/dist/failure_domain.h"
#include "src/dist/replication.h"

namespace udc {
namespace {

TEST(ConsistencyTest, StrictestIsLatticeJoin) {
  EXPECT_EQ(Strictest({ConsistencyLevel::kEventual, ConsistencyLevel::kRelease,
                       ConsistencyLevel::kSequential}),
            ConsistencyLevel::kSequential);
  EXPECT_EQ(Strictest({ConsistencyLevel::kEventual}),
            ConsistencyLevel::kEventual);
}

TEST(ConsistencyTest, StrictestWinsResolvesSilently) {
  const auto r = ResolveConsistency(
      {ConsistencyLevel::kSequential, ConsistencyLevel::kRelease},
      ConflictPolicy::kStrictestWins);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->level, ConsistencyLevel::kSequential);
  EXPECT_TRUE(r->had_conflict);
}

TEST(ConsistencyTest, RejectPolicyReturnsConflict) {
  const auto r = ResolveConsistency(
      {ConsistencyLevel::kSequential, ConsistencyLevel::kRelease},
      ConflictPolicy::kReject);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kConflict);
}

TEST(ConsistencyTest, AgreementIsNotAConflict) {
  const auto r = ResolveConsistency(
      {ConsistencyLevel::kCausal, ConsistencyLevel::kCausal},
      ConflictPolicy::kReject);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r->had_conflict);
}

TEST(ConsistencyTest, EmptyAccessorsRejected) {
  EXPECT_FALSE(ResolveConsistency({}, ConflictPolicy::kStrictestWins).ok());
}

TEST(ConsistencyTest, NamesRoundTrip) {
  for (int i = 0; i <= static_cast<int>(ConsistencyLevel::kLinearizable); ++i) {
    const auto level = static_cast<ConsistencyLevel>(i);
    ConsistencyLevel parsed;
    ASSERT_TRUE(ParseConsistencyLevel(ConsistencyLevelName(level), &parsed));
    EXPECT_EQ(parsed, level);
  }
}

class ReplicationTest : public ::testing::Test {
 protected:
  ReplicationTest() : sim_(1) {
    const int r0 = topo_.AddRack();
    const int r1 = topo_.AddRack();
    client_ = topo_.AddNode(r0, NodeRole::kDevice);
    replicas_ = {topo_.AddNode(r0, NodeRole::kDevice),
                 topo_.AddNode(r0, NodeRole::kDevice),
                 topo_.AddNode(r1, NodeRole::kDevice)};
    fabric_ = std::make_unique<Fabric>(&sim_, &topo_);
    sequencer_ = std::make_unique<SwitchSequencer>(&sim_, fabric_.get(),
                                                   topo_.TorSwitch(r0));
  }

  ReplicatedStore MakeStore(ReplicationProtocol protocol, int factor,
                            ConsistencyLevel level = ConsistencyLevel::kSequential,
                            AccessPreference pref = AccessPreference::kNone) {
    ReplicationConfig config;
    config.protocol = protocol;
    config.replication_factor = factor;
    config.consistency = level;
    config.preference = pref;
    sequencer_->SetGroup("store", replicas_);
    return ReplicatedStore(&sim_, fabric_.get(), &topo_, "store", replicas_,
                           config, sequencer_.get());
  }

  Simulation sim_;
  Topology topo_;
  NodeId client_;
  std::vector<NodeId> replicas_;
  std::unique_ptr<Fabric> fabric_;
  std::unique_ptr<SwitchSequencer> sequencer_;
};

TEST_F(ReplicationTest, WriteCompletesOnSimClock) {
  ReplicatedStore store = MakeStore(ReplicationProtocol::kPrimaryBackup, 3);
  SimTime done_at;
  store.Write(client_, Bytes::KiB(64), [&](OpResult r) {
    done_at = sim_.now();
    EXPECT_EQ(r.latency, done_at);
  });
  sim_.RunToCompletion();
  EXPECT_GT(done_at, SimTime(0));
  EXPECT_EQ(store.writes(), 1u);
}

TEST_F(ReplicationTest, InNetworkBeatsPrimaryBackup) {
  ReplicatedStore pb = MakeStore(ReplicationProtocol::kPrimaryBackup, 3);
  ReplicatedStore in_net = MakeStore(ReplicationProtocol::kInNetwork, 3);
  const OpResult pb_plan = pb.PlanWrite(client_, Bytes::KiB(64));
  const OpResult in_plan = in_net.PlanWrite(client_, Bytes::KiB(64));
  EXPECT_LT(in_plan.latency, pb_plan.latency);
}

TEST_F(ReplicationTest, QuorumFasterThanWriteAll) {
  ReplicatedStore pb = MakeStore(ReplicationProtocol::kPrimaryBackup, 3);
  ReplicatedStore quorum = MakeStore(ReplicationProtocol::kQuorum, 3);
  // Quorum (2 of 3) completes before primary-backup which waits for the
  // cross-rack backup.
  EXPECT_LT(quorum.PlanWrite(client_, Bytes::KiB(64)).latency,
            pb.PlanWrite(client_, Bytes::KiB(64)).latency);
}


TEST_F(ReplicationTest, WeakerConsistencyAcksFaster) {
  // The sec. 3.4 staircase: eventual <= causal <= sequential.
  auto lat = [&](ConsistencyLevel level) {
    ReplicatedStore store =
        MakeStore(ReplicationProtocol::kPrimaryBackup, 3, level);
    return store.PlanWrite(client_, Bytes::KiB(16)).latency;
  };
  EXPECT_LE(lat(ConsistencyLevel::kEventual), lat(ConsistencyLevel::kCausal));
  EXPECT_LT(lat(ConsistencyLevel::kCausal), lat(ConsistencyLevel::kSequential));
  EXPECT_EQ(lat(ConsistencyLevel::kSequential),
            lat(ConsistencyLevel::kLinearizable));
}

TEST_F(ReplicationTest, EventualWritesToNearestReplica) {
  ReplicatedStore store = MakeStore(ReplicationProtocol::kPrimaryBackup, 3,
                                    ConsistencyLevel::kEventual);
  const OpResult plan = store.PlanWrite(client_, Bytes::KiB(4));
  EXPECT_EQ(topo_.RackOf(plan.served_by), topo_.RackOf(client_));
  // Async propagation still costs messages.
  EXPECT_EQ(plan.messages, 2 + 2 * 2);
}

TEST_F(ReplicationTest, ReleaseFenceCostsAFullRound) {
  ReplicatedStore store = MakeStore(ReplicationProtocol::kPrimaryBackup, 3,
                                    ConsistencyLevel::kRelease);
  const SimTime write = store.PlanWrite(client_, Bytes::KiB(16)).latency;
  const SimTime fence =
      store.PlanReleaseFence(client_, Bytes::KiB(64)).latency;
  EXPECT_GT(fence, write);  // the deferred synchronization is the expensive part
  // Fence equals a sequential write of the pending bytes.
  ReplicatedStore seq = MakeStore(ReplicationProtocol::kPrimaryBackup, 3,
                                  ConsistencyLevel::kSequential);
  EXPECT_EQ(fence, seq.PlanWrite(client_, Bytes::KiB(64)).latency);
}

TEST_F(ReplicationTest, MoreReplicasCostMoreMessages) {
  ReplicatedStore r1 = MakeStore(ReplicationProtocol::kPrimaryBackup, 1);
  ReplicatedStore r3 = MakeStore(ReplicationProtocol::kPrimaryBackup, 3);
  // Single replica store uses only its first replica.
  ReplicationConfig config;
  config.replication_factor = 1;
  ReplicatedStore single(&sim_, fabric_.get(), &topo_, "single",
                         {replicas_[0]}, config);
  EXPECT_LT(single.PlanWrite(client_, Bytes::KiB(4)).messages,
            r3.PlanWrite(client_, Bytes::KiB(4)).messages);
}

TEST_F(ReplicationTest, ReaderPreferenceServesClosestReplica) {
  ReplicatedStore store =
      MakeStore(ReplicationProtocol::kPrimaryBackup, 3,
                ConsistencyLevel::kSequential, AccessPreference::kReader);
  const OpResult plan = store.PlanRead(client_, Bytes::KiB(16));
  // Closest replica is in the client's rack.
  EXPECT_EQ(topo_.RackOf(plan.served_by), topo_.RackOf(client_));
}

TEST_F(ReplicationTest, SequentialWithoutPreferenceReadsPrimary) {
  ReplicatedStore store = MakeStore(ReplicationProtocol::kPrimaryBackup, 3);
  EXPECT_EQ(store.PlanRead(client_, Bytes::KiB(16)).served_by, replicas_[0]);
}

TEST_F(ReplicationTest, FailoverPromotesNextReplica) {
  ReplicatedStore store = MakeStore(ReplicationProtocol::kPrimaryBackup, 3);
  store.MarkReplicaFailed(replicas_[0]);
  EXPECT_EQ(store.HealthyCount(), 2u);
  const OpResult plan = store.PlanWrite(client_, Bytes::KiB(4));
  EXPECT_EQ(plan.served_by, replicas_[1]);
  EXPECT_LT(plan.latency, SimTime::Max());
  store.MarkReplicaRecovered(replicas_[0]);
  EXPECT_EQ(store.PlanWrite(client_, Bytes::KiB(4)).served_by, replicas_[0]);
}

TEST_F(ReplicationTest, QuorumSurvivesMinorityFailure) {
  ReplicatedStore store = MakeStore(ReplicationProtocol::kQuorum, 3);
  store.MarkReplicaFailed(replicas_[2]);
  EXPECT_LT(store.PlanWrite(client_, Bytes::KiB(4)).latency, SimTime::Max());
  store.MarkReplicaFailed(replicas_[1]);
  EXPECT_EQ(store.PlanWrite(client_, Bytes::KiB(4)).latency, SimTime::Max());
}

TEST_F(ReplicationTest, AllReplicasDownMeansUnavailable) {
  ReplicatedStore store = MakeStore(ReplicationProtocol::kPrimaryBackup, 3);
  for (NodeId r : replicas_) {
    store.MarkReplicaFailed(r);
  }
  EXPECT_EQ(store.PlanRead(client_, Bytes::KiB(1)).latency, SimTime::Max());
  EXPECT_EQ(store.PlanWrite(client_, Bytes::KiB(1)).latency, SimTime::Max());
}

TEST(FailureDomainTest, ModulesCoFailWithinDomain) {
  DomainManager manager;
  const auto d = manager.CreateDomain("front", 2, FailureHandling::kReexecute);
  ASSERT_TRUE(d.ok());
  ASSERT_TRUE(manager.AddModule(*d, ModuleId(1)).ok());
  ASSERT_TRUE(manager.AddModule(*d, ModuleId(2)).ok());
  const auto cofail = manager.CoFailing(ModuleId(1));
  EXPECT_EQ(cofail.size(), 2u);
  EXPECT_EQ(manager.DomainOf(ModuleId(2))->name, "front");
  // A module outside any domain co-fails only with itself.
  EXPECT_EQ(manager.CoFailing(ModuleId(99)).size(), 1u);
}

TEST(FailureDomainTest, ModuleBelongsToOneDomain) {
  DomainManager manager;
  const auto d1 = manager.CreateDomain("a", 1, FailureHandling::kReexecute);
  const auto d2 = manager.CreateDomain("b", 1, FailureHandling::kFailover);
  ASSERT_TRUE(manager.AddModule(*d1, ModuleId(1)).ok());
  EXPECT_EQ(manager.AddModule(*d2, ModuleId(1)).code(),
            StatusCode::kAlreadyExists);
}

TEST(FailureDomainTest, InvalidReplicationRejected) {
  DomainManager manager;
  EXPECT_FALSE(manager.CreateDomain("x", 0, FailureHandling::kReexecute).ok());
}

TEST(CheckpointTest, SaveAndRestoreLatest) {
  CheckpointStore store;
  store.Save(ModuleId(1), SimTime::Millis(1), 10, {1, 2, 3});
  store.Save(ModuleId(1), SimTime::Millis(2), 20, {4, 5, 6});
  const auto cp = store.RestoreLatest(ModuleId(1));
  ASSERT_TRUE(cp.ok());
  EXPECT_EQ(cp->progress, 20u);
  EXPECT_EQ(cp->state, (std::vector<uint8_t>{4, 5, 6}));
  EXPECT_EQ(store.CountFor(ModuleId(1)), 2u);
}

TEST(CheckpointTest, MissingModuleIsNotFound) {
  CheckpointStore store;
  EXPECT_EQ(store.RestoreLatest(ModuleId(9)).status().code(),
            StatusCode::kNotFound);
}

TEST(CheckpointTest, CorruptionDetectedAtRestore) {
  CheckpointStore store;
  store.Save(ModuleId(1), SimTime(0), 5, {9, 9});
  ASSERT_TRUE(store.CorruptLatestForTest(ModuleId(1)));
  EXPECT_EQ(store.RestoreLatest(ModuleId(1)).status().code(),
            StatusCode::kVerificationFailed);
}

TEST(CheckpointTest, DropClearsHistory) {
  CheckpointStore store;
  store.Save(ModuleId(1), SimTime(0), 1, {});
  store.Drop(ModuleId(1));
  EXPECT_EQ(store.CountFor(ModuleId(1)), 0u);
}

}  // namespace
}  // namespace udc
