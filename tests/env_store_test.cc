// Content-addressed warm-environment store (src/exec/env_store.h):
// cross-tenant sharing, tepid cross-rack fetches, eviction under cache
// pressure, exact rollback refunds, and the randomized differential
// against the legacy (kind, tenant) pool.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/attest/attestation_service.h"
#include "src/common/rng.h"
#include "src/exec/env_manager.h"
#include "src/exec/env_store.h"
#include "src/hw/topology.h"
#include "src/sim/simulation.h"

namespace udc {
namespace {

EnvStoreConfig SharedStore() {
  EnvStoreConfig config;
  config.enabled = true;
  config.share_across_tenants = true;
  return config;
}

EnvStoreConfig OracleStore() {
  EnvStoreConfig config;
  config.enabled = true;
  config.share_across_tenants = false;
  return config;
}

LaunchOptions Opts(EnvKind kind, std::string image) {
  LaunchOptions options;
  options.kind = kind;
  options.image = std::move(image);
  return options;
}

TEST(EnvStoreTest, CrossTenantWarmSharingHits) {
  Simulation sim;
  EnvManager manager(&sim, SharedStore());
  const auto options = Opts(EnvKind::kTeeEnclave, "model-server-v3");

  // Tenant 1 runs the image and banks a warm slot on teardown.
  ExecEnvironment* env = manager.Launch(TenantId(1), NodeId(1), options, nullptr);
  sim.RunToCompletion();
  ASSERT_TRUE(manager.Stop(env, /*keep_warm=*/true).ok());

  // Tenant 2 launches the *identical* image: content-keyed sharing turns
  // its cold start into a warm one — the legacy (kind, tenant) pool could
  // never do this.
  const SimTime before = sim.now();
  env = manager.Launch(TenantId(2), NodeId(1), options, nullptr);
  sim.RunToCompletion();
  EXPECT_EQ(env->start_mode(), EnvStartMode::kWarm);
  EXPECT_EQ(env->ready_at() - before,
            EnvProfile::DefaultFor(EnvKind::kTeeEnclave).warm_start);
  EXPECT_EQ(sim.metrics().counter("exec.warm_starts"), 1);
  EXPECT_EQ(sim.metrics().counter("exec.cross_tenant_warm_starts"), 1);
  EXPECT_EQ(manager.cross_tenant_warm_starts(), 1);
}

TEST(EnvStoreTest, DifferentImagesDoNotShareWarmSlots) {
  Simulation sim;
  EnvManager manager(&sim, SharedStore());
  ExecEnvironment* env = manager.Launch(
      TenantId(1), NodeId(1), Opts(EnvKind::kContainer, "img-a"), nullptr);
  sim.RunToCompletion();
  ASSERT_TRUE(manager.Stop(env, /*keep_warm=*/true).ok());

  env = manager.Launch(TenantId(1), NodeId(1),
                       Opts(EnvKind::kContainer, "img-b"), nullptr);
  sim.RunToCompletion();
  EXPECT_EQ(env->start_mode(), EnvStartMode::kCold);
  EXPECT_EQ(sim.metrics().counter("exec.cold_starts"), 2);
}

TEST(EnvStoreTest, SharingOffPreservesTenantScoping) {
  Simulation sim;
  EnvManager manager(&sim, OracleStore());
  const auto options = Opts(EnvKind::kContainer, "same-image");
  ExecEnvironment* env = manager.Launch(TenantId(1), NodeId(1), options, nullptr);
  sim.RunToCompletion();
  ASSERT_TRUE(manager.Stop(env, /*keep_warm=*/true).ok());

  // Identical image, different tenant: with sharing off the key binds the
  // tenant, so this must stay cold — exactly the legacy pool's decision.
  env = manager.Launch(TenantId(2), NodeId(1), options, nullptr);
  sim.RunToCompletion();
  EXPECT_EQ(env->start_mode(), EnvStartMode::kCold);
  EXPECT_EQ(manager.WarmSlots(EnvKind::kContainer, TenantId(1)), 1);
}

TEST(EnvStoreTest, ContentQuoteMintedExactlyOncePerContent) {
  Simulation sim;
  AttestationService attestation(&sim, KeyFromString("vendor"));
  EnvManager manager(&sim, SharedStore());
  manager.set_content_quote_hook(
      [&](const Sha256Digest& digest, Bytes size, bool live) {
        if (live) {
          attestation.AcquireImageQuote(digest, size);
        } else {
          attestation.ReleaseImageQuote(digest);
        }
      });
  const auto options = Opts(EnvKind::kTeeEnclave, "audited-model");

  // Two tenants, same content: one quote, minted on the first launch.
  ExecEnvironment* e1 = manager.Launch(TenantId(1), NodeId(1), options, nullptr);
  ExecEnvironment* e2 = manager.Launch(TenantId(2), NodeId(2), options, nullptr);
  sim.RunToCompletion();
  EXPECT_EQ(attestation.image_quotes_minted(), 1u);
  EXPECT_EQ(attestation.live_image_quotes(), 1u);
  EXPECT_EQ(sim.metrics().counter("attest.image_quotes_minted"), 1);

  const Sha256Digest digest = manager.store()->KeyDigest(
      EnvKind::kTeeEnclave, TenancyMode::kShared, TenantId(1), "audited-model");
  const Quote* quote = attestation.FindImageQuote(digest);
  ASSERT_NE(quote, nullptr);
  EXPECT_EQ(quote->subject, QuoteSubject::kImage);
  // The quote binds the content digest, not any tenant — verifiable with
  // only the vendor root.
  QuoteVerifier verifier(KeyFromString("vendor"));
  EXPECT_TRUE(verifier.Verify(*quote).ok());
  const Bytes size = EnvProfile::DefaultFor(EnvKind::kTeeEnclave).memory_overhead;
  EXPECT_TRUE(verifier
                  .VerifyClaim(*quote,
                               ImageReport(digest,
                                           static_cast<uint64_t>(size.bytes())))
                  .ok());

  // Full teardown releases the refs; the mint count never moves again.
  ASSERT_TRUE(manager.Stop(e1, /*keep_warm=*/false).ok());
  ASSERT_TRUE(manager.Stop(e2, /*keep_warm=*/false).ok());
  EXPECT_EQ(attestation.live_image_quotes(), 0u);
  manager.Launch(TenantId(3), NodeId(1), options, nullptr);
  sim.RunToCompletion();
  EXPECT_EQ(attestation.image_quotes_minted(), 1u);  // memoized, not re-minted
  EXPECT_EQ(attestation.live_image_quotes(), 1u);
}

TEST(EnvStoreTest, TepidFetchAcrossRacks) {
  Simulation sim;
  Topology topology;
  const int rack0 = topology.AddRack();
  const int rack1 = topology.AddRack();
  const NodeId node0 = topology.AddNode(rack0, NodeRole::kDevice);
  const NodeId node1 = topology.AddNode(rack1, NodeRole::kDevice);

  EnvManager manager(&sim, SharedStore());
  manager.set_topology(&topology);
  const auto options = Opts(EnvKind::kTeeEnclave, "rack-local-model");

  // Bank a warm slot on rack 0.
  ExecEnvironment* env = manager.Launch(TenantId(1), node0, options, nullptr);
  sim.RunToCompletion();
  ASSERT_TRUE(manager.Stop(env, /*keep_warm=*/true).ok());

  // Launch on rack 1: rack miss + remote hit -> tepid. NextStartLatency
  // must predict the same tier Launch then pays.
  const SimTime predicted = manager.NextStartLatency(
      EnvKind::kTeeEnclave, TenantId(2), options, node1);
  const SimTime before = sim.now();
  env = manager.Launch(TenantId(2), node1, options, nullptr);
  sim.RunToCompletion();
  EXPECT_EQ(env->start_mode(), EnvStartMode::kTepid);
  EXPECT_EQ(env->ready_at() - before, predicted);
  const EnvProfile profile = EnvProfile::DefaultFor(EnvKind::kTeeEnclave);
  EXPECT_GT(predicted, profile.warm_start);   // pays the cross-rack fetch
  EXPECT_LT(predicted, profile.cold_start);   // but far below a cold build
  EXPECT_EQ(sim.metrics().counter("exec.tepid_starts"), 1);

  // Fill-on-miss: the image is now resident on both racks, and the bytes
  // were deduped against the content (one logical image, two caches).
  const EnvStore* store = manager.store();
  const Sha256Digest digest = store->KeyDigest(
      EnvKind::kTeeEnclave, TenancyMode::kShared, TenantId(2),
      "rack-local-model");
  EXPECT_EQ(store->TotalSlots(digest), 0);  // the remote slot was consumed
  const auto racks = store->PerRackStats();
  ASSERT_EQ(racks.size(), 2u);
  EXPECT_EQ(racks[0].entries, 1u);
  EXPECT_EQ(racks[1].entries, 1u);
}

TEST(EnvStoreTest, EvictionUnderPressureDropsLruAndItsSlots) {
  Simulation sim;
  EnvStoreConfig config = SharedStore();
  // Room for two 16 MiB container images, not three.
  config.rack_cache_capacity = Bytes::MiB(40);
  EnvManager manager(&sim, config);

  // Bank warm slots for images a then b (a is oldest by LRU tick).
  for (const char* image : {"img-a", "img-b"}) {
    ExecEnvironment* env = manager.Launch(
        TenantId(1), NodeId(1), Opts(EnvKind::kContainer, image), nullptr);
    sim.RunToCompletion();
    ASSERT_TRUE(manager.Stop(env, /*keep_warm=*/true).ok());
  }
  const EnvStore* store = manager.store();
  EXPECT_EQ(store->total_warm_slots(), 2);

  // A third image overflows the rack budget: img-a (LRU) is evicted, its
  // warm slot dies with it, and the counters say so.
  ExecEnvironment* env = manager.Launch(
      TenantId(1), NodeId(1), Opts(EnvKind::kContainer, "img-c"), nullptr);
  sim.RunToCompletion();
  EXPECT_EQ(store->evictions(), 1);
  EXPECT_EQ(sim.metrics().counter("exec.evictions"), 1);
  EXPECT_LE(store->resident_bytes().bytes(), Bytes::MiB(40).bytes());
  EXPECT_EQ(sim.metrics().gauge("exec.store_bytes"),
            static_cast<double>(store->resident_bytes().bytes()));
  const Sha256Digest digest_a = store->KeyDigest(
      EnvKind::kContainer, TenancyMode::kShared, TenantId(1), "img-a");
  const Sha256Digest digest_b = store->KeyDigest(
      EnvKind::kContainer, TenancyMode::kShared, TenantId(1), "img-b");
  EXPECT_EQ(store->TotalSlots(digest_a), 0);  // evicted with its slot
  EXPECT_EQ(store->TotalSlots(digest_b), 1);  // survivor
  EXPECT_EQ(store->total_warm_slots(), 1);

  // A launch of the evicted image is cold again.
  ASSERT_TRUE(manager.Stop(env, /*keep_warm=*/false).ok());
  env = manager.Launch(TenantId(1), NodeId(1),
                       Opts(EnvKind::kContainer, "img-a"), nullptr);
  sim.RunToCompletion();
  EXPECT_EQ(env->start_mode(), EnvStartMode::kCold);
}

TEST(EnvStoreTest, EvictionNeverTakesContentWithLiveEnvironments) {
  Simulation sim;
  EnvStoreConfig config = SharedStore();
  config.rack_cache_capacity = Bytes::MiB(20);  // one container image fits
  EnvManager manager(&sim, config);

  // img-a stays running (pinned); img-b overflows the budget anyway (soft
  // bound) because the only other entry is pinned by a live environment.
  ExecEnvironment* live = manager.Launch(
      TenantId(1), NodeId(1), Opts(EnvKind::kContainer, "img-a"), nullptr);
  sim.RunToCompletion();
  manager.Launch(TenantId(1), NodeId(1), Opts(EnvKind::kContainer, "img-b"),
                 nullptr);
  sim.RunToCompletion();
  const EnvStore* store = manager.store();
  EXPECT_EQ(store->evictions(), 0);  // nothing evictable: both live
  EXPECT_EQ(store->PerRackStats()[0].entries, 2u);

  // Once img-a's env stops cold, the next insert can evict it.
  ASSERT_TRUE(manager.Stop(live, /*keep_warm=*/false).ok());
  manager.Launch(TenantId(1), NodeId(1), Opts(EnvKind::kContainer, "img-c"),
                 nullptr);
  sim.RunToCompletion();
  EXPECT_EQ(store->evictions(), 1);
}

TEST(EnvStoreTest, CancelLaunchRestoresStoreExactly) {
  Simulation sim;
  Topology topology;
  const int rack0 = topology.AddRack();
  const int rack1 = topology.AddRack();
  const NodeId node0 = topology.AddNode(rack0, NodeRole::kDevice);
  const NodeId node1 = topology.AddNode(rack1, NodeRole::kDevice);
  EnvManager manager(&sim, SharedStore());
  manager.set_topology(&topology);
  const auto options = Opts(EnvKind::kTeeEnclave, "rollback-me");
  EnvStore* store = manager.store();
  const Sha256Digest digest = store->KeyDigest(
      EnvKind::kTeeEnclave, TenancyMode::kShared, TenantId(1), "rollback-me");

  // Cold launch + cancel: content refs return to zero.
  ExecEnvironment* env = manager.Launch(TenantId(1), node0, options, nullptr);
  EXPECT_EQ(store->ContentRefs(digest), 1);
  ASSERT_TRUE(manager.CancelLaunch(env).ok());
  EXPECT_EQ(store->ContentRefs(digest), 0);
  EXPECT_EQ(store->live_env_refs(), 0);

  // Bank a slot on rack 0, then warm-launch + cancel: the slot, its rack,
  // its provenance, and the refcount all come back exactly.
  env = manager.Launch(TenantId(1), node0, options, nullptr);
  sim.RunToCompletion();
  ASSERT_TRUE(manager.Stop(env, /*keep_warm=*/true).ok());
  const int64_t slots_before = store->SlotsOnRack(digest, 0);
  const int64_t refs_before = store->ContentRefs(digest);
  env = manager.Launch(TenantId(2), node0, options, nullptr);
  EXPECT_EQ(env->start_mode(), EnvStartMode::kWarm);
  EXPECT_EQ(store->SlotsOnRack(digest, 0), slots_before - 1);
  ASSERT_TRUE(manager.CancelLaunch(env).ok());
  EXPECT_EQ(store->SlotsOnRack(digest, 0), slots_before);
  EXPECT_EQ(store->ContentRefs(digest), refs_before);

  // Tepid launch from rack 1 + cancel: the slot goes back to rack 0 (the
  // source), not rack 1.
  env = manager.Launch(TenantId(2), node1, options, nullptr);
  EXPECT_EQ(env->start_mode(), EnvStartMode::kTepid);
  EXPECT_EQ(store->SlotsOnRack(digest, 0), slots_before - 1);
  ASSERT_TRUE(manager.CancelLaunch(env).ok());
  EXPECT_EQ(store->SlotsOnRack(digest, 0), slots_before);
  EXPECT_EQ(store->SlotsOnRack(digest, 1), 0);
  EXPECT_EQ(store->ContentRefs(digest), refs_before);
  EXPECT_EQ(store->live_env_refs(), 0);
  sim.RunToCompletion();
}

TEST(EnvStoreTest, PrewarmCountsIntoMetrics) {
  // Legacy mode: the satellite fix — Prewarm used to bypass metrics.
  {
    Simulation sim;
    EnvManager manager(&sim);
    manager.Prewarm(EnvKind::kContainer, TenantId(1), 3);
    EXPECT_EQ(sim.metrics().counter("exec.prewarmed"), 3);
  }
  // Store mode: same counter, and the slots bank against the content key.
  {
    Simulation sim;
    EnvManager manager(&sim, SharedStore());
    manager.Prewarm(EnvKind::kTeeEnclave, TenantId(1), 2, "prewarmed-img");
    EXPECT_EQ(sim.metrics().counter("exec.prewarmed"), 2);
    const Sha256Digest digest = manager.store()->KeyDigest(
        EnvKind::kTeeEnclave, TenancyMode::kShared, TenantId(1),
        "prewarmed-img");
    EXPECT_EQ(manager.store()->TotalSlots(digest), 2);
  }
}

TEST(EnvStoreTest, WarmHitRatioGaugeTracksStarts) {
  Simulation sim;
  EnvManager manager(&sim, SharedStore());
  EXPECT_EQ(sim.metrics().gauge("exec.warm_hit_ratio"), 1.0);
  ExecEnvironment* env = manager.Launch(
      TenantId(1), NodeId(1), Opts(EnvKind::kContainer, "img"), nullptr);
  sim.RunToCompletion();
  EXPECT_EQ(sim.metrics().gauge("exec.warm_hit_ratio"), 0.0);
  ASSERT_TRUE(manager.Stop(env, /*keep_warm=*/true).ok());
  manager.Launch(TenantId(1), NodeId(1), Opts(EnvKind::kContainer, "img"),
                 nullptr);
  sim.RunToCompletion();
  EXPECT_EQ(sim.metrics().gauge("exec.warm_hit_ratio"), 0.5);
  EXPECT_EQ(manager.warm_hit_ratio(), 0.5);
}

// The differential the config flag exists for: with sharing off, the store
// must make byte-identical start-latency decisions to the legacy
// (kind, tenant) pool under a randomized launch/stop/cancel/prewarm mix.
TEST(EnvStoreDifferentialTest, SharingOffMatchesLegacyPoolAcrossSeeds) {
  const EnvKind kKinds[] = {EnvKind::kContainer, EnvKind::kLightweightVm,
                           EnvKind::kTeeEnclave};
  for (const uint64_t seed : {0xA11CEull, 0xB0Bull, 0xC0FFEEull}) {
    Simulation legacy_sim;
    EnvManager legacy(&legacy_sim);
    Simulation store_sim;
    EnvManager store(&store_sim, OracleStore());

    Rng rng(seed);
    std::vector<std::pair<ExecEnvironment*, ExecEnvironment*>> live;
    for (int step = 0; step < 400; ++step) {
      const auto kind = kKinds[rng.NextUint64(3)];
      const TenantId tenant(1 + rng.NextUint64(4));
      const uint64_t op = rng.NextUint64(100);
      if (op < 45 || live.empty()) {
        // Distinct images per step: oracle mode must ignore them, exactly
        // like the legacy pool does.
        LaunchOptions options =
            Opts(kind, "img-" + std::to_string(rng.NextUint64(5)));
        const SimTime legacy_next =
            legacy.NextStartLatency(kind, tenant, options);
        const SimTime store_next = store.NextStartLatency(kind, tenant, options);
        ASSERT_EQ(legacy_next, store_next) << "seed " << seed << " step " << step;
        ExecEnvironment* le =
            legacy.Launch(tenant, NodeId(1 + rng.NextUint64(8)), options,
                          nullptr);
        ExecEnvironment* se = store.Launch(tenant, le->node(), options, nullptr);
        ASSERT_EQ(le->start_mode(), se->start_mode())
            << "seed " << seed << " step " << step;
        ASSERT_EQ(le->ready_at(), se->ready_at());
        live.emplace_back(le, se);
      } else if (op < 70) {
        const size_t idx = rng.NextUint64(live.size());
        const bool keep_warm = rng.NextUint64(2) == 0;
        ASSERT_TRUE(legacy.Stop(live[idx].first, keep_warm).ok());
        ASSERT_TRUE(store.Stop(live[idx].second, keep_warm).ok());
        live.erase(live.begin() + static_cast<long>(idx));
      } else if (op < 85) {
        const size_t idx = rng.NextUint64(live.size());
        ASSERT_TRUE(legacy.CancelLaunch(live[idx].first).ok());
        ASSERT_TRUE(store.CancelLaunch(live[idx].second).ok());
        live.erase(live.begin() + static_cast<long>(idx));
      } else {
        const int count = 1 + static_cast<int>(rng.NextUint64(3));
        legacy.Prewarm(kind, tenant, count);
        store.Prewarm(kind, tenant, count);
      }
      if (rng.NextUint64(4) == 0) {
        legacy_sim.RunToCompletion();
        store_sim.RunToCompletion();
      }
      // Occupancy must agree for every (kind, tenant) after every op.
      for (const EnvKind k : kKinds) {
        for (uint64_t t = 1; t <= 4; ++t) {
          ASSERT_EQ(legacy.WarmSlots(k, TenantId(t)),
                    store.WarmSlots(k, TenantId(t)))
              << "seed " << seed << " step " << step;
        }
      }
      ASSERT_EQ(legacy.live_count(), store.live_count());
    }
    legacy_sim.RunToCompletion();
    store_sim.RunToCompletion();
    // Identical decision streams end in identical metric totals.
    EXPECT_EQ(legacy_sim.metrics().counter("exec.warm_starts"),
              store_sim.metrics().counter("exec.warm_starts"));
    EXPECT_EQ(legacy_sim.metrics().counter("exec.cold_starts"),
              store_sim.metrics().counter("exec.cold_starts"));
    EXPECT_EQ(store_sim.metrics().counter("exec.tepid_starts"), 0);
    EXPECT_EQ(store.store()->live_env_refs(),
              static_cast<int64_t>(store.live_count()));
  }
}

}  // namespace
}  // namespace udc
