#include <gtest/gtest.h>

#include "src/exec/env_manager.h"
#include "src/exec/environment.h"
#include "src/sim/simulation.h"

namespace udc {
namespace {

TEST(IsolationTest, LatticeMatchesPaperTaxonomy) {
  // strongest: single-tenant TEE.
  EXPECT_EQ(IsolationOf(EnvKind::kTeeEnclave, TenancyMode::kSingleTenant),
            IsolationLevel::kStrongest);
  EXPECT_EQ(IsolationOf(EnvKind::kTeeVm, TenancyMode::kSingleTenant),
            IsolationLevel::kStrongest);
  // strong: TEE or single-tenant.
  EXPECT_EQ(IsolationOf(EnvKind::kTeeEnclave, TenancyMode::kShared),
            IsolationLevel::kStrong);
  EXPECT_EQ(IsolationOf(EnvKind::kContainer, TenancyMode::kSingleTenant),
            IsolationLevel::kStrong);
  // medium: unikernel / lwVM / sandboxed container.
  EXPECT_EQ(IsolationOf(EnvKind::kUnikernel, TenancyMode::kShared),
            IsolationLevel::kMedium);
  EXPECT_EQ(IsolationOf(EnvKind::kLightweightVm, TenancyMode::kShared),
            IsolationLevel::kMedium);
  EXPECT_EQ(IsolationOf(EnvKind::kSandboxedContainer, TenancyMode::kShared),
            IsolationLevel::kMedium);
  // weak: containers.
  EXPECT_EQ(IsolationOf(EnvKind::kContainer, TenancyMode::kShared),
            IsolationLevel::kWeak);
}

TEST(IsolationTest, OnlyStrongLevelsAreUserVerifiable) {
  EXPECT_FALSE(UserVerifiable(IsolationLevel::kWeak));
  EXPECT_FALSE(UserVerifiable(IsolationLevel::kMedium));
  EXPECT_TRUE(UserVerifiable(IsolationLevel::kStrong));
  EXPECT_TRUE(UserVerifiable(IsolationLevel::kStrongest));
}

TEST(IsolationTest, ProviderChoiceAvoidsEnclaveForGpuWithoutSupport) {
  EXPECT_EQ(ProviderChoiceFor(IsolationLevel::kStrong, /*needs_gpu=*/true,
                              /*tee_gpu_supported=*/false),
            EnvKind::kLightweightVm);
  EXPECT_EQ(ProviderChoiceFor(IsolationLevel::kStrong, /*needs_gpu=*/true,
                              /*tee_gpu_supported=*/true),
            EnvKind::kTeeEnclave);
  EXPECT_EQ(ProviderChoiceFor(IsolationLevel::kWeak, false, false),
            EnvKind::kContainer);
}

TEST(IsolationTest, NamesRoundTrip) {
  for (int i = 0; i <= static_cast<int>(IsolationLevel::kStrongest); ++i) {
    const auto level = static_cast<IsolationLevel>(i);
    IsolationLevel parsed;
    ASSERT_TRUE(ParseIsolationLevel(IsolationLevelName(level), &parsed));
    EXPECT_EQ(parsed, level);
  }
}

TEST(EnvProfileTest, SecureEnvironmentsStartSlower) {
  const EnvProfile container = EnvProfile::DefaultFor(EnvKind::kContainer);
  const EnvProfile enclave = EnvProfile::DefaultFor(EnvKind::kTeeEnclave);
  const EnvProfile unikernel = EnvProfile::DefaultFor(EnvKind::kUnikernel);
  EXPECT_GT(enclave.cold_start, container.cold_start);
  EXPECT_LT(unikernel.cold_start, container.cold_start);
  EXPECT_GT(enclave.cpu_overhead, 1.0);
  EXPECT_TRUE(enclave.attestable);
  EXPECT_FALSE(enclave.supports_gpu);
  EXPECT_FALSE(container.attestable);
}

TEST(EnvironmentTest, MeasurementBindsImageAndTenant) {
  ExecEnvironment e1(0, EnvKind::kTeeEnclave, TenancyMode::kSingleTenant,
                     TenantId(1), NodeId(1));
  ExecEnvironment e2(1, EnvKind::kTeeEnclave, TenancyMode::kSingleTenant,
                     TenantId(1), NodeId(1));
  EXPECT_TRUE(DigestEqual(e1.measurement(), e2.measurement()));
  e2.SetImage("other-image");
  EXPECT_FALSE(DigestEqual(e1.measurement(), e2.measurement()));
  ExecEnvironment e3(2, EnvKind::kTeeEnclave, TenancyMode::kSingleTenant,
                     TenantId(2), NodeId(1));
  EXPECT_FALSE(DigestEqual(e1.measurement(), e3.measurement()));
}

TEST(EnvironmentTest, AdjustComputeAppliesOverhead) {
  ExecEnvironment enclave(0, EnvKind::kTeeEnclave, TenancyMode::kShared,
                          TenantId(1), NodeId(1));
  EXPECT_EQ(enclave.AdjustCompute(SimTime::Millis(100)).micros(), 130000);
  ExecEnvironment process(1, EnvKind::kBareProcess, TenancyMode::kShared,
                          TenantId(1), NodeId(1));
  EXPECT_EQ(process.AdjustCompute(SimTime::Millis(100)).micros(), 100000);
}

class EnvManagerTest : public ::testing::Test {
 protected:
  Simulation sim_;
  EnvManager manager_{&sim_};
};

TEST_F(EnvManagerTest, ColdStartChargesProfileLatency) {
  ExecEnvironment* ready_env = nullptr;
  LaunchOptions options;
  options.kind = EnvKind::kContainer;
  ExecEnvironment* env = manager_.Launch(
      TenantId(1), NodeId(1), options,
      [&](ExecEnvironment* e) { ready_env = e; });
  EXPECT_EQ(env->state(), EnvState::kStarting);
  sim_.RunToCompletion();
  EXPECT_EQ(ready_env, env);
  EXPECT_EQ(env->state(), EnvState::kReady);
  EXPECT_EQ(sim_.now(), EnvProfile::DefaultFor(EnvKind::kContainer).cold_start);
  EXPECT_EQ(sim_.metrics().counter("exec.cold_starts"), 1);
}

TEST_F(EnvManagerTest, WarmPoolCutsStartLatency) {
  manager_.Prewarm(EnvKind::kTeeEnclave, TenantId(1), 1);
  LaunchOptions options;
  options.kind = EnvKind::kTeeEnclave;
  manager_.Launch(TenantId(1), NodeId(1), options, nullptr);
  sim_.RunToCompletion();
  EXPECT_EQ(sim_.now(), EnvProfile::DefaultFor(EnvKind::kTeeEnclave).warm_start);
  EXPECT_EQ(sim_.metrics().counter("exec.warm_starts"), 1);
  EXPECT_EQ(manager_.WarmSlots(EnvKind::kTeeEnclave, TenantId(1)), 0);
}

TEST_F(EnvManagerTest, WarmSlotsAreTenantScoped) {
  manager_.Prewarm(EnvKind::kContainer, TenantId(1), 1);
  LaunchOptions options;
  options.kind = EnvKind::kContainer;
  manager_.Launch(TenantId(2), NodeId(1), options, nullptr);  // other tenant
  sim_.RunToCompletion();
  EXPECT_EQ(sim_.metrics().counter("exec.cold_starts"), 1);
  EXPECT_EQ(manager_.WarmSlots(EnvKind::kContainer, TenantId(1)), 1);
}

TEST_F(EnvManagerTest, StopKeepWarmCreditsPool) {
  LaunchOptions options;
  options.kind = EnvKind::kLightweightVm;
  ExecEnvironment* env = manager_.Launch(TenantId(1), NodeId(1), options,
                                         nullptr);
  sim_.RunToCompletion();
  ASSERT_TRUE(manager_.Stop(env, /*keep_warm=*/true).ok());
  EXPECT_EQ(manager_.WarmSlots(EnvKind::kLightweightVm, TenantId(1)), 1);
  EXPECT_FALSE(manager_.Stop(env, true).ok());  // double-stop
  ASSERT_TRUE(manager_.Destroy(env).ok());
}

TEST_F(EnvManagerTest, DestroyRequiresStopped) {
  LaunchOptions options;
  ExecEnvironment* env = manager_.Launch(TenantId(1), NodeId(1), options,
                                         nullptr);
  sim_.RunToCompletion();
  EXPECT_FALSE(manager_.Destroy(env).ok());
  ASSERT_TRUE(manager_.Stop(env, false).ok());
  EXPECT_TRUE(manager_.Destroy(env).ok());
  EXPECT_EQ(manager_.live_count(), 0u);
}

TEST_F(EnvManagerTest, NextStartLatencyPredicts) {
  LaunchOptions options;
  options.kind = EnvKind::kContainer;
  EXPECT_EQ(manager_.NextStartLatency(EnvKind::kContainer, TenantId(1), options),
            EnvProfile::DefaultFor(EnvKind::kContainer).cold_start);
  manager_.Prewarm(EnvKind::kContainer, TenantId(1), 1);
  EXPECT_EQ(manager_.NextStartLatency(EnvKind::kContainer, TenantId(1), options),
            EnvProfile::DefaultFor(EnvKind::kContainer).warm_start);
}

}  // namespace
}  // namespace udc
