#include <gtest/gtest.h>

#include "src/exec/env_manager.h"
#include "src/exec/environment.h"
#include "src/sim/simulation.h"

namespace udc {
namespace {

TEST(IsolationTest, LatticeMatchesPaperTaxonomy) {
  // strongest: single-tenant TEE.
  EXPECT_EQ(IsolationOf(EnvKind::kTeeEnclave, TenancyMode::kSingleTenant),
            IsolationLevel::kStrongest);
  EXPECT_EQ(IsolationOf(EnvKind::kTeeVm, TenancyMode::kSingleTenant),
            IsolationLevel::kStrongest);
  // strong: TEE or single-tenant.
  EXPECT_EQ(IsolationOf(EnvKind::kTeeEnclave, TenancyMode::kShared),
            IsolationLevel::kStrong);
  EXPECT_EQ(IsolationOf(EnvKind::kContainer, TenancyMode::kSingleTenant),
            IsolationLevel::kStrong);
  // medium: unikernel / lwVM / sandboxed container.
  EXPECT_EQ(IsolationOf(EnvKind::kUnikernel, TenancyMode::kShared),
            IsolationLevel::kMedium);
  EXPECT_EQ(IsolationOf(EnvKind::kLightweightVm, TenancyMode::kShared),
            IsolationLevel::kMedium);
  EXPECT_EQ(IsolationOf(EnvKind::kSandboxedContainer, TenancyMode::kShared),
            IsolationLevel::kMedium);
  // weak: containers.
  EXPECT_EQ(IsolationOf(EnvKind::kContainer, TenancyMode::kShared),
            IsolationLevel::kWeak);
}

TEST(IsolationTest, OnlyStrongLevelsAreUserVerifiable) {
  EXPECT_FALSE(UserVerifiable(IsolationLevel::kWeak));
  EXPECT_FALSE(UserVerifiable(IsolationLevel::kMedium));
  EXPECT_TRUE(UserVerifiable(IsolationLevel::kStrong));
  EXPECT_TRUE(UserVerifiable(IsolationLevel::kStrongest));
}

TEST(IsolationTest, ProviderChoiceAvoidsEnclaveForGpuWithoutSupport) {
  EXPECT_EQ(ProviderChoiceFor(IsolationLevel::kStrong, /*needs_gpu=*/true,
                              /*tee_gpu_supported=*/false),
            EnvKind::kLightweightVm);
  EXPECT_EQ(ProviderChoiceFor(IsolationLevel::kStrong, /*needs_gpu=*/true,
                              /*tee_gpu_supported=*/true),
            EnvKind::kTeeEnclave);
  EXPECT_EQ(ProviderChoiceFor(IsolationLevel::kWeak, false, false),
            EnvKind::kContainer);
}

TEST(IsolationTest, NamesRoundTrip) {
  for (int i = 0; i <= static_cast<int>(IsolationLevel::kStrongest); ++i) {
    const auto level = static_cast<IsolationLevel>(i);
    IsolationLevel parsed;
    ASSERT_TRUE(ParseIsolationLevel(IsolationLevelName(level), &parsed));
    EXPECT_EQ(parsed, level);
  }
}

TEST(EnvProfileTest, SecureEnvironmentsStartSlower) {
  const EnvProfile container = EnvProfile::DefaultFor(EnvKind::kContainer);
  const EnvProfile enclave = EnvProfile::DefaultFor(EnvKind::kTeeEnclave);
  const EnvProfile unikernel = EnvProfile::DefaultFor(EnvKind::kUnikernel);
  EXPECT_GT(enclave.cold_start, container.cold_start);
  EXPECT_LT(unikernel.cold_start, container.cold_start);
  EXPECT_GT(enclave.cpu_overhead, 1.0);
  EXPECT_TRUE(enclave.attestable);
  EXPECT_FALSE(enclave.supports_gpu);
  EXPECT_FALSE(container.attestable);
}

TEST(EnvironmentTest, MeasurementBindsImageAndTenant) {
  ExecEnvironment e1(0, EnvKind::kTeeEnclave, TenancyMode::kSingleTenant,
                     TenantId(1), NodeId(1));
  ExecEnvironment e2(1, EnvKind::kTeeEnclave, TenancyMode::kSingleTenant,
                     TenantId(1), NodeId(1));
  EXPECT_TRUE(DigestEqual(e1.measurement(), e2.measurement()));
  e2.SetImage("other-image");
  EXPECT_FALSE(DigestEqual(e1.measurement(), e2.measurement()));
  ExecEnvironment e3(2, EnvKind::kTeeEnclave, TenancyMode::kSingleTenant,
                     TenantId(2), NodeId(1));
  EXPECT_FALSE(DigestEqual(e1.measurement(), e3.measurement()));
}

TEST(EnvironmentTest, AdjustComputeAppliesOverhead) {
  ExecEnvironment enclave(0, EnvKind::kTeeEnclave, TenancyMode::kShared,
                          TenantId(1), NodeId(1));
  EXPECT_EQ(enclave.AdjustCompute(SimTime::Millis(100)).micros(), 130000);
  ExecEnvironment process(1, EnvKind::kBareProcess, TenancyMode::kShared,
                          TenantId(1), NodeId(1));
  EXPECT_EQ(process.AdjustCompute(SimTime::Millis(100)).micros(), 100000);
}

class EnvManagerTest : public ::testing::Test {
 protected:
  Simulation sim_;
  EnvManager manager_{&sim_};
};

TEST_F(EnvManagerTest, ColdStartChargesProfileLatency) {
  ExecEnvironment* ready_env = nullptr;
  LaunchOptions options;
  options.kind = EnvKind::kContainer;
  ExecEnvironment* env = manager_.Launch(
      TenantId(1), NodeId(1), options,
      [&](ExecEnvironment* e) { ready_env = e; });
  EXPECT_EQ(env->state(), EnvState::kStarting);
  sim_.RunToCompletion();
  EXPECT_EQ(ready_env, env);
  EXPECT_EQ(env->state(), EnvState::kReady);
  EXPECT_EQ(sim_.now(), EnvProfile::DefaultFor(EnvKind::kContainer).cold_start);
  EXPECT_EQ(sim_.metrics().counter("exec.cold_starts"), 1);
}

TEST_F(EnvManagerTest, WarmPoolCutsStartLatency) {
  manager_.Prewarm(EnvKind::kTeeEnclave, TenantId(1), 1);
  LaunchOptions options;
  options.kind = EnvKind::kTeeEnclave;
  manager_.Launch(TenantId(1), NodeId(1), options, nullptr);
  sim_.RunToCompletion();
  EXPECT_EQ(sim_.now(), EnvProfile::DefaultFor(EnvKind::kTeeEnclave).warm_start);
  EXPECT_EQ(sim_.metrics().counter("exec.warm_starts"), 1);
  EXPECT_EQ(manager_.WarmSlots(EnvKind::kTeeEnclave, TenantId(1)), 0);
}

TEST_F(EnvManagerTest, WarmSlotsAreTenantScoped) {
  manager_.Prewarm(EnvKind::kContainer, TenantId(1), 1);
  LaunchOptions options;
  options.kind = EnvKind::kContainer;
  manager_.Launch(TenantId(2), NodeId(1), options, nullptr);  // other tenant
  sim_.RunToCompletion();
  EXPECT_EQ(sim_.metrics().counter("exec.cold_starts"), 1);
  EXPECT_EQ(manager_.WarmSlots(EnvKind::kContainer, TenantId(1)), 1);
}

TEST_F(EnvManagerTest, StopKeepWarmCreditsPoolAndReaps) {
  LaunchOptions options;
  options.kind = EnvKind::kLightweightVm;
  ExecEnvironment* env = manager_.Launch(TenantId(1), NodeId(1), options,
                                         nullptr);
  sim_.RunToCompletion();
  EXPECT_EQ(manager_.live_count(), 1u);
  ASSERT_TRUE(manager_.Stop(env, /*keep_warm=*/true).ok());
  EXPECT_EQ(manager_.WarmSlots(EnvKind::kLightweightVm, TenantId(1)), 1);
  EXPECT_EQ(manager_.live_count(), 0u);  // stopped envs are reaped
}

TEST_F(EnvManagerTest, ChurnDoesNotAccumulateStoppedEnvs) {
  LaunchOptions options;
  options.kind = EnvKind::kContainer;
  for (int i = 0; i < 100; ++i) {
    ExecEnvironment* env = manager_.Launch(TenantId(1), NodeId(1), options,
                                           nullptr);
    sim_.RunToCompletion();
    ASSERT_TRUE(manager_.Stop(env, /*keep_warm=*/true).ok());
  }
  EXPECT_EQ(manager_.live_count(), 0u);
  // One warm slot banked per stop; every launch after the first was warm.
  EXPECT_EQ(manager_.WarmSlots(EnvKind::kContainer, TenantId(1)), 1);
  EXPECT_EQ(sim_.metrics().counter("exec.cold_starts"), 1);
  EXPECT_EQ(sim_.metrics().counter("exec.warm_starts"), 99);
}

TEST_F(EnvManagerTest, ExhaustedWarmPoolEntriesAreErased) {
  LaunchOptions options;
  options.kind = EnvKind::kContainer;
  // Churn across many distinct tenants, banking one warm slot each and then
  // consuming it: the warm-pool map must not retain a zero-credit entry per
  // tenant ever seen.
  for (uint64_t t = 1; t <= 50; ++t) {
    ExecEnvironment* env =
        manager_.Launch(TenantId(t), NodeId(1), options, nullptr);
    sim_.RunToCompletion();
    ASSERT_TRUE(manager_.Stop(env, /*keep_warm=*/true).ok());
    EXPECT_EQ(manager_.warm_slot_entries(), 1u);
    env = manager_.Launch(TenantId(t), NodeId(1), options, nullptr);
    sim_.RunToCompletion();
    ASSERT_TRUE(manager_.Stop(env, /*keep_warm=*/false).ok());
    EXPECT_EQ(manager_.warm_slot_entries(), 0u);
    EXPECT_EQ(manager_.WarmSlots(EnvKind::kContainer, TenantId(t)), 0);
  }
  EXPECT_EQ(sim_.metrics().counter("exec.warm_starts"), 50);
}

TEST_F(EnvManagerTest, StopBeforeReadySkipsOnReadyCallback) {
  LaunchOptions options;
  options.kind = EnvKind::kFullVm;
  bool ready_fired = false;
  ExecEnvironment* env = manager_.Launch(
      TenantId(1), NodeId(1), options,
      [&](ExecEnvironment*) { ready_fired = true; });
  ASSERT_TRUE(manager_.Stop(env, /*keep_warm=*/false).ok());
  sim_.RunToCompletion();  // the scheduled ready event still fires
  EXPECT_FALSE(ready_fired);
  EXPECT_EQ(manager_.live_count(), 0u);
}

TEST_F(EnvManagerTest, NextStartLatencyPredicts) {
  LaunchOptions options;
  options.kind = EnvKind::kContainer;
  EXPECT_EQ(manager_.NextStartLatency(EnvKind::kContainer, TenantId(1), options),
            EnvProfile::DefaultFor(EnvKind::kContainer).cold_start);
  manager_.Prewarm(EnvKind::kContainer, TenantId(1), 1);
  EXPECT_EQ(manager_.NextStartLatency(EnvKind::kContainer, TenantId(1), options),
            EnvProfile::DefaultFor(EnvKind::kContainer).warm_start);
}

TEST_F(EnvManagerTest, NextStartLatencyMatchesLaunchUnderProfileOverride) {
  EnvProfile custom = EnvProfile::DefaultFor(EnvKind::kContainer);
  custom.cold_start = SimTime::Millis(1234);
  custom.warm_start = SimTime::Millis(7);
  LaunchOptions options;
  options.kind = EnvKind::kContainer;
  options.profile_override = custom;

  // Cold path: the estimate must equal the latency the launch then pays.
  const SimTime predicted_cold =
      manager_.NextStartLatency(EnvKind::kContainer, TenantId(1), options);
  ExecEnvironment* env =
      manager_.Launch(TenantId(1), NodeId(1), options, nullptr);
  EXPECT_EQ(env->ready_at(), sim_.now() + predicted_cold);
  EXPECT_EQ(predicted_cold, custom.cold_start);
  sim_.RunToCompletion();
  ASSERT_TRUE(manager_.Stop(env, /*keep_warm=*/true).ok());

  // Warm path: same agreement once a slot is banked.
  const SimTime predicted_warm =
      manager_.NextStartLatency(EnvKind::kContainer, TenantId(1), options);
  const SimTime before = sim_.now();
  env = manager_.Launch(TenantId(1), NodeId(1), options, nullptr);
  EXPECT_EQ(env->ready_at(), before + predicted_warm);
  EXPECT_EQ(predicted_warm, custom.warm_start);
}

}  // namespace
}  // namespace udc
