#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "src/common/rng.h"
#include "src/hw/datacenter.h"
#include "src/hw/device.h"
#include "src/hw/failure.h"
#include "src/hw/pool.h"
#include "src/hw/resource.h"
#include "src/hw/server.h"
#include "src/hw/topology.h"

namespace udc {
namespace {

TEST(ResourceVectorTest, ArithmeticAndFits) {
  const ResourceVector a =
      ResourceVector::MilliCpu(2000) + ResourceVector::Dram(Bytes::GiB(4));
  const ResourceVector b =
      ResourceVector::MilliCpu(1000) + ResourceVector::Dram(Bytes::GiB(8));
  const ResourceVector sum = a + b;
  EXPECT_EQ(sum.Get(ResourceKind::kCpu), 3000);
  EXPECT_EQ(sum.Get(ResourceKind::kDram), Bytes::GiB(12).bytes());
  EXPECT_TRUE(a.FitsIn(sum));
  EXPECT_FALSE(sum.FitsIn(a));
  // FitsIn is a partial order: neither fits in the other.
  EXPECT_FALSE(a.FitsIn(b));
  EXPECT_FALSE(b.FitsIn(a));
}

TEST(ResourceVectorTest, ScaledRounds) {
  const ResourceVector v = ResourceVector::MilliCpu(1000).Scaled(1.5);
  EXPECT_EQ(v.Get(ResourceKind::kCpu), 1500);
}

TEST(ResourceVectorTest, MinMax) {
  const ResourceVector a = ResourceVector::MilliCpu(1000);
  const ResourceVector b = ResourceVector::MilliCpu(2000);
  EXPECT_EQ(ResourceVector::Max(a, b).Get(ResourceKind::kCpu), 2000);
  EXPECT_EQ(ResourceVector::Min(a, b).Get(ResourceKind::kCpu), 1000);
}

TEST(ResourceVectorTest, ToStringOmitsZeros) {
  const std::string s =
      (ResourceVector::MilliGpu(1000) + ResourceVector::Dram(Bytes::GiB(2)))
          .ToString();
  EXPECT_NE(s.find("gpu=1000m"), std::string::npos);
  EXPECT_EQ(s.find("cpu"), std::string::npos);
}

TEST(ResourceKindTest, NamesRoundTrip) {
  for (int i = 0; i < kNumResourceKinds; ++i) {
    const auto kind = static_cast<ResourceKind>(i);
    ResourceKind parsed;
    ASSERT_TRUE(ParseResourceKind(ResourceKindName(kind), &parsed));
    EXPECT_EQ(parsed, kind);
  }
  ResourceKind k;
  EXPECT_FALSE(ParseResourceKind("quantum", &k));
}

TEST(PriceListTest, CostScalesWithAmountAndTime) {
  const PriceList prices = PriceList::DefaultOnDemand();
  const ResourceVector one_core = ResourceVector::MilliCpu(1000);
  const Money hour = prices.CostFor(one_core, SimTime::Hours(1));
  const Money two_hours = prices.CostFor(one_core, SimTime::Hours(2));
  EXPECT_NEAR(static_cast<double>(two_hours.micro_usd()),
              2.0 * static_cast<double>(hour.micro_usd()), 2.0);
  const Money half_core =
      prices.CostFor(ResourceVector::MilliCpu(500), SimTime::Hours(1));
  EXPECT_NEAR(static_cast<double>(half_core.micro_usd()),
              0.5 * static_cast<double>(hour.micro_usd()), 2.0);
}

TEST(PriceListTest, SummedPartsApproximateP316xlarge) {
  // 64 cores + 8 GPUs + 488 GiB DRAM + 1 TiB SSD at unit prices should land
  // in the ballpark of the instance's real price (~$24.48/h).
  const PriceList prices = PriceList::DefaultOnDemand();
  const ResourceVector p3 = ResourceVector::MilliCpu(64000) +
                            ResourceVector::MilliGpu(8000) +
                            ResourceVector::Dram(Bytes::GiB(488)) +
                            ResourceVector::Ssd(Bytes::GiB(1024));
  const double usd = prices.CostFor(p3, SimTime::Hours(1)).dollars();
  EXPECT_GT(usd, 20.0);
  EXPECT_LT(usd, 32.0);
}

TEST(PriceListTest, ScaledByMultipliesEverything) {
  const PriceList base = PriceList::DefaultOnDemand();
  const PriceList doubled = base.ScaledBy(2.0);
  EXPECT_EQ(doubled.hourly(ResourceKind::kGpu).micro_usd(),
            2 * base.hourly(ResourceKind::kGpu).micro_usd());
}

class DeviceTest : public ::testing::Test {
 protected:
  Device device_{DeviceId(1), DeviceKind::kCpuBlade, 32000, NodeId(5),
                 DeviceProfile::DefaultFor(DeviceKind::kCpuBlade)};
};

TEST_F(DeviceTest, AllocateAndRelease) {
  ASSERT_TRUE(device_.Allocate(TenantId(1), 8000).ok());
  EXPECT_EQ(device_.allocated(), 8000);
  EXPECT_EQ(device_.AllocatedBy(TenantId(1)), 8000);
  ASSERT_TRUE(device_.Release(TenantId(1), 8000).ok());
  EXPECT_EQ(device_.allocated(), 0);
}

TEST_F(DeviceTest, OverAllocationFails) {
  EXPECT_TRUE(device_.Allocate(TenantId(1), 32000).ok());
  const Status s = device_.Allocate(TenantId(2), 1);
  EXPECT_EQ(s.code(), StatusCode::kResourceExhausted);
}

TEST_F(DeviceTest, OverReleaseFails) {
  ASSERT_TRUE(device_.Allocate(TenantId(1), 100).ok());
  EXPECT_FALSE(device_.Release(TenantId(1), 200).ok());
  EXPECT_FALSE(device_.Release(TenantId(2), 50).ok());
}

TEST_F(DeviceTest, ExclusiveTenantBlocksOthers) {
  ASSERT_TRUE(device_.Allocate(TenantId(1), 1000).ok());
  ASSERT_TRUE(device_.SetExclusiveTenant(TenantId(1)).ok());
  const Status s = device_.Allocate(TenantId(2), 1000);
  EXPECT_EQ(s.code(), StatusCode::kPermissionDenied);
  // The exclusive tenant can still grow.
  EXPECT_TRUE(device_.Allocate(TenantId(1), 1000).ok());
}

TEST_F(DeviceTest, CannotClaimExclusivityOnSharedDevice) {
  ASSERT_TRUE(device_.Allocate(TenantId(1), 1000).ok());
  ASSERT_TRUE(device_.Allocate(TenantId(2), 1000).ok());
  EXPECT_FALSE(device_.SetExclusiveTenant(TenantId(1)).ok());
}

TEST_F(DeviceTest, FailedDeviceRejectsAllocation) {
  device_.set_health(DeviceHealth::kFailed);
  EXPECT_EQ(device_.Allocate(TenantId(1), 1).code(), StatusCode::kUnavailable);
}

TEST_F(DeviceTest, ComputeTimeScalesWithShare) {
  const SimTime full = device_.ComputeTime(1000.0, 1000);
  const SimTime half = device_.ComputeTime(1000.0, 500);
  EXPECT_NEAR(static_cast<double>(half.micros()),
              2.0 * static_cast<double>(full.micros()), 2.0);
}

TEST(DeviceProfileTest, GpuFasterThanCpuForCompute) {
  Device cpu(DeviceId(1), DeviceKind::kCpuBlade, 32000, NodeId(1),
             DeviceProfile::DefaultFor(DeviceKind::kCpuBlade));
  Device gpu(DeviceId(2), DeviceKind::kGpuBoard, 4000, NodeId(2),
             DeviceProfile::DefaultFor(DeviceKind::kGpuBoard));
  EXPECT_LT(gpu.ComputeTime(100000, 1000), cpu.ComputeTime(100000, 1000));
}

TEST(DeviceProfileTest, StorageDevicesHaveNoCompute) {
  Device ssd(DeviceId(1), DeviceKind::kSsdDrive, Bytes::GiB(1024).bytes(),
             NodeId(1), DeviceProfile::DefaultFor(DeviceKind::kSsdDrive));
  EXPECT_EQ(ssd.ComputeTime(100, 1000), SimTime::Max());
  EXPECT_LT(ssd.ReadTime(Bytes::MiB(1)), SimTime::Max());
}

TEST(TopologyTest, DistancesAndLatencies) {
  Topology topo;
  const int r0 = topo.AddRack();
  const int r1 = topo.AddRack();
  const NodeId a = topo.AddNode(r0, NodeRole::kDevice);
  const NodeId b = topo.AddNode(r0, NodeRole::kDevice);
  const NodeId c = topo.AddNode(r1, NodeRole::kDevice);
  EXPECT_EQ(topo.Distance(a, a), 0);
  EXPECT_EQ(topo.Distance(a, b), 1);
  EXPECT_EQ(topo.Distance(a, c), 2);
  EXPECT_EQ(topo.TransferTime(a, a, Bytes::MiB(100)), SimTime(0));
  EXPECT_LT(topo.TransferTime(a, b, Bytes::MiB(1)),
            topo.TransferTime(a, c, Bytes::MiB(1)));
}

TEST(TopologyTest, TransferTimeGrowsWithSize) {
  Topology topo;
  const int r0 = topo.AddRack();
  const NodeId a = topo.AddNode(r0, NodeRole::kDevice);
  const NodeId b = topo.AddNode(r0, NodeRole::kDevice);
  EXPECT_LT(topo.TransferTime(a, b, Bytes::KiB(1)),
            topo.TransferTime(a, b, Bytes::MiB(100)));
}

class PoolTest : public ::testing::Test {
 protected:
  PoolTest() : pool_(PoolId(0), DeviceKind::kCpuBlade) {
    r0_ = topo_.AddRack();
    r1_ = topo_.AddRack();
    for (int i = 0; i < 4; ++i) {
      const int rack = i < 2 ? r0_ : r1_;
      pool_.AddDevice(std::make_unique<Device>(
          DeviceId(static_cast<uint64_t>(i)), DeviceKind::kCpuBlade, 32000,
          topo_.AddNode(rack, NodeRole::kDevice),
          DeviceProfile::DefaultFor(DeviceKind::kCpuBlade)));
    }
  }
  Topology topo_;
  int r0_ = 0;
  int r1_ = 0;
  ResourcePool pool_;
};

TEST_F(PoolTest, ExactAllocation) {
  AllocationConstraints c;
  auto alloc = pool_.Allocate(TenantId(1), 5000, c, topo_);
  ASSERT_TRUE(alloc.ok());
  EXPECT_EQ(alloc->total(), 5000);
  EXPECT_EQ(alloc->kind, ResourceKind::kCpu);
  EXPECT_EQ(pool_.TotalAllocated(), 5000);
  ASSERT_TRUE(pool_.Release(*alloc).ok());
  EXPECT_EQ(pool_.TotalAllocated(), 0);
}

TEST_F(PoolTest, SpillsAcrossDevices) {
  AllocationConstraints c;
  auto alloc = pool_.Allocate(TenantId(1), 100000, c, topo_);  // > one device
  ASSERT_TRUE(alloc.ok());
  EXPECT_GT(alloc->slices.size(), 1u);
  EXPECT_EQ(alloc->total(), 100000);
}

TEST_F(PoolTest, SingleDeviceConstraintRejectsSpill) {
  AllocationConstraints c;
  c.single_device = true;
  EXPECT_FALSE(pool_.Allocate(TenantId(1), 33000, c, topo_).ok());
  EXPECT_TRUE(pool_.Allocate(TenantId(1), 32000, c, topo_).ok());
}

TEST_F(PoolTest, PrefersRequestedRack) {
  AllocationConstraints c;
  c.preferred_rack = r1_;
  auto alloc = pool_.Allocate(TenantId(1), 1000, c, topo_);
  ASSERT_TRUE(alloc.ok());
  EXPECT_EQ(topo_.RackOf(alloc->slices[0].node), r1_);
}

TEST_F(PoolTest, StrictRackFailsWhenFull) {
  AllocationConstraints strict;
  strict.preferred_rack = r0_;
  strict.strict_rack = true;
  // Fill rack 0 (2 devices x 32000).
  ASSERT_TRUE(pool_.Allocate(TenantId(1), 64000, strict, topo_).ok());
  EXPECT_FALSE(pool_.Allocate(TenantId(1), 1000, strict, topo_).ok());
  // Non-strict falls through to rack 1.
  AllocationConstraints soft;
  soft.preferred_rack = r0_;
  EXPECT_TRUE(pool_.Allocate(TenantId(1), 1000, soft, topo_).ok());
}

TEST_F(PoolTest, ExclusiveAllocationIsSingleTenant) {
  AllocationConstraints c;
  c.require_exclusive = true;
  c.single_device = true;
  auto a = pool_.Allocate(TenantId(1), 1000, c, topo_);
  ASSERT_TRUE(a.ok());
  // Another tenant cannot use that device even though capacity remains.
  AllocationConstraints c2;
  c2.single_device = true;
  auto b = pool_.Allocate(TenantId(2), 32000, c2, topo_);
  ASSERT_TRUE(b.ok());
  EXPECT_NE(a->slices[0].device, b->slices[0].device);
  // Releasing clears exclusivity.
  ASSERT_TRUE(pool_.Release(*a).ok());
  const Device* d = pool_.FindDevice(a->slices[0].device);
  EXPECT_FALSE(d->exclusive());
}

TEST_F(PoolTest, RollsBackOnShortage) {
  AllocationConstraints c;
  EXPECT_FALSE(pool_.Allocate(TenantId(1), 200000, c, topo_).ok());
  EXPECT_EQ(pool_.TotalAllocated(), 0);  // nothing leaked
}

TEST_F(PoolTest, ResizeGrowAndShrink) {
  AllocationConstraints c;
  auto alloc = pool_.Allocate(TenantId(1), 4000, c, topo_);
  ASSERT_TRUE(alloc.ok());
  ASSERT_TRUE(pool_.Resize(*alloc, 2000, topo_).ok());
  EXPECT_EQ(alloc->total(), 6000);
  EXPECT_EQ(pool_.TotalAllocated(), 6000);
  ASSERT_TRUE(pool_.Resize(*alloc, -5000, topo_).ok());
  EXPECT_EQ(alloc->total(), 1000);
  EXPECT_EQ(pool_.TotalAllocated(), 1000);
  // Shrinking to zero is rejected.
  EXPECT_FALSE(pool_.Resize(*alloc, -1000, topo_).ok());
}

TEST_F(PoolTest, LedgerSnapshotListsHoldings) {
  AllocationConstraints c;
  auto a = pool_.Allocate(TenantId(1), 1000, c, topo_);
  auto b = pool_.Allocate(TenantId(2), 2000, c, topo_);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  const auto ledger = pool_.LedgerSnapshot();
  int64_t t1 = 0;
  int64_t t2 = 0;
  for (const LedgerEntry& e : ledger) {
    if (e.tenant == TenantId(1)) {
      t1 += e.amount;
    }
    if (e.tenant == TenantId(2)) {
      t2 += e.amount;
    }
  }
  EXPECT_EQ(t1, 1000);
  EXPECT_EQ(t2, 2000);
}

TEST_F(PoolTest, AvoidListSkipsDevices) {
  AllocationConstraints c;
  c.single_device = true;
  auto first = pool_.Allocate(TenantId(1), 1000, c, topo_);
  ASSERT_TRUE(first.ok());
  c.avoid.push_back(first->slices[0].device);
  auto second = pool_.Allocate(TenantId(1), 1000, c, topo_);
  ASSERT_TRUE(second.ok());
  EXPECT_NE(second->slices[0].device, first->slices[0].device);
}

TEST(ServerTest, PlaceEvictAndUtilization) {
  Server server(ServerId(1), ServerShape::ComputeBox(), NodeId(1));
  const ResourceVector small =
      ResourceVector::MilliCpu(12000) + ResourceVector::Dram(Bytes::GiB(96));
  ASSERT_TRUE(server.Place(InstanceId(1), TenantId(1), small).ok());
  EXPECT_DOUBLE_EQ(server.UtilizationOf(ResourceKind::kCpu), 0.25);
  EXPECT_FALSE(server.Place(InstanceId(1), TenantId(1), small).ok());  // dup
  ASSERT_TRUE(server.Evict(InstanceId(1)).ok());
  EXPECT_EQ(server.instance_count(), 0u);
  EXPECT_FALSE(server.Evict(InstanceId(1)).ok());
}

TEST(ServerTest, CannotOverpack) {
  Server server(ServerId(1), ServerShape::ComputeBox(), NodeId(1));
  const ResourceVector huge = ResourceVector::MilliCpu(40000);
  ASSERT_TRUE(server.Place(InstanceId(1), TenantId(1), huge).ok());
  EXPECT_FALSE(server.CanHost(huge));
  EXPECT_EQ(server.Place(InstanceId(2), TenantId(2), huge).code(),
            StatusCode::kResourceExhausted);
}

TEST(DatacenterTest, BuildsPoolsAndTopology) {
  DatacenterConfig config;
  config.racks = 2;
  DisaggregatedDatacenter dc(config);
  EXPECT_EQ(dc.topology().rack_count(), 2);
  EXPECT_EQ(dc.pool(DeviceKind::kCpuBlade).device_count(), 8u);   // 4/rack
  EXPECT_EQ(dc.pool(DeviceKind::kGpuBoard).device_count(), 4u);   // 2/rack
  EXPECT_EQ(dc.pool(DeviceKind::kGpuBoard).TotalCapacity(), 16000);
  EXPECT_GT(dc.TotalCapacity().Get(ResourceKind::kSsd), 0);
  EXPECT_DOUBLE_EQ(dc.MeanUtilization(), 0.0);
}


TEST(TopologyTest, SwitchSitsOnThePath) {
  // Endpoint->switch pays half the endpoint->endpoint propagation: the
  // switch is mid-route, which is what makes in-network programs cheap.
  Topology topo;
  const int r0 = topo.AddRack();
  const NodeId a = topo.AddNode(r0, NodeRole::kDevice);
  const NodeId b = topo.AddNode(r0, NodeRole::kDevice);
  const NodeId tor = topo.TorSwitch(r0);
  EXPECT_EQ(topo.BaseLatency(a, tor) * 2, topo.BaseLatency(a, b));
  EXPECT_EQ(topo.BaseLatency(a, tor), topo.BaseLatency(tor, b));
}

TEST(DatacenterTest, AllDevicesCoversEveryPool) {
  DatacenterConfig config;
  config.racks = 1;
  DisaggregatedDatacenter dc(config);
  size_t expected = 0;
  for (int i = 0; i < kNumDeviceKinds; ++i) {
    expected += dc.pool(static_cast<DeviceKind>(i)).device_count();
  }
  EXPECT_EQ(dc.AllDevices().size(), expected);
  EXPECT_GT(expected, 0u);
}

TEST(DeviceTest2, ReadWriteTimesScaleWithSize) {
  Device ssd(DeviceId(1), DeviceKind::kSsdDrive, Bytes::GiB(100).bytes(),
             NodeId(1), DeviceProfile::DefaultFor(DeviceKind::kSsdDrive));
  EXPECT_LT(ssd.ReadTime(Bytes::MiB(1)), ssd.ReadTime(Bytes::MiB(100)));
  // Writes are slower than reads on this SSD profile.
  EXPECT_GT(ssd.WriteTime(Bytes::MiB(100)), ssd.ReadTime(Bytes::MiB(100)));
  // HDD access latency dominates small reads.
  Device hdd(DeviceId(2), DeviceKind::kHddDrive, Bytes::GiB(100).bytes(),
             NodeId(2), DeviceProfile::DefaultFor(DeviceKind::kHddDrive));
  EXPECT_GT(hdd.ReadTime(Bytes::KiB(4)), ssd.ReadTime(Bytes::KiB(4)));
}

TEST(FailureInjectorTest, OneShotFailureAndRepair) {
  Simulation sim;
  Device device(DeviceId(1), DeviceKind::kCpuBlade, 32000, NodeId(1),
                DeviceProfile::DefaultFor(DeviceKind::kCpuBlade));
  FailureInjector injector(&sim);
  int events = 0;
  injector.Subscribe([&](const FailureEvent&) { ++events; });
  injector.ScheduleFailure(&device, SimTime::Seconds(1), SimTime::Seconds(2));
  sim.RunUntil(SimTime::Millis(1500));
  EXPECT_FALSE(device.healthy());
  sim.RunToCompletion();
  EXPECT_TRUE(device.healthy());
  EXPECT_EQ(events, 2);
  EXPECT_EQ(injector.history().size(), 2u);
}

TEST(FailureInjectorTest, PeriodicFailuresRespectHorizon) {
  Simulation sim(123);
  Device device(DeviceId(1), DeviceKind::kCpuBlade, 32000, NodeId(1),
                DeviceProfile::DefaultFor(DeviceKind::kCpuBlade));
  FailureInjector injector(&sim);
  injector.ArmPeriodicFailures({&device}, SimTime::Minutes(10),
                               SimTime::Minutes(1), SimTime::Hours(2));
  sim.RunToCompletion();
  EXPECT_LE(sim.now(), SimTime::Hours(2) + SimTime::Minutes(2));
  EXPECT_GE(injector.history().size(), 2u);  // several cycles expected
}

// ---------------------------------------------------------------------------
// Differential test: the indexed placement path must produce byte-identical
// results to the linear-scan reference path under a long randomized
// allocate / release / fail / recover schedule with every constraint kind.

class PoolPair {
 public:
  PoolPair(int racks, int devices_per_rack, int64_t capacity)
      : indexed_(PoolId(0), DeviceKind::kCpuBlade),
        linear_(PoolId(0), DeviceKind::kCpuBlade) {
    linear_.set_use_index(false);
    for (int r = 0; r < racks; ++r) {
      topo_.AddRack();
    }
    uint64_t id = 0;
    for (int r = 0; r < racks; ++r) {
      for (int d = 0; d < devices_per_rack; ++d) {
        const NodeId node = topo_.AddNode(r, NodeRole::kDevice);
        indexed_.AddDevice(std::make_unique<Device>(
            DeviceId(id), DeviceKind::kCpuBlade, capacity, node,
            DeviceProfile::DefaultFor(DeviceKind::kCpuBlade)));
        linear_.AddDevice(std::make_unique<Device>(
            DeviceId(id), DeviceKind::kCpuBlade, capacity, node,
            DeviceProfile::DefaultFor(DeviceKind::kCpuBlade)));
        ++id;
      }
    }
    device_count_ = id;
  }

  // Runs the same allocation on both pools and checks identical outcomes.
  // Returns the allocation pair on success for later release.
  bool Allocate(TenantId tenant, int64_t amount,
                const AllocationConstraints& c) {
    auto a = indexed_.Allocate(tenant, amount, c, topo_);
    auto b = linear_.Allocate(tenant, amount, c, topo_);
    EXPECT_EQ(a.ok(), b.ok()) << "status divergence";
    if (!a.ok() || !b.ok()) {
      return false;
    }
    EXPECT_EQ(a->slices.size(), b->slices.size());
    for (size_t i = 0; i < a->slices.size() && i < b->slices.size(); ++i) {
      EXPECT_EQ(a->slices[i].device, b->slices[i].device)
          << "slice " << i << " device divergence";
      EXPECT_EQ(a->slices[i].amount, b->slices[i].amount)
          << "slice " << i << " amount divergence";
    }
    live_.push_back({*std::move(a), *std::move(b)});
    return true;
  }

  void ReleaseAt(size_t i) {
    ASSERT_TRUE(indexed_.Release(live_[i].first).ok());
    ASSERT_TRUE(linear_.Release(live_[i].second).ok());
    live_.erase(live_.begin() + static_cast<long>(i));
  }

  void SetHealth(uint64_t device, bool healthy) {
    const DeviceHealth h =
        healthy ? DeviceHealth::kHealthy : DeviceHealth::kFailed;
    indexed_.FindDevice(DeviceId(device))->set_health(h);
    linear_.FindDevice(DeviceId(device))->set_health(h);
  }

  void CheckAggregates() {
    EXPECT_EQ(indexed_.TotalAllocated(), linear_.TotalAllocated());
    EXPECT_EQ(indexed_.TotalCapacity(), linear_.TotalCapacity());
    EXPECT_DOUBLE_EQ(indexed_.HealthyUtilization(),
                     linear_.HealthyUtilization());
    // Per-rack totals from the index must equal a fresh device scan.
    const std::vector<int64_t> from_index = indexed_.HealthyFreeByRack(topo_);
    std::vector<int64_t> scanned(
        static_cast<size_t>(topo_.rack_count()), 0);
    for (const Device* d : indexed_.devices()) {
      const int rack = topo_.RackOf(d->node());
      if (rack >= 0 && d->healthy()) {
        scanned[static_cast<size_t>(rack)] += d->free_capacity();
      }
    }
    EXPECT_EQ(from_index, scanned);
  }

  size_t live_count() const { return live_.size(); }
  uint64_t device_count() const { return device_count_; }
  const Topology& topology() const { return topo_; }

 private:
  Topology topo_;
  ResourcePool indexed_;
  ResourcePool linear_;
  uint64_t device_count_ = 0;
  std::vector<std::pair<PoolAllocation, PoolAllocation>> live_;
};

TEST(PoolDifferentialTest, IndexedMatchesLinearUnderRandomizedChurn) {
  PoolPair pair(/*racks=*/6, /*devices_per_rack=*/8, /*capacity=*/32000);
  Rng rng(0xD1FFu);
  for (int step = 0; step < 2000; ++step) {
    const double roll = rng.NextDouble();
    if (roll < 0.55) {
      AllocationConstraints c;
      if (rng.NextBool(0.5)) {
        c.preferred_rack = static_cast<int>(rng.NextUint64(6));
        c.strict_rack = rng.NextBool(0.2);
      }
      c.single_device = rng.NextBool(0.4);
      c.require_exclusive = rng.NextBool(0.15);
      if (rng.NextBool(0.2)) {
        c.avoid.push_back(DeviceId(rng.NextUint64(pair.device_count())));
      }
      const int64_t amount =
          c.single_device ? rng.NextInt64InRange(1, 24000)
                          : rng.NextInt64InRange(1, 70000);
      const TenantId tenant(rng.NextUint64(5) + 1);
      pair.Allocate(tenant, amount, c);
    } else if (roll < 0.85) {
      if (pair.live_count() > 0) {
        pair.ReleaseAt(rng.NextUint64(pair.live_count()));
      }
    } else {
      pair.SetHealth(rng.NextUint64(pair.device_count()), rng.NextBool(0.6));
    }
    if (step % 100 == 0) {
      pair.CheckAggregates();
    }
    if (::testing::Test::HasFailure()) {
      FAIL() << "divergence at step " << step;
    }
  }
  pair.CheckAggregates();
}

TEST(PoolDifferentialTest, IndexTracksFailureAndRecovery) {
  PoolPair pair(2, 4, 32000);
  AllocationConstraints c;
  ASSERT_TRUE(pair.Allocate(TenantId(1), 48000, c));
  pair.SetHealth(0, false);
  pair.SetHealth(1, false);
  pair.CheckAggregates();
  ASSERT_TRUE(pair.Allocate(TenantId(2), 20000, c));
  pair.SetHealth(0, true);
  pair.CheckAggregates();
  ASSERT_TRUE(pair.Allocate(TenantId(3), 10000, c));
  pair.CheckAggregates();
}

}  // namespace
}  // namespace udc
