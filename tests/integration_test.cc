// End-to-end scenarios across the whole stack: deploy -> run -> verify ->
// bill, multi-tenant interference, failure handling through the injector,
// and the locality/tuner knobs working on a live deployment.

#include <gtest/gtest.h>

#include "src/baseline/iaas.h"
#include "src/core/runtime.h"
#include "src/core/tuner.h"
#include "src/core/udc_cloud.h"
#include "src/workload/medical.h"
#include "src/workload/tenants.h"

namespace udc {
namespace {

class EndToEndTest : public ::testing::Test {
 protected:
  EndToEndTest() {
    UdcCloudConfig config;
    config.datacenter.racks = 4;
    cloud_ = std::make_unique<UdcCloud>(config);
    hospital_ = cloud_->RegisterTenant("hospital");
    spec_ = std::make_unique<AppSpec>(std::move(*MedicalAppSpec()));
  }
  std::unique_ptr<UdcCloud> cloud_;
  TenantId hospital_;
  std::unique_ptr<AppSpec> spec_;
};

TEST_F(EndToEndTest, DeployRunVerifyBill) {
  auto deployment = cloud_->Deploy(hospital_, *spec_);
  ASSERT_TRUE(deployment.ok()) << deployment.status().ToString();

  DagRuntime runtime(cloud_->sim(), deployment->get());
  const auto report = runtime.RunOnce();
  ASSERT_TRUE(report.ok());
  EXPECT_GT(report->end_to_end, SimTime(0));
  EXPECT_LT(report->end_to_end, SimTime::Minutes(5));

  const auto verification = cloud_->Verify(deployment->get());
  ASSERT_TRUE(verification.ok());
  EXPECT_TRUE(verification->all_ok) << verification->Table();

  cloud_->sim()->RunUntil(SimTime::Hours(1));
  const Bill bill = cloud_->billing().BillToNow(**deployment);
  EXPECT_GT(bill.total.micro_usd(), 0);
  // Sanity: the hour should cost single-digit dollars — the paper's thesis
  // that exact allocation is far below the ~$25+/h instance bundle.
  EXPECT_LT(bill.total.dollars(), 25.0);
}

TEST_F(EndToEndTest, TwoTenantsAreIsolated) {
  const TenantId clinic = cloud_->RegisterTenant("clinic");
  auto d1 = cloud_->Deploy(hospital_, *spec_);
  auto d2 = cloud_->Deploy(clinic, *spec_);
  ASSERT_TRUE(d1.ok());
  ASSERT_TRUE(d2.ok()) << d2.status().ToString();

  // Single-tenant modules of different tenants never share a device.
  const auto device_of = [&](Deployment* d, const char* name) {
    const Placement* p = d->PlacementOf(d->spec().graph.IdOf(name));
    return d->FindUnit(p->unit)->PrimaryDevice(p->compute_kind);
  };
  for (const char* module : {"A1", "A2", "A3", "A4", "B1"}) {
    EXPECT_NE(device_of(d1->get(), module), device_of(d2->get(), module))
        << module;
  }
  // Both verify clean.
  EXPECT_TRUE((*cloud_->Verify(d1->get())).all_ok);
  EXPECT_TRUE((*cloud_->Verify(d2->get())).all_ok);
}

TEST_F(EndToEndTest, LocalityOffMeansMoreCrossRackTraffic) {
  UdcCloudConfig no_loc;
  no_loc.datacenter.racks = 4;
  no_loc.scheduler.use_locality_hints = false;
  UdcCloud ablated(no_loc);
  const TenantId t = ablated.RegisterTenant("h");
  auto with_loc = cloud_->Deploy(hospital_, *spec_);
  auto without = ablated.Deploy(t, *spec_);
  ASSERT_TRUE(with_loc.ok());
  ASSERT_TRUE(without.ok());

  DagRuntime rt_with(cloud_->sim(), with_loc->get());
  DagRuntime rt_without(ablated.sim(), without->get());
  const auto report_with = rt_with.RunOnce();
  const auto report_without = rt_without.RunOnce();
  ASSERT_TRUE(report_with.ok());
  ASSERT_TRUE(report_without.ok());
  // Locality reduces cross-rack input edges. (End-to-end latency is noisy at
  // this scale — env start dominates — so bench E11 reports it instead.)
  EXPECT_LE(report_with->cross_rack_transfers,
            report_without->cross_rack_transfers);
}

TEST_F(EndToEndTest, DeviceFailureHandledPerAspect) {
  auto deployment = cloud_->Deploy(hospital_, *spec_);
  ASSERT_TRUE(deployment.ok());
  DagRuntime runtime(cloud_->sim(), deployment->get());
  CheckpointStore checkpoints;

  // A3 declared checkpointing; B1 did not (re-execute).
  const auto a3_time = runtime.SimulateFailure(
      spec_->graph.IdOf("A3"), 0.8, 0.25, &checkpoints);
  ASSERT_TRUE(a3_time.ok());
  const auto a3_stage = runtime.ComputeStage(spec_->graph.IdOf("A3"));
  ASSERT_TRUE(a3_stage.ok());
  // Checkpoint restore must beat what re-execution would have cost A3:
  // wasted 80% + fresh cold start + full rerun.
  const Placement* a3_p = (*deployment)->PlacementOf(spec_->graph.IdOf("A3"));
  const SimTime a3_reexec =
      Scale(a3_stage->compute_time, 0.8) +
      EnvProfile::DefaultFor(a3_p->env_kind).cold_start +
      a3_stage->compute_time;
  EXPECT_LT(*a3_time, a3_reexec);
  EXPECT_GT(checkpoints.CountFor(spec_->graph.IdOf("A3")), 0u);

  const auto b1_time = runtime.SimulateFailure(
      spec_->graph.IdOf("B1"), 0.8, 0.25, &checkpoints);
  ASSERT_TRUE(b1_time.ok());
  const auto b1_stage = runtime.ComputeStage(spec_->graph.IdOf("B1"));
  // Re-execution repeats everything: total > 1.8x compute.
  EXPECT_GT(*b1_time, Scale(b1_stage->compute_time, 1.7));
}

TEST_F(EndToEndTest, StoreFailoverKeepsDataAvailable) {
  auto deployment = cloud_->Deploy(hospital_, *spec_);
  ASSERT_TRUE(deployment.ok());
  const ModuleId s1 = spec_->graph.IdOf("S1");
  ReplicatedStore* store = (*deployment)->StoreOf(s1);
  ASSERT_NE(store, nullptr);
  const Placement* p = (*deployment)->PlacementOf(s1);

  store->MarkReplicaFailed(p->replica_nodes[0]);
  const OpResult plan = store->PlanRead(p->replica_nodes[1], Bytes::MiB(1));
  EXPECT_LT(plan.latency, SimTime::Max());
  EXPECT_NE(plan.served_by, p->replica_nodes[0]);
}

TEST_F(EndToEndTest, TunerReducesOverProvisionedBill) {
  auto deployment = cloud_->Deploy(hospital_, *spec_);
  ASSERT_TRUE(deployment.ok());
  const Bill before =
      cloud_->billing().BillFor(**deployment, SimTime(0), SimTime::Hours(1));

  AdaptiveTuner tuner(cloud_->sim(), deployment->get());
  // Every task reports low utilization; the tuner shrinks them.
  for (const ModuleId task : spec_->graph.TaskIds()) {
    for (int i = 0; i < 4; ++i) {
      ASSERT_TRUE(tuner.Observe(task, 0.05).ok());
    }
  }
  const Bill after =
      cloud_->billing().BillFor(**deployment, SimTime(0), SimTime::Hours(1));
  EXPECT_LT(after.total, before.total);
}

TEST_F(EndToEndTest, UdcBeatsIaasOnCostForTheSameDemands) {
  // The same medical deployment, priced as UDC exact allocation vs the
  // cheapest-fitting IaaS instances per module. Both sides priced at shared
  // tenancy (IaaS on-demand prices are shared-host), so the premium
  // surcharges are zeroed for the apples-to-apples comparison.
  auto deployment = cloud_->Deploy(hospital_, *spec_);
  ASSERT_TRUE(deployment.ok());
  BillingConfig no_premium;
  no_premium.exclusivity_surcharge = 0.0;
  no_premium.replication_surcharge = 0.0;
  BillingEngine fair(cloud_->sim(), cloud_->prices(), no_premium);
  const Bill udc_bill =
      fair.BillFor(**deployment, SimTime(0), SimTime::Hours(1));

  const InstanceCatalog catalog = InstanceCatalog::Ec2Style();
  Money iaas_total;
  for (const HighLevelObject& object : (*deployment)->objects()) {
    const ResourceVector demand = (*deployment)->ResourcesOf(object.module);
    ResourceVector instance_demand = demand;
    // IaaS has no disaggregated NVM/HDD tiers; map storage to SSD.
    instance_demand.Add(ResourceKind::kSsd,
                        demand.Get(ResourceKind::kNvm) +
                            demand.Get(ResourceKind::kHdd));
    instance_demand.Set(ResourceKind::kNvm, 0);
    instance_demand.Set(ResourceKind::kHdd, 0);
    const auto pick = catalog.CheapestFitting(instance_demand);
    ASSERT_TRUE(pick.ok()) << object.module_name << " "
                           << instance_demand.ToString();
    iaas_total += pick->hourly;
  }
  EXPECT_LT(udc_bill.total, iaas_total);
}

TEST_F(EndToEndTest, MetricsAccumulateAcrossTheStack) {
  auto deployment = cloud_->Deploy(hospital_, *spec_);
  ASSERT_TRUE(deployment.ok());
  DagRuntime runtime(cloud_->sim(), deployment->get());
  ASSERT_TRUE(runtime.RunOnce().ok());
  ASSERT_TRUE(cloud_->Verify(deployment->get()).ok());
  const MetricsRegistry& m = cloud_->sim()->metrics();
  EXPECT_EQ(m.counter("core.tasks_placed"), 6);
  EXPECT_EQ(m.counter("core.data_placed"), 4);
  EXPECT_GT(m.counter("exec.cold_starts"), 0);
  EXPECT_GT(m.counter("verify.modules_checked"), 0);
  EXPECT_EQ(m.counter("core.runs"), 1);
}

TEST_F(EndToEndTest, TraceCausalityColdStartPrecedesExec) {
  auto deployment = cloud_->Deploy(hospital_, *spec_);
  ASSERT_TRUE(deployment.ok());
  DagRuntime runtime(cloud_->sim(), deployment->get());
  const auto report = runtime.RunOnce();
  ASSERT_TRUE(report.ok());
  // Let the environment launches complete so their spans close.
  cloud_->sim()->RunUntil(SimTime::Minutes(1));

  const SpanTracer& spans = cloud_->sim()->spans();
  // A4 is the secure aggregator (strongest isolation -> TEE enclave). Its
  // enclave must be fully up before its first task executes.
  const Span* env = spans.Find("exec.env_start", "image", "A4");
  ASSERT_NE(env, nullptr);
  EXPECT_FALSE(env->open);
  ASSERT_NE(env->Label("mode"), nullptr);
  EXPECT_EQ(*env->Label("mode"), "cold");
  EXPECT_LT(env->start, env->end);
  const Span* compute = spans.Find("exec.compute", "module", "A4");
  ASSERT_NE(compute, nullptr);
  EXPECT_FALSE(compute->open);
  EXPECT_LE(env->end, compute->start);

  // Net spans nest under their stage, which nests under the run root.
  ASSERT_NE(report->trace_id, 0u);
  int net_spans = 0;
  for (const Span* net : spans.SpansInCategory("net")) {
    if (net->trace_id != report->trace_id) {
      continue;
    }
    ++net_spans;
    const Span* stage = spans.SpanById(net->parent_span_id);
    ASSERT_NE(stage, nullptr);
    EXPECT_EQ(stage->name, "exec.stage");
    EXPECT_EQ(stage->trace_id, net->trace_id);
    EXPECT_LE(stage->start, net->start);
    EXPECT_LE(net->end, stage->end);
    const Span* root = spans.SpanById(stage->parent_span_id);
    ASSERT_NE(root, nullptr);
    EXPECT_EQ(root->name, "run.invoke");
    EXPECT_EQ(root->parent_span_id, 0u);
  }
  EXPECT_GT(net_spans, 0);

  // The report's breakdown was computed from this same trace.
  EXPECT_EQ(report->breakdown.total, report->end_to_end);
  EXPECT_GT(report->breakdown.exec, SimTime(0));
  EXPECT_GT(report->breakdown.net, SimTime(0));
  EXPECT_GT(report->breakdown.cold_start, SimTime(0));
}

TEST_F(EndToEndTest, SyntheticTenantMixDeploysAtScale) {
  Rng rng(7);
  const auto demands = SampleTenantMix(rng, 40);
  ASSERT_EQ(demands.size(), 40u);
  int deployed = 0;
  std::vector<std::unique_ptr<Deployment>> kept;
  for (const TenantDemand& d : demands) {
    const TenantId t = cloud_->RegisterTenant("t");
    // Wrap each demand as a one-task app.
    AppSpec spec;
    const auto task = spec.graph.AddTask("job", 1000);
    ASSERT_TRUE(task.ok());
    AspectSet aspects = ProviderDefaults();
    aspects.resource.defined = true;
    aspects.resource.objective = ResourceObjective::kExplicit;
    aspects.resource.demand = d.demand;
    spec.aspects[*task] = aspects;
    auto deployment = cloud_->Deploy(t, spec);
    if (deployment.ok()) {
      ++deployed;
      kept.push_back(std::move(*deployment));
    }
  }
  // The 4-rack datacenter cannot fit everything, but most small jobs land.
  EXPECT_GT(deployed, 20);
  EXPECT_GT(cloud_->datacenter().MeanUtilization(), 0.0);
}

}  // namespace
}  // namespace udc
