#include <gtest/gtest.h>

#include "src/ir/module_graph.h"
#include "src/ir/partitioner.h"

namespace udc {
namespace {

TEST(ModuleGraphTest, BuildsTasksAndData) {
  ModuleGraph g("app");
  const auto t = g.AddTask("T", 100.0, Bytes::MiB(1));
  const auto d = g.AddData("D", Bytes::GiB(1));
  ASSERT_TRUE(t.ok());
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(g.size(), 2u);
  EXPECT_EQ(g.Find(*t)->kind, ModuleKind::kTask);
  EXPECT_EQ(g.Find(*d)->data_size, Bytes::GiB(1));
  EXPECT_EQ(g.FindByName("T")->id, *t);
  EXPECT_EQ(g.IdOf("missing"), ModuleId::Invalid());
}

TEST(ModuleGraphTest, RejectsDuplicateNames) {
  ModuleGraph g;
  ASSERT_TRUE(g.AddTask("X", 1).ok());
  EXPECT_EQ(g.AddTask("X", 2).status().code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(g.AddData("X", Bytes::KiB(1)).status().code(),
            StatusCode::kAlreadyExists);
}

TEST(ModuleGraphTest, RejectsBadEdges) {
  ModuleGraph g;
  const auto a = g.AddTask("A", 1);
  const auto d1 = g.AddData("D1", Bytes::KiB(1));
  const auto d2 = g.AddData("D2", Bytes::KiB(1));
  EXPECT_FALSE(g.AddEdge(*a, *a).ok());                  // self edge
  EXPECT_FALSE(g.AddEdge(*d1, *d2).ok());                // data->data
  EXPECT_FALSE(g.AddEdge(*a, ModuleId(99)).ok());        // dangling
  EXPECT_TRUE(g.AddEdge(*d1, *a).ok());
  EXPECT_TRUE(g.AddEdge(*a, *d2).ok());
}

TEST(ModuleGraphTest, TopoOrderRespectsEdges) {
  ModuleGraph g;
  const auto a = g.AddTask("A", 1);
  const auto b = g.AddTask("B", 1);
  const auto c = g.AddTask("C", 1);
  ASSERT_TRUE(g.AddEdge(*b, *c).ok());
  ASSERT_TRUE(g.AddEdge(*a, *b).ok());
  const auto topo = g.TopoOrder();
  ASSERT_TRUE(topo.ok());
  ASSERT_EQ(topo->size(), 3u);
  EXPECT_EQ((*topo)[0], *a);
  EXPECT_EQ((*topo)[1], *b);
  EXPECT_EQ((*topo)[2], *c);
}

TEST(ModuleGraphTest, DetectsCycles) {
  ModuleGraph g;
  const auto a = g.AddTask("A", 1);
  const auto b = g.AddTask("B", 1);
  ASSERT_TRUE(g.AddEdge(*a, *b).ok());
  ASSERT_TRUE(g.AddEdge(*b, *a).ok());
  EXPECT_FALSE(g.TopoOrder().ok());
  EXPECT_FALSE(g.Validate().ok());
}

TEST(ModuleGraphTest, DataMediatedOrdering) {
  // writer -> data -> reader must order writer before reader.
  ModuleGraph g;
  const auto w = g.AddTask("W", 1);
  const auto d = g.AddData("D", Bytes::KiB(1));
  const auto r = g.AddTask("R", 1);
  ASSERT_TRUE(g.AddEdge(*w, *d).ok());
  ASSERT_TRUE(g.AddEdge(*d, *r).ok());
  const auto topo = g.TopoOrder();
  ASSERT_TRUE(topo.ok());
  EXPECT_EQ((*topo)[0], *w);
  EXPECT_EQ((*topo)[1], *r);
}

TEST(ModuleGraphTest, LocalityHintsValidated) {
  ModuleGraph g;
  const auto a = g.AddTask("A", 1);
  const auto b = g.AddTask("B", 1);
  const auto d = g.AddData("D", Bytes::KiB(1));
  EXPECT_TRUE(g.AddColocation(*a, *b).ok());
  EXPECT_FALSE(g.AddColocation(*a, *d).ok());   // colocate needs two tasks
  EXPECT_TRUE(g.AddAffinity(*a, *d).ok());
  EXPECT_FALSE(g.AddAffinity(*d, *a).ok());     // affinity is task->data
  const auto partners = g.LocalityPartners(*a);
  EXPECT_EQ(partners.size(), 2u);
}

TEST(ModuleGraphTest, AccessorsOfDataModule) {
  ModuleGraph g;
  const auto w = g.AddTask("W", 1);
  const auto r = g.AddTask("R", 1);
  const auto d = g.AddData("D", Bytes::KiB(1));
  ASSERT_TRUE(g.AddEdge(*w, *d).ok());
  ASSERT_TRUE(g.AddEdge(*d, *r).ok());
  const auto accessors = g.AccessorsOf(*d);
  EXPECT_EQ(accessors.size(), 2u);
}

LegacyProgram MakeChain(std::vector<double> work,
                        std::vector<std::tuple<int, int, double>> deps) {
  LegacyProgram p;
  p.name = "legacy";
  const size_t n = work.size();
  for (size_t i = 0; i < n; ++i) {
    p.segments.push_back(CodeSegment{"s" + std::to_string(i), work[i], false});
  }
  p.dep_bytes.assign(n, std::vector<double>(n, 0.0));
  for (const auto& [i, j, bytes] : deps) {
    p.dep_bytes[static_cast<size_t>(i)][static_cast<size_t>(j)] = bytes;
  }
  return p;
}

TEST(PartitionerTest, ValidatesShape) {
  LegacyProgram p = MakeChain({1, 2}, {{0, 1, 10}});
  EXPECT_TRUE(p.Validate().ok());
  p.dep_bytes[1][0] = 5;  // backward dependency
  EXPECT_FALSE(p.Validate().ok());
}

TEST(PartitionerTest, SinglePartHasNoCuts) {
  const LegacyProgram p = MakeChain({1, 2, 3}, {{0, 1, 10}, {1, 2, 10}});
  const auto part = PartitionChain(p, 1);
  ASSERT_TRUE(part.ok());
  EXPECT_EQ(part->boundaries, (std::vector<size_t>{0}));
  EXPECT_DOUBLE_EQ(part->cross_cut_bytes, 0.0);
}

TEST(PartitionerTest, CutsAtCheapestBoundary) {
  // Heavy deps 0->1 and 2->3; light dep 1->2. The 2-part cut must be at 2.
  const LegacyProgram p =
      MakeChain({1, 1, 1, 1}, {{0, 1, 100}, {1, 2, 5}, {2, 3, 100}});
  const auto part = PartitionChain(p, 2);
  ASSERT_TRUE(part.ok());
  EXPECT_EQ(part->boundaries, (std::vector<size_t>{0, 2}));
  EXPECT_DOUBLE_EQ(part->cross_cut_bytes, 5.0);
}

TEST(PartitionerTest, HintBiasesCutPlacement) {
  // Without hints the cheapest cut is at 1 (cost 10 vs 12); with a strong
  // usage-shift hint at 2, the cut moves there.
  LegacyProgram p = MakeChain({1, 1, 1}, {{0, 1, 10}, {1, 2, 12}});
  const auto no_hint = PartitionChain(p, 2);
  ASSERT_TRUE(no_hint.ok());
  EXPECT_EQ(no_hint->boundaries[1], 1u);
  p.segments[2].usage_shift_hint = true;
  const auto hinted = PartitionChain(p, 2, /*hint_bonus_bytes=*/5.0);
  ASSERT_TRUE(hinted.ok());
  EXPECT_EQ(hinted->boundaries[1], 2u);
}

TEST(PartitionerTest, RejectsBadPartCounts) {
  const LegacyProgram p = MakeChain({1, 2}, {});
  EXPECT_FALSE(PartitionChain(p, 0).ok());
  EXPECT_FALSE(PartitionChain(p, 3).ok());
}

TEST(PartitionerTest, ToModuleGraphSumsWorkAndEdges) {
  const LegacyProgram p =
      MakeChain({10, 20, 30, 40}, {{0, 1, 100}, {1, 2, 7}, {2, 3, 100}});
  const auto part = PartitionChain(p, 2);
  ASSERT_TRUE(part.ok());
  const auto graph = ToModuleGraph(p, *part);
  ASSERT_TRUE(graph.ok());
  EXPECT_EQ(graph->TaskIds().size(), 2u);
  const Module* first = graph->FindByName("legacy_part0");
  const Module* second = graph->FindByName("legacy_part1");
  ASSERT_NE(first, nullptr);
  ASSERT_NE(second, nullptr);
  EXPECT_DOUBLE_EQ(first->work_units, 30.0);   // segments 0+1
  EXPECT_DOUBLE_EQ(second->work_units, 70.0);  // segments 2+3
  EXPECT_EQ(first->output_size.bytes(), 7);
  EXPECT_EQ(graph->Successors(first->id).size(), 1u);
  EXPECT_TRUE(graph->Validate().ok());
}

class PartitionSweepTest : public ::testing::TestWithParam<size_t> {};

TEST_P(PartitionSweepTest, MoreCutsNeverReduceToNegativeAndGrowCost) {
  // Monotonicity property: cross-cut bytes is non-decreasing in the number
  // of parts for a fixed chain (cuts only add crossings).
  const LegacyProgram p = MakeChain(
      {1, 1, 1, 1, 1, 1},
      {{0, 1, 10}, {1, 2, 20}, {2, 3, 5}, {3, 4, 40}, {4, 5, 15}, {0, 5, 3}});
  const size_t parts = GetParam();
  const auto fewer = PartitionChain(p, parts);
  const auto more = PartitionChain(p, parts + 1);
  ASSERT_TRUE(fewer.ok());
  ASSERT_TRUE(more.ok());
  EXPECT_GE(fewer->cross_cut_bytes, 0.0);
  EXPECT_GE(more->cross_cut_bytes, fewer->cross_cut_bytes);
}

INSTANTIATE_TEST_SUITE_P(Parts, PartitionSweepTest,
                         ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace udc
