#include <gtest/gtest.h>

#include "src/net/fabric.h"
#include "src/net/rpc.h"
#include "src/net/switch_programs.h"

namespace udc {
namespace {

class NetTest : public ::testing::Test {
 protected:
  NetTest() : sim_(1), topo_() {
    r0_ = topo_.AddRack();
    r1_ = topo_.AddRack();
    a_ = topo_.AddNode(r0_, NodeRole::kDevice);
    b_ = topo_.AddNode(r0_, NodeRole::kDevice);
    c_ = topo_.AddNode(r1_, NodeRole::kDevice);
    fabric_ = std::make_unique<Fabric>(&sim_, &topo_);
  }
  Simulation sim_;
  Topology topo_;
  int r0_, r1_;
  NodeId a_, b_, c_;
  std::unique_ptr<Fabric> fabric_;
};

TEST_F(NetTest, DeliversWithTransferLatency) {
  SimTime delivered_at;
  fabric_->Bind(b_, [&](const Message& m) { delivered_at = m.delivered_at; });
  fabric_->Send(a_, b_, "ping", "x", Bytes::KiB(1));
  sim_.RunToCompletion();
  EXPECT_EQ(delivered_at, topo_.TransferTime(a_, b_, Bytes::KiB(1)));
  EXPECT_EQ(fabric_->messages_delivered(), 1u);
}

TEST_F(NetTest, CrossRackIsSlower) {
  SimTime local, remote;
  fabric_->Bind(b_, [&](const Message& m) { local = m.delivered_at; });
  fabric_->Bind(c_, [&](const Message& m) { remote = m.delivered_at; });
  fabric_->Send(a_, b_, "t", "", Bytes::MiB(1));
  fabric_->Send(a_, c_, "t", "", Bytes::MiB(1));
  sim_.RunToCompletion();
  EXPECT_LT(local, remote);
}

TEST_F(NetTest, DropsToUnboundNode) {
  fabric_->Send(a_, b_, "t", "", Bytes::B(1));
  sim_.RunToCompletion();
  EXPECT_EQ(fabric_->messages_dropped(), 1u);
}

TEST_F(NetTest, DropsToDownNode) {
  int received = 0;
  fabric_->Bind(b_, [&](const Message&) { ++received; });
  fabric_->SetNodeUp(b_, false);
  fabric_->Send(a_, b_, "t", "", Bytes::B(1));
  sim_.RunToCompletion();
  EXPECT_EQ(received, 0);
  EXPECT_EQ(fabric_->messages_dropped(), 1u);
  fabric_->SetNodeUp(b_, true);
  fabric_->Send(a_, b_, "t", "", Bytes::B(1));
  sim_.RunToCompletion();
  EXPECT_EQ(received, 1);
}

TEST_F(NetTest, MetricsCountTraffic) {
  fabric_->Bind(b_, [](const Message&) {});
  fabric_->Send(a_, b_, "t", "", Bytes::KiB(4));
  sim_.RunToCompletion();
  EXPECT_EQ(sim_.metrics().counter("net.messages_sent"), 1);
  EXPECT_EQ(sim_.metrics().counter("net.bytes_sent"), 4096);
}

TEST_F(NetTest, RpcRoundTrip) {
  RpcEndpoint server(&sim_, fabric_.get(), b_);
  RpcEndpoint client(&sim_, fabric_.get(), a_);
  server.Serve("echo", [](const Message& m) { return "echo:" + m.payload; });
  std::string response;
  client.Call(b_, "echo", "hi", Bytes::B(100), Bytes::B(100),
              SimTime::Seconds(1),
              [&](Result<std::string> r) { response = r.value_or("FAIL"); });
  sim_.RunToCompletion();
  EXPECT_EQ(response, "echo:hi");
}

TEST_F(NetTest, RpcTimesOutWhenServerDown) {
  RpcEndpoint client(&sim_, fabric_.get(), a_);
  Status status = OkStatus();
  client.Call(b_, "echo", "hi", Bytes::B(100), Bytes::B(100),
              SimTime::Millis(50), [&](Result<std::string> r) {
                status = r.ok() ? OkStatus() : r.status();
              });
  sim_.RunToCompletion();
  EXPECT_EQ(status.code(), StatusCode::kUnavailable);
}

TEST_F(NetTest, RpcUnknownMethodReturnsError) {
  RpcEndpoint server(&sim_, fabric_.get(), b_);
  RpcEndpoint client(&sim_, fabric_.get(), a_);
  Status status = OkStatus();
  client.Call(b_, "nosuch", "", Bytes::B(10), Bytes::B(10),
              SimTime::Seconds(1), [&](Result<std::string> r) {
                status = r.ok() ? OkStatus() : r.status();
              });
  sim_.RunToCompletion();
  EXPECT_EQ(status.code(), StatusCode::kInternal);
}

TEST_F(NetTest, RpcNotifyIsOneWay) {
  RpcEndpoint server(&sim_, fabric_.get(), b_);
  RpcEndpoint client(&sim_, fabric_.get(), a_);
  int notified = 0;
  server.Serve("tick", [&](const Message&) {
    ++notified;
    return "";
  });
  client.Notify(b_, "tick", "", Bytes::B(10));
  client.Notify(b_, "tick", "", Bytes::B(10));
  sim_.RunToCompletion();
  EXPECT_EQ(notified, 2);
}

TEST_F(NetTest, SequencerStampsMonotonically) {
  SwitchSequencer seq(&sim_, fabric_.get(), topo_.TorSwitch(r0_));
  seq.SetGroup("g", {a_, b_});
  std::vector<std::string> types_at_b;
  fabric_->Bind(b_, [&](const Message& m) { types_at_b.push_back(m.type); });
  fabric_->Bind(a_, [](const Message&) {});
  EXPECT_EQ(seq.Multicast(c_, "g", "w1", Bytes::B(64)), 1u);
  EXPECT_EQ(seq.Multicast(c_, "g", "w2", Bytes::B(64)), 2u);
  sim_.RunToCompletion();
  ASSERT_EQ(types_at_b.size(), 2u);
  EXPECT_EQ(types_at_b[0], "seq.mcast:g:1");
  EXPECT_EQ(types_at_b[1], "seq.mcast:g:2");
  EXPECT_EQ(seq.LastSequence("g"), 2u);
}

TEST_F(NetTest, SequencerUnknownGroupReturnsZero) {
  SwitchSequencer seq(&sim_, fabric_.get(), topo_.TorSwitch(r0_));
  EXPECT_EQ(seq.Multicast(a_, "nope", "", Bytes::B(1)), 0u);
}


TEST_F(NetTest, SwitchCacheHitFasterThanMiss) {
  SwitchCache cache(&sim_, fabric_.get(), topo_.TorSwitch(r0_), 8);
  // Home replica is cross-rack: a miss pays the full path.
  const SimTime miss = cache.PlanRead(a_, "hot", c_, Bytes::KiB(64), topo_);
  ASSERT_TRUE(cache.Cached("hot"));
  const SimTime hit = cache.PlanRead(a_, "hot", c_, Bytes::KiB(64), topo_);
  EXPECT_LT(hit, miss);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
}

TEST_F(NetTest, SwitchCacheInvalidationOnWrite) {
  SwitchCache cache(&sim_, fabric_.get(), topo_.TorSwitch(r0_), 8);
  (void)cache.PlanRead(a_, "obj", c_, Bytes::KiB(4), topo_);
  ASSERT_TRUE(cache.Cached("obj"));
  cache.Invalidate("obj");
  EXPECT_FALSE(cache.Cached("obj"));
  // The next read misses again (fresh data fetched after the write).
  (void)cache.PlanRead(a_, "obj", c_, Bytes::KiB(4), topo_);
  EXPECT_EQ(cache.misses(), 2u);
  // Invalidating an uncached object is a no-op.
  cache.Invalidate("never-seen");
}

TEST_F(NetTest, SwitchCacheLruEviction) {
  SwitchCache cache(&sim_, fabric_.get(), topo_.TorSwitch(r0_), 2);
  (void)cache.PlanRead(a_, "x", c_, Bytes::KiB(1), topo_);
  (void)cache.PlanRead(a_, "y", c_, Bytes::KiB(1), topo_);
  (void)cache.PlanRead(a_, "x", c_, Bytes::KiB(1), topo_);  // refresh x
  (void)cache.PlanRead(a_, "z", c_, Bytes::KiB(1), topo_);  // evicts y
  EXPECT_TRUE(cache.Cached("x"));
  EXPECT_FALSE(cache.Cached("y"));
  EXPECT_TRUE(cache.Cached("z"));
  EXPECT_EQ(cache.size(), 2u);
}

TEST_F(NetTest, RpcLateResponseAfterTimeoutIsDropped) {
  // The server answers, but only after the caller's deadline: the caller
  // sees a timeout and the late response must not invoke the callback again.
  RpcEndpoint server(&sim_, fabric_.get(), c_);  // cross-rack: slow path
  RpcEndpoint client(&sim_, fabric_.get(), a_);
  server.Serve("slow", [](const Message& m) { return m.payload; });
  int callbacks = 0;
  Status last = OkStatus();
  // Timeout below the cross-rack round trip for an 8 MiB response.
  client.Call(c_, "slow", "x", Bytes::MiB(8), Bytes::MiB(8),
              SimTime::Micros(50), [&](Result<std::string> r) {
                ++callbacks;
                last = r.ok() ? OkStatus() : r.status();
              });
  sim_.RunToCompletion();
  EXPECT_EQ(callbacks, 1);
  EXPECT_EQ(last.code(), StatusCode::kUnavailable);
}

TEST_F(NetTest, DirectoryBalancesReads) {
  CoherenceDirectory dir(&sim_, fabric_.get(), topo_.TorSwitch(r0_));
  dir.Register("obj", {a_, b_});
  fabric_->Bind(a_, [](const Message&) {});
  fabric_->Bind(b_, [](const Message&) {});
  const NodeId first = dir.RouteRead(c_, "obj", "", Bytes::B(64));
  const NodeId second = dir.RouteRead(c_, "obj", "", Bytes::B(64));
  EXPECT_NE(first, second);  // least-outstanding alternates
  dir.ReadDone("obj", first);
  const NodeId third = dir.RouteRead(c_, "obj", "", Bytes::B(64));
  EXPECT_EQ(third, first);
  sim_.RunToCompletion();
  EXPECT_EQ(dir.reads_routed(), 3u);
}

TEST_F(NetTest, DirectoryWritesFanOutToAllReplicas) {
  CoherenceDirectory dir(&sim_, fabric_.get(), topo_.TorSwitch(r0_));
  dir.Register("obj", {a_, b_});
  int a_writes = 0, b_writes = 0;
  fabric_->Bind(a_, [&](const Message&) { ++a_writes; });
  fabric_->Bind(b_, [&](const Message&) { ++b_writes; });
  EXPECT_EQ(dir.RouteWrite(c_, "obj", "", Bytes::B(64)), 2u);
  sim_.RunToCompletion();
  EXPECT_EQ(a_writes, 1);
  EXPECT_EQ(b_writes, 1);
}

TEST_F(NetTest, DirectoryAvoidsDownReplica) {
  CoherenceDirectory dir(&sim_, fabric_.get(), topo_.TorSwitch(r0_));
  dir.Register("obj", {a_, b_});
  fabric_->SetNodeUp(a_, false);
  fabric_->Bind(b_, [](const Message&) {});
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(dir.RouteRead(c_, "obj", "", Bytes::B(64)), b_);
  }
  fabric_->SetNodeUp(b_, false);
  EXPECT_FALSE(dir.RouteRead(c_, "obj", "", Bytes::B(64)).valid());
}

}  // namespace
}  // namespace udc
