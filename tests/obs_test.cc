// Tests for the observability layer: span tracing, labeled metrics, the
// exposition writers, the Chrome trace export, and the latency breakdown.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/obs/breakdown.h"
#include "src/obs/flight_recorder.h"
#include "src/obs/chrome_trace.h"
#include "src/obs/exposition.h"
#include "src/obs/metrics.h"
#include "src/obs/span.h"

namespace udc {
namespace {

// A tracer whose clock the test advances by hand.
class SpanTest : public ::testing::Test {
 protected:
  SpanTest() : tracer_([this] { return now_; }) {}

  SimTime now_;
  SpanTracer tracer_;
};

TEST_F(SpanTest, BeginEndRecordsInterval) {
  now_ = SimTime::Millis(10);
  const uint64_t id = tracer_.Begin("exec", "exec.task_run", {{"module", "A1"}});
  ASSERT_NE(id, 0u);
  now_ = SimTime::Millis(25);
  tracer_.End(id);

  const Span* span = tracer_.SpanById(id);
  ASSERT_NE(span, nullptr);
  EXPECT_FALSE(span->open);
  EXPECT_EQ(span->start, SimTime::Millis(10));
  EXPECT_EQ(span->end, SimTime::Millis(25));
  EXPECT_EQ(span->duration(), SimTime::Millis(15));
  ASSERT_NE(span->Label("module"), nullptr);
  EXPECT_EQ(*span->Label("module"), "A1");
  EXPECT_EQ(span->Label("missing"), nullptr);
  EXPECT_NE(span->trace_id, 0u);
  EXPECT_EQ(span->parent_span_id, 0u);
}

TEST_F(SpanTest, ScopedSpansNestAndShareTraceId) {
  uint64_t inner_id = 0;
  uint64_t outer_id = 0;
  {
    ScopedSpan outer(&tracer_, "sched", "sched.deploy");
    outer_id = outer.id();
    EXPECT_EQ(tracer_.CurrentScope(), outer_id);
    {
      ScopedSpan inner(&tracer_, "sched", "sched.place_task");
      inner_id = inner.id();
      EXPECT_EQ(tracer_.CurrentScope(), inner_id);
    }
    EXPECT_EQ(tracer_.CurrentScope(), outer_id);
  }
  EXPECT_EQ(tracer_.CurrentScope(), 0u);

  const Span* outer = tracer_.SpanById(outer_id);
  const Span* inner = tracer_.SpanById(inner_id);
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(inner->parent_span_id, outer_id);
  EXPECT_EQ(inner->trace_id, outer->trace_id);
  EXPECT_FALSE(outer->open);
  EXPECT_FALSE(inner->open);
}

TEST_F(SpanTest, AsyncSpanCapturesParentAtBegin) {
  uint64_t async_id = 0;
  {
    ScopedSpan scope(&tracer_, "exec", "exec.stage");
    async_id = tracer_.Begin("net", "net.message");
  }
  // The scope closed before the async span; the parent link must survive.
  now_ = SimTime::Millis(5);
  tracer_.End(async_id);
  const Span* async_span = tracer_.SpanById(async_id);
  ASSERT_NE(async_span, nullptr);
  EXPECT_NE(async_span->parent_span_id, 0u);
  EXPECT_EQ(async_span->parent_span_id,
            tracer_.Find("exec.stage")->span_id);
}

TEST_F(SpanTest, RootSpansStartFreshTraces) {
  const uint64_t a = tracer_.Begin("run", "run.invoke");
  tracer_.End(a);
  const uint64_t b = tracer_.Begin("run", "run.invoke");
  tracer_.End(b);
  EXPECT_NE(tracer_.SpanById(a)->trace_id, tracer_.SpanById(b)->trace_id);
}

TEST_F(SpanTest, ExplicitTimesAndEndClamp) {
  const uint64_t id = tracer_.BeginAt(SimTime::Millis(100), "exec",
                                      "exec.compute");
  tracer_.EndAt(id, SimTime::Millis(40));  // before start: clamped
  const Span* span = tracer_.SpanById(id);
  EXPECT_EQ(span->end, span->start);
  EXPECT_EQ(span->duration(), SimTime(0));
}

TEST_F(SpanTest, OnEndSinkFiresOncePerSpan) {
  int fired = 0;
  tracer_.set_on_end([&fired](const Span&) { ++fired; });
  const uint64_t id = tracer_.Begin("exec", "exec.task_run");
  tracer_.End(id);
  tracer_.End(id);  // double-end is a no-op
  EXPECT_EQ(fired, 1);
}

TEST_F(SpanTest, DropsBeyondCapAndCounts) {
  tracer_.set_max_spans(2);
  EXPECT_NE(tracer_.Begin("a", "a.x"), 0u);
  EXPECT_NE(tracer_.Begin("a", "a.y"), 0u);
  const uint64_t dropped = tracer_.Begin("a", "a.z");
  EXPECT_EQ(dropped, 0u);
  EXPECT_EQ(tracer_.dropped(), 1u);
  // Operations on the no-op id are safe.
  tracer_.AddLabel(dropped, "k", "v");
  tracer_.End(dropped);
  EXPECT_EQ(tracer_.size(), 2u);
}

TEST_F(SpanTest, DetailRendersLegacyTraceLine) {
  now_ = SimTime::Millis(1);
  const uint64_t id = tracer_.Begin("sched", "sched.place_task",
                                    {{"module", "A2"}, {"rack", "0"}});
  now_ = SimTime::Millis(3);
  tracer_.End(id);
  const std::string detail = tracer_.SpanById(id)->Detail();
  EXPECT_NE(detail.find("sched.place_task"), std::string::npos);
  EXPECT_NE(detail.find("module=A2"), std::string::npos);
  EXPECT_NE(detail.find("rack=0"), std::string::npos);
  EXPECT_NE(detail.find("dur="), std::string::npos);
}

TEST(HistogramTest, QuantilesOnKnownDistribution) {
  Histogram h;
  for (int i = 1; i <= 100; ++i) {
    h.Add(static_cast<double>(i));
  }
  // Exact quantiles with linear interpolation over 1..100.
  EXPECT_DOUBLE_EQ(h.Quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), 50.5);
  EXPECT_NEAR(h.Quantile(0.95), 95.05, 1e-9);
  EXPECT_NEAR(h.Quantile(0.99), 99.01, 1e-9);
  EXPECT_DOUBLE_EQ(h.Quantile(1.0), 100.0);
  EXPECT_DOUBLE_EQ(h.Mean(), 50.5);
  EXPECT_EQ(h.count(), 100);
}

TEST(HistogramTest, SingleSampleIsEveryQuantile) {
  Histogram h;
  h.Add(42.0);
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), 42.0);
  EXPECT_DOUBLE_EQ(h.Quantile(0.99), 42.0);
}

TEST(HistogramTest, EmptyHistogramIsZeroEverywhere) {
  Histogram h;
  EXPECT_TRUE(h.empty());
  EXPECT_EQ(h.count(), 0);
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(h.Quantile(0.99), 0.0);
  EXPECT_DOUBLE_EQ(h.Min(), 0.0);
  EXPECT_DOUBLE_EQ(h.Max(), 0.0);
  EXPECT_DOUBLE_EQ(h.Mean(), 0.0);
}

TEST(MetricsTest, SeriesKeySortsLabels) {
  EXPECT_EQ(MetricSeriesKey("sched.placed", {}), "sched.placed");
  EXPECT_EQ(MetricSeriesKey("sched.placed", {{"b", "2"}, {"a", "1"}}),
            "sched.placed{a=\"1\",b=\"2\"}");
}

TEST(MetricsTest, LabeledSeriesAreDistinct) {
  MetricsRegistry metrics;
  metrics.IncrementCounter("sched.modules_placed");
  metrics.IncrementCounter("sched.modules_placed", {{"kind", "task"}}, 2);
  metrics.IncrementCounter("sched.modules_placed", {{"kind", "data"}}, 3);
  EXPECT_EQ(metrics.counter("sched.modules_placed"), 1);
  EXPECT_EQ(metrics.counter("sched.modules_placed", {{"kind", "task"}}), 2);
  EXPECT_EQ(metrics.counter("sched.modules_placed", {{"kind", "data"}}), 3);

  metrics.SetGauge("monitor.utilization", {{"module", "1"}}, 0.25);
  metrics.SetGauge("monitor.utilization", {{"module", "2"}}, 0.75);
  EXPECT_DOUBLE_EQ(metrics.gauge("monitor.utilization", {{"module", "1"}}),
                   0.25);
  EXPECT_DOUBLE_EQ(metrics.gauge("monitor.utilization", {{"module", "2"}}),
                   0.75);

  metrics.Observe("exec.latency_ms", {{"mode", "cold"}}, 9.0);
  EXPECT_EQ(metrics.histogram("exec.latency_ms"), nullptr);
  ASSERT_NE(metrics.histogram("exec.latency_ms", {{"mode", "cold"}}), nullptr);
  EXPECT_EQ(metrics.histogram("exec.latency_ms", {{"mode", "cold"}})->count(),
            1);
}

TEST(MetricsTest, HandlesShareSeriesWithStringApi) {
  // An interned handle and the string-addressed calls hit the same series,
  // so hot paths can migrate to handles without splitting their metrics.
  MetricsRegistry metrics;
  const CounterHandle sent = metrics.CounterSeries("net.messages_sent");
  EXPECT_TRUE(sent.valid());
  metrics.Increment(sent);
  metrics.IncrementCounter("net.messages_sent", 2);
  metrics.Increment(sent, 3);
  EXPECT_EQ(metrics.counter("net.messages_sent"), 6);
  EXPECT_EQ(metrics.value(sent), 6);

  const GaugeHandle util = metrics.GaugeSeries("monitor.utilization");
  metrics.Set(util, 0.5);
  metrics.AddToGauge("monitor.utilization", 0.25);
  EXPECT_DOUBLE_EQ(metrics.value(util), 0.75);

  const HistogramHandle lat = metrics.HistogramSeries("exec.latency_ms");
  metrics.Observe(lat, 10.0);
  metrics.Observe("exec.latency_ms", 30.0);
  ASSERT_NE(metrics.histogram("exec.latency_ms"), nullptr);
  EXPECT_EQ(metrics.histogram("exec.latency_ms")->count(), 2);
  EXPECT_EQ(metrics.value(lat).count(), 2);
}

TEST(MetricsTest, LabeledHandlesFoldLabelsOnce) {
  MetricsRegistry metrics;
  // Label order at the interning call must not matter: both spellings
  // resolve to the same canonical series.
  const CounterHandle ab =
      metrics.CounterSeries("sched.modules_placed", {{"b", "2"}, {"a", "1"}});
  const CounterHandle ba =
      metrics.CounterSeries("sched.modules_placed", {{"a", "1"}, {"b", "2"}});
  metrics.Increment(ab);
  metrics.Increment(ba);
  EXPECT_EQ(
      metrics.counter("sched.modules_placed", {{"a", "1"}, {"b", "2"}}), 2);
  EXPECT_EQ(metrics.counter_series_count(), 1u);
}

TEST(MetricsTest, HandlesStayValidAcrossLaterInterning) {
  // Interning more series (growing the store) must not invalidate handles
  // or histogram pointers handed out earlier.
  MetricsRegistry metrics;
  const CounterHandle first = metrics.CounterSeries("a.first");
  const HistogramHandle hist = metrics.HistogramSeries("a.first_ms");
  metrics.Observe(hist, 1.0);
  const MetricHistogram* raw = metrics.histogram("a.first_ms");
  for (int i = 0; i < 200; ++i) {
    metrics.IncrementCounter(MetricSeriesKey("bulk.series", {}) +
                             std::to_string(i));
    metrics.Observe("bulk.hist_ms" + std::to_string(i), 1.0);
  }
  metrics.Increment(first);
  metrics.Observe(hist, 2.0);
  EXPECT_EQ(metrics.value(first), 1);
  EXPECT_EQ(metrics.histogram("a.first_ms"), raw);  // address stability
  EXPECT_EQ(raw->count(), 2);
}

TEST(MetricsTest, ReportIsDeterministicAcrossInsertionOrder) {
  MetricsRegistry a;
  a.IncrementCounter("z.last");
  a.SetGauge("m.middle", 1.5);
  a.Observe("a.first_ms", 10.0);
  a.Observe("a.first_ms", 20.0);

  MetricsRegistry b;
  b.Observe("a.first_ms", 10.0);
  b.IncrementCounter("z.last");
  b.Observe("a.first_ms", 20.0);
  b.SetGauge("m.middle", 1.5);

  EXPECT_EQ(a.Report(), b.Report());
  EXPECT_EQ(PrometheusExposition(a), PrometheusExposition(b));
  EXPECT_EQ(JsonSnapshot(a), JsonSnapshot(b));
}

TEST(ExpositionTest, PrometheusNameManglesDots) {
  EXPECT_EQ(PrometheusMetricName("core.runs"), "udc_core_runs");
  EXPECT_EQ(PrometheusMetricName("exec.cold_start_latency_ms"),
            "udc_exec_cold_start_latency_ms");
}

TEST(ExpositionTest, RendersCountersGaugesAndSummaries) {
  MetricsRegistry metrics;
  metrics.IncrementCounter("core.runs", 3);
  metrics.SetGauge("monitor.utilization", {{"module", "7"}}, 0.5);
  for (int i = 1; i <= 4; ++i) {
    metrics.Observe("exec.cold_start_latency_ms", 100.0 * i);
  }
  const std::string text = PrometheusExposition(metrics);
  EXPECT_NE(text.find("# TYPE udc_core_runs counter\nudc_core_runs 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("udc_monitor_utilization{module=\"7\"} 0.5"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE udc_exec_cold_start_latency_ms summary"),
            std::string::npos);
  EXPECT_NE(text.find("udc_exec_cold_start_latency_ms{quantile=\"0.5\"} 250"),
            std::string::npos);
  EXPECT_NE(text.find("udc_exec_cold_start_latency_ms_sum 1000"),
            std::string::npos);
  EXPECT_NE(text.find("udc_exec_cold_start_latency_ms_count 4"),
            std::string::npos);
}

TEST(ExpositionTest, JsonSnapshotEscapesAndReportsQuantiles) {
  MetricsRegistry metrics;
  metrics.IncrementCounter("core.runs");
  metrics.Observe("exec.latency_ms", {{"module", "A\"1"}}, 5.0);
  const std::string json = JsonSnapshot(metrics);
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"core.runs\": 1"), std::string::npos);
  // The embedded quote in the label value must be escaped.
  EXPECT_NE(json.find("A\\\"1"), std::string::npos);
  // The JSON summary carries the same quantile set as the Prometheus
  // writer — p90 included, so BENCH_*.json consumers get p90 parity.
  EXPECT_NE(json.find("\"p50\": 5"), std::string::npos);
  EXPECT_NE(json.find("\"p90\": 5"), std::string::npos);
  EXPECT_NE(json.find("\"p95\": 5"), std::string::npos);
  EXPECT_NE(json.find("\"p99\": 5"), std::string::npos);
}

TEST(ExpositionTest, SketchModeSeriesExportLikeExactOnes) {
  MetricsRegistry metrics;
  metrics.EnableSketchHistogram("exec.cold_start_latency_ms");
  for (int i = 1; i <= 4; ++i) {
    metrics.Observe("exec.cold_start_latency_ms", 100.0 * i);
  }
  // Both writers are mode-blind: a sketch-backed series renders as the
  // same summary/quantile shape, within the sketch's 1% error.
  const std::string text = PrometheusExposition(metrics);
  EXPECT_NE(text.find("# TYPE udc_exec_cold_start_latency_ms summary"),
            std::string::npos);
  EXPECT_NE(text.find("udc_exec_cold_start_latency_ms_count 4"),
            std::string::npos);
  const std::string json = JsonSnapshot(metrics);
  const std::string needle = "\"p50\": ";
  const size_t pos = json.find(needle);
  ASSERT_NE(pos, std::string::npos);
  const double p50 = std::stod(json.substr(pos + needle.size()));
  // Sketch rank convention is nearest-rank: round(0.5 * 3) = rank 2 -> 300
  // (the exact histogram would lerp to 250), within the 1% bucket error.
  EXPECT_NEAR(p50, 300.0, 0.012 * 300.0);
}

TEST(ChromeTraceTest, EmitsCompleteEventsWithCausalArgs) {
  SimTime now = SimTime::Millis(50);
  SpanTracer tracer([&now] { return now; });
  const uint64_t parent = tracer.BeginAt(SimTime::Millis(1), "sched",
                                         "sched.deploy", {{"app", "medical"}});
  const uint64_t child = tracer.BeginAt(SimTime::Millis(2), "exec",
                                        "exec.stage", {}, parent);
  tracer.EndAt(child, SimTime::Millis(8));
  tracer.EndAt(parent, SimTime::Millis(10));
  const uint64_t open = tracer.BeginAt(SimTime::Millis(20), "net",
                                       "net.message");

  const std::string json = ChromeTraceJson(tracer, now);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"sched.deploy\""), std::string::npos);
  EXPECT_NE(json.find("\"app\": \"medical\""), std::string::npos);
  // Causal ids ride in args.
  EXPECT_NE(json.find("\"parent_span_id\": 1"), std::string::npos);
  // The still-open span is exported up to `now` and flagged.
  EXPECT_NE(json.find("\"open\": \"true\""), std::string::npos);
  // Thread-name metadata gives each category a lane.
  EXPECT_NE(json.find("thread_name"), std::string::npos);
  (void)open;
}

TEST(BreakdownTest, SumsComponentsFromOneTrace) {
  SimTime now;
  SpanTracer tracer([&now] { return now; });
  const uint64_t root = tracer.BeginAt(SimTime(0), "run", "run.invoke");
  const uint64_t wait = tracer.BeginAt(SimTime(0), "exec", "exec.env_wait",
                                       {}, root);
  tracer.EndAt(wait, SimTime::Millis(30));
  const uint64_t compute = tracer.BeginAt(SimTime::Millis(30), "exec",
                                          "exec.compute", {}, root);
  tracer.EndAt(compute, SimTime::Millis(90));
  const uint64_t net = tracer.BeginAt(SimTime::Millis(30), "net",
                                      "net.input_transfer", {}, root);
  tracer.EndAt(net, SimTime::Millis(40));
  const uint64_t commit = tracer.BeginAt(SimTime::Millis(90), "dist",
                                         "dist.output_commit", {}, root);
  tracer.EndAt(commit, SimTime::Millis(100));
  tracer.EndAt(root, SimTime::Millis(100));

  // A second, unrelated trace must not leak into the breakdown.
  const uint64_t other = tracer.BeginAt(SimTime(0), "exec", "exec.compute");
  tracer.EndAt(other, SimTime::Hours(1));

  const uint64_t trace_id = tracer.SpanById(root)->trace_id;
  const LatencyBreakdown b = BreakdownFromSpans(tracer, trace_id);
  EXPECT_EQ(b.cold_start, SimTime::Millis(30));
  EXPECT_EQ(b.exec, SimTime::Millis(60));
  EXPECT_EQ(b.net, SimTime::Millis(10));
  EXPECT_EQ(b.consensus, SimTime::Millis(10));
  EXPECT_EQ(b.queue_wait, SimTime(0));
  EXPECT_EQ(b.total, SimTime::Millis(100));
  EXPECT_EQ(b.accounted(), SimTime::Millis(110));  // overlap: net ∥ compute

  const std::string table = b.Table();
  EXPECT_NE(table.find("cold-start"), std::string::npos);
  EXPECT_NE(table.find("consensus"), std::string::npos);
}

TEST(MetricsTest, LabelCardinalityBudgetFoldsIntoOverflowSeries) {
  MetricsRegistry metrics;
  metrics.SetLabelCardinalityLimit(2);
  for (int tenant = 0; tenant < 5; ++tenant) {
    metrics.IncrementCounter("core.tenant_runs",
                             {{"tenant", std::to_string(tenant)}});
  }
  // First two distinct label sets keep their own series; tenants 2..4 fold
  // into the single overflow aggregate instead of minting series.
  EXPECT_EQ(metrics.counter("core.tenant_runs", {{"tenant", "0"}}), 1);
  EXPECT_EQ(metrics.counter("core.tenant_runs", {{"tenant", "1"}}), 1);
  EXPECT_EQ(metrics.counter("core.tenant_runs", {{"overflow", "true"}}), 3);
  EXPECT_EQ(metrics.overflowed_series_events(), 3u);

  // Histograms share the same budget machinery, per base name.
  for (int tenant = 0; tenant < 4; ++tenant) {
    metrics.Observe("core.tenant_latency_ms",
                    {{"tenant", std::to_string(tenant)}}, 10.0 * tenant);
  }
  const MetricHistogram* overflow =
      metrics.histogram("core.tenant_latency_ms", {{"overflow", "true"}});
  ASSERT_NE(overflow, nullptr);
  EXPECT_EQ(overflow->count(), 2);
  EXPECT_EQ(metrics.overflowed_series_events(), 5u);

  // Unlabeled series and already-interned label sets are never folded.
  metrics.IncrementCounter("core.tenant_runs");
  metrics.IncrementCounter("core.tenant_runs", {{"tenant", "1"}});
  EXPECT_EQ(metrics.counter("core.tenant_runs"), 1);
  EXPECT_EQ(metrics.counter("core.tenant_runs", {{"tenant", "1"}}), 2);
  EXPECT_EQ(metrics.overflowed_series_events(), 5u);
}

TEST(FlightRecorderTest, RingWraparoundKeepsNewestRecords) {
  FlightRecorder rec(4);  // 4 slots per ring
  rec.EnsureRings(1);
  for (int i = 0; i < 6; ++i) {
    rec.RecordTrace(0, SimTime::Millis(i), "test",
                    "line " + std::to_string(i));
  }
  EXPECT_EQ(rec.total_recorded(), 6u);
  EXPECT_EQ(rec.retained(), 4u);
  EXPECT_EQ(rec.overwritten(), 2u);

  const std::vector<FlightRecorder::Record> merged = rec.MergedRecords();
  ASSERT_EQ(merged.size(), 4u);
  // The two oldest records were overwritten; the survivors come out in
  // emission order even though the ring's storage wrapped mid-way.
  for (size_t i = 0; i < merged.size(); ++i) {
    EXPECT_EQ(merged[i].time, SimTime::Millis(2 + i));
    EXPECT_EQ(std::string(merged[i].name),
              "line " + std::to_string(2 + i));
  }
}

TEST(FlightRecorderTest, MergeOrdersByTimeShardSeq) {
  FlightRecorder rec(8);
  rec.EnsureRings(3);
  // Emit out of time order across shards, with collisions on both time
  // (shards 1 and 2 at t=5ms) and (time, shard) (two shard-0 records at
  // t=7ms, disambiguated by per-ring seq).
  rec.RecordTrace(2, SimTime::Millis(5), "test", "shard2 t5");
  rec.RecordTrace(0, SimTime::Millis(7), "test", "shard0 t7 first");
  rec.RecordTrace(1, SimTime::Millis(5), "test", "shard1 t5");
  rec.RecordTrace(0, SimTime::Millis(3), "test", "shard0 t3");
  rec.RecordTrace(0, SimTime::Millis(7), "test", "shard0 t7 second");

  const std::vector<FlightRecorder::Record> merged = rec.MergedRecords();
  ASSERT_EQ(merged.size(), 5u);
  EXPECT_EQ(std::string(merged[0].name), "shard0 t3");
  EXPECT_EQ(std::string(merged[1].name), "shard1 t5");
  EXPECT_EQ(std::string(merged[2].name), "shard2 t5");
  EXPECT_EQ(std::string(merged[3].name), "shard0 t7 first");
  EXPECT_EQ(std::string(merged[4].name), "shard0 t7 second");
}

TEST(FlightRecorderTest, DisabledRecorderDropsAppends) {
  FlightRecorder rec(4);
  rec.EnsureRings(1);
  rec.set_enabled(false);
  rec.RecordTrace(0, SimTime::Millis(1), "test", "dropped");
  EXPECT_EQ(rec.total_recorded(), 0u);
  EXPECT_EQ(rec.retained(), 0u);
  rec.set_enabled(true);
  rec.RecordSpan(0, SimTime::Millis(1), SimTime::Millis(2), "test", "kept");
  EXPECT_EQ(rec.retained(), 1u);
  const std::string json = rec.ChromeTraceJson();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("kept"), std::string::npos);
  EXPECT_EQ(json.find("dropped"), std::string::npos);
}

}  // namespace
}  // namespace udc
