// Parallel simulation kernel unit tests: the SPSC channel protocol, the
// per-shard observability buffers and their canonical flush order, the
// kernel's serial/solo/window execution modes, and sharded actor traffic —
// everything below the full-scenario differentials in sim_kernel_test.cc.

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "src/actor/actor_system.h"
#include "src/common/strings.h"
#include "src/hw/topology.h"
#include "src/net/fabric.h"
#include "src/obs/exposition.h"
#include "src/obs/metrics.h"
#include "src/obs/shard_buffer.h"
#include "src/obs/span.h"
#include "src/sim/parallel_kernel.h"
#include "src/sim/simulation.h"
#include "src/sim/spsc_channel.h"

namespace udc {
namespace {

TEST(SpscChannelTest, CapacityRoundsUpToPowerOfTwo) {
  SpscChannel<int> tiny(1);
  EXPECT_EQ(tiny.capacity(), 2u);
  SpscChannel<int> odd(5);
  EXPECT_EQ(odd.capacity(), 8u);
  SpscChannel<int> exact(64);
  EXPECT_EQ(exact.capacity(), 64u);
}

TEST(SpscChannelTest, RingIsFifoAndBounded) {
  SpscChannel<int> ch(4);
  int out = 0;
  EXPECT_FALSE(ch.TryPop(&out));
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(ch.TryPush(int(i)));
  }
  EXPECT_FALSE(ch.TryPush(99));  // full
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(ch.TryPop(&out));
    EXPECT_EQ(out, i);
  }
  EXPECT_FALSE(ch.TryPop(&out));
  EXPECT_TRUE(ch.empty());
}

TEST(SpscChannelTest, PushSpillsBeyondRingAndDrainKeepsPushOrder) {
  SpscChannel<int> ch(4);
  for (int i = 0; i < 10; ++i) {
    ch.Push(int(i));
  }
  EXPECT_EQ(ch.spill_count(), 6u);  // ring holds 4, the rest spilled
  std::vector<int> drained;
  ch.DrainAll(&drained);
  EXPECT_EQ(drained, (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}));
  EXPECT_TRUE(ch.empty());
  // The spill total is a lifetime diagnostic; a drain does not reset it.
  EXPECT_EQ(ch.spill_count(), 6u);
}

TEST(SpscChannelTest, ConcurrentProducerConsumerDeliversEverythingInOrder) {
  constexpr int kItems = 20000;
  SpscChannel<int> ch(128);
  std::vector<int> received;
  received.reserve(kItems);
  std::thread consumer([&] {
    int out = 0;
    while (static_cast<int>(received.size()) < kItems) {
      if (ch.TryPop(&out)) {
        received.push_back(out);
      }
    }
  });
  for (int i = 0; i < kItems; ++i) {
    while (!ch.TryPush(int(i))) {
    }
  }
  consumer.join();
  ASSERT_EQ(received.size(), static_cast<size_t>(kItems));
  for (int i = 0; i < kItems; ++i) {
    ASSERT_EQ(received[i], i);
  }
}

TEST(ShardObsBufferTest, FlushAppliesRecordsInTimeShardSeqOrder) {
  MetricsRegistry metrics;
  SpanTracer spans([] { return SimTime(0); });
  std::vector<std::string> lines;
  ObsFlushTargets targets;
  targets.metrics = &metrics;
  targets.spans = &spans;
  targets.trace = [&](SimTime t, std::string_view category,
                      std::string_view detail) {
    lines.push_back(StrFormat("%lld %s %s", static_cast<long long>(t.micros()),
                              std::string(category).c_str(),
                              std::string(detail).c_str()));
  };

  // Shard ids start at 1; entry 0 (the coordinator) writes sinks directly.
  ShardObsBuffer shard1;
  ShardObsBuffer shard2;
  shard1.TraceLine(SimTime::Micros(5), "s1", "late");
  shard1.TraceLine(SimTime::Micros(1), "s1", "early");
  shard1.TraceLine(SimTime::Micros(2), "s1", "tie");
  shard2.TraceLine(SimTime::Micros(3), "s2", "mid");
  shard2.TraceLine(SimTime::Micros(2), "s2", "tie");

  ObsFlusher flusher;
  std::vector<ShardObsBuffer*> buffers = {nullptr, &shard1, &shard2};
  flusher.Flush(buffers, targets);

  // Time first; the same-time tie goes to the lower shard id.
  EXPECT_EQ(lines, (std::vector<std::string>{"1 s1 early", "2 s1 tie",
                                             "2 s2 tie", "3 s2 mid",
                                             "5 s1 late"}));
  EXPECT_TRUE(shard1.empty());
  EXPECT_TRUE(shard2.empty());
  lines.clear();
  flusher.Flush(buffers, targets);  // drained buffers flush to nothing
  EXPECT_TRUE(lines.empty());
}

TEST(ShardObsBufferTest, SameShardSameTimeKeepsEmissionOrder) {
  std::vector<std::string> lines;
  ObsFlushTargets targets;
  targets.trace = [&](SimTime, std::string_view, std::string_view detail) {
    lines.push_back(std::string(detail));
  };
  ShardObsBuffer shard1;
  shard1.TraceLine(SimTime::Micros(4), "t", "first");
  shard1.TraceLine(SimTime::Micros(4), "t", "second");
  shard1.TraceLine(SimTime::Micros(4), "t", "third");
  ObsFlusher flusher;
  std::vector<ShardObsBuffer*> buffers = {nullptr, &shard1};
  flusher.Flush(buffers, targets);
  EXPECT_EQ(lines, (std::vector<std::string>{"first", "second", "third"}));
}

TEST(ShardObsBufferTest, CountersAndGaugesLandInTheRegistry) {
  MetricsRegistry metrics;
  ObsFlushTargets targets;
  targets.metrics = &metrics;
  const CounterHandle hits = metrics.CounterSeries("test.hits");
  const GaugeHandle depth = metrics.GaugeSeries("test.depth");

  ShardObsBuffer shard1;
  shard1.CounterAdd(hits, 3, SimTime::Micros(1));
  shard1.CounterAdd(hits, 4, SimTime::Micros(2));
  shard1.GaugeSet(depth, 10.0, SimTime::Micros(1));
  shard1.GaugeAdd(depth, 2.5, SimTime::Micros(3));
  ObsFlusher flusher;
  std::vector<ShardObsBuffer*> buffers = {nullptr, &shard1};
  flusher.Flush(buffers, targets);

  EXPECT_EQ(metrics.counter("test.hits"), 7);
  EXPECT_DOUBLE_EQ(metrics.gauge("test.depth"), 12.5);
}

TEST(ShardObsBufferTest, CompletedSpanFlushesAsClosedInterval) {
  MetricsRegistry metrics;
  SpanTracer spans([] { return SimTime(0); });
  ObsFlushTargets targets;
  targets.metrics = &metrics;
  targets.spans = &spans;

  const uint32_t label_set = spans.InternLabelSet({{"type", "test.msg"}});
  ShardObsBuffer shard1;
  shard1.CompletedSpan(SimTime::Micros(10), SimTime::Micros(16), "net",
                       "net.message", label_set);
  shard1.CompletedSpanDynamic(SimTime::Micros(20), SimTime::Micros(21), "net",
                              "net.message", "odd.type", /*dropped=*/true);
  ObsFlusher flusher;
  std::vector<ShardObsBuffer*> buffers = {nullptr, &shard1};
  flusher.Flush(buffers, targets);

  ASSERT_EQ(spans.closed_order().size(), 2u);
  const Span* interned = spans.SpanById(spans.closed_order()[0]);
  ASSERT_NE(interned, nullptr);
  EXPECT_EQ(interned->start, SimTime::Micros(10));
  EXPECT_EQ(interned->end, SimTime::Micros(16));
  EXPECT_NE(interned->Detail().find("type=test.msg"), std::string::npos);
  const Span* dynamic = spans.SpanById(spans.closed_order()[1]);
  ASSERT_NE(dynamic, nullptr);
  EXPECT_NE(dynamic->Detail().find("type=odd.type"), std::string::npos);
  EXPECT_NE(dynamic->Detail().find("dropped=true"), std::string::npos);
}

// An unsharded kParallel run must never open a window: the serial fast path
// is the kFast inner loop, and windows_run() proves it stayed that way.
TEST(ParallelKernelTest, UnshardedRunStaysOnSerialFastPath) {
  Simulation sim(1, SimKernel::kParallel);
  int fired = 0;
  for (int i = 0; i < 100; ++i) {
    sim.At(SimTime::Micros(i * 3), [&] { ++fired; });
  }
  sim.RunToCompletion();
  EXPECT_EQ(fired, 100);
  EXPECT_EQ(sim.events_executed(), 100u);
  EXPECT_EQ(sim.parallel()->windows_run(), 0u);
  EXPECT_FALSE(sim.parallel()->HasShardedWork());
}

TEST(ParallelKernelTest, ShardedEventsRunInWindowsWithLocalClocks) {
  ParallelConfig config;
  config.shards = 2;
  config.threads = 2;
  Simulation sim(1, SimKernel::kParallel, config);
  ParallelKernel* kernel = sim.parallel();
  // Per-shard logs: each vector is only written by its own shard's thread.
  std::vector<SimTime> shard1_times, shard2_times;
  for (int i = 0; i < 5; ++i) {
    kernel->ScheduleOnShard(
        1, SimTime::Micros(10 + 20 * i),
        InlineCallback([&shard1_times, &sim] { shard1_times.push_back(sim.now()); }));
    kernel->ScheduleOnShard(
        2, SimTime::Micros(11 + 20 * i),
        InlineCallback([&shard2_times, &sim] { shard2_times.push_back(sim.now()); }));
  }
  sim.RunToCompletion();
  ASSERT_EQ(shard1_times.size(), 5u);
  ASSERT_EQ(shard2_times.size(), 5u);
  for (int i = 0; i < 5; ++i) {
    // sim.now() on a worker shard reads that shard's local clock.
    EXPECT_EQ(shard1_times[i], SimTime::Micros(10 + 20 * i));
    EXPECT_EQ(shard2_times[i], SimTime::Micros(11 + 20 * i));
  }
  EXPECT_EQ(sim.events_executed(), 10u);
  EXPECT_GT(kernel->windows_run(), 0u);
  EXPECT_EQ(sim.now(), SimTime::Micros(11 + 20 * 4));
}

// Events scheduled from inside a window onto another shard cross on the
// SPSC channels and must still execute, in time order, on the destination.
TEST(ParallelKernelTest, CrossShardSchedulingFromInsideWindows) {
  ParallelConfig config;
  config.shards = 2;
  config.threads = 2;
  Simulation sim(1, SimKernel::kParallel, config);
  ParallelKernel* kernel = sim.parallel();
  const SimTime hop = kernel->lookahead();
  // Bounce an event shard 1 -> 2 -> 1 -> ... eight times; only one shard is
  // ever active, so the counter needs no synchronization beyond the barrier.
  int bounces = 0;
  std::function<void()> bounce = [&] {
    if (++bounces >= 8) {
      return;
    }
    const uint32_t dest = (bounces % 2 == 0) ? 1u : 2u;
    kernel->ScheduleOnShard(dest, sim.now() + hop, InlineCallback([&] { bounce(); }));
  };
  kernel->ScheduleOnShard(1, SimTime::Micros(1), InlineCallback([&] { bounce(); }));
  sim.RunToCompletion();
  EXPECT_EQ(bounces, 8);
  EXPECT_EQ(sim.events_executed(), 8u);
}

TEST(ParallelKernelTest, RunUntilStopsAtDeadlineAndKeepsLaterEvents) {
  ParallelConfig config;
  config.shards = 2;
  config.threads = 1;
  Simulation sim(1, SimKernel::kParallel, config);
  ParallelKernel* kernel = sim.parallel();
  std::vector<int> ran;  // single worker thread: no concurrent writers
  kernel->ScheduleOnShard(1, SimTime::Millis(1),
                          InlineCallback([&] { ran.push_back(1); }));
  kernel->ScheduleOnShard(1, SimTime::Millis(30),
                          InlineCallback([&] { ran.push_back(30); }));
  sim.RunUntil(SimTime::Millis(10));
  EXPECT_EQ(ran, (std::vector<int>{1}));
  EXPECT_EQ(sim.now(), SimTime::Millis(10));
  EXPECT_TRUE(kernel->HasShardedWork());  // the 30 ms event is still pending
  sim.RunToCompletion();
  EXPECT_EQ(ran, (std::vector<int>{1, 30}));
  EXPECT_EQ(sim.now(), SimTime::Millis(30));
}

TEST(ParallelKernelTest, StepRunsOneEventSeriallyOrOneWindowSharded) {
  ParallelConfig config;
  config.shards = 2;
  config.threads = 1;
  Simulation sim(1, SimKernel::kParallel, config);
  int serial_fired = 0;
  sim.At(SimTime::Micros(1), [&] { ++serial_fired; });
  sim.At(SimTime::Micros(2), [&] { ++serial_fired; });
  EXPECT_TRUE(sim.Step());
  EXPECT_EQ(serial_fired, 1);  // serial phase: exactly one event per step
  EXPECT_TRUE(sim.Step());
  EXPECT_EQ(serial_fired, 2);
  EXPECT_FALSE(sim.Step());  // idle

  sim.parallel()->ScheduleOnShard(1, SimTime::Micros(10),
                                  InlineCallback([&] { ++serial_fired; }));
  EXPECT_TRUE(sim.Step());  // sharded phase: one whole window
  EXPECT_EQ(serial_fired, 3);
  EXPECT_FALSE(sim.Step());
}

// Trace lines emitted from worker shards are buffered and merged at the
// barrier in canonical order — the dump must not depend on the thread count.
TEST(ParallelKernelTest, WorkerShardTraceIsThreadCountInvariant) {
  auto run = [](int threads) {
    ParallelConfig config;
    config.shards = 4;
    config.threads = threads;
    Simulation sim(1, SimKernel::kParallel, config);
    for (uint32_t shard = 1; shard <= 4; ++shard) {
      for (int i = 0; i < 20; ++i) {
        // Distinct times per (shard, i): shards offset by 1 us, steps by 40.
        const SimTime when = SimTime::Micros(shard + 40 * i);
        sim.parallel()->ScheduleOnShard(
            shard, when, InlineCallback([&sim, shard, i] {
              sim.Trace("shard", StrFormat("s=%u i=%d", shard, i));
            }));
      }
    }
    sim.RunToCompletion();
    return sim.trace().Dump();
  };
  const std::string one = run(1);
  EXPECT_NE(one.find("s=1 i=0"), std::string::npos);
  EXPECT_NE(one.find("s=4 i=19"), std::string::npos);
  EXPECT_EQ(run(2), one);
  EXPECT_EQ(run(4), one);
  EXPECT_EQ(run(8), one);  // more threads than shards clamps cleanly
}

// Sharded actor traffic: a ping-pong pair split across two racks/shards
// must report the same processed counts and metrics as the kFast run.
std::pair<uint64_t, std::string> RunActorPingPong(SimKernel kernel,
                                                  int threads) {
  ParallelConfig config;
  config.shards = 2;
  config.threads = threads;
  Simulation sim(3, kernel, config);
  Topology topo;
  const int r0 = topo.AddRack();
  const int r1 = topo.AddRack();
  const NodeId n0 = topo.AddNode(r0, NodeRole::kDevice);
  const NodeId n1 = topo.AddNode(r1, NodeRole::kDevice);
  if (sim.parallel() != nullptr) {
    sim.parallel()->AssignRack(r0, 1);
    sim.parallel()->AssignRack(r1, 2);
  }
  ActorSystem actors(&sim, &topo);
  constexpr int kRounds = 40;
  int volleys = 0;
  ActorId ping, pong;
  ping = actors.Spawn(n0, [&](ActorContext& ctx, const ActorMessage&) {
    if (++volleys < kRounds) {
      ctx.Send(pong, "ball", "", Bytes::B(0));
    }
  });
  pong = actors.Spawn(n1, [&](ActorContext& ctx, const ActorMessage&) {
    if (++volleys < kRounds) {
      ctx.Send(ping, "ball", "", Bytes::B(0));
    }
  });
  actors.Inject(ping, "ball", "", Bytes::B(0));
  sim.RunToCompletion();
  EXPECT_EQ(volleys, kRounds);
  EXPECT_EQ(actors.messages_processed(), static_cast<uint64_t>(kRounds));
  return {sim.events_executed(), PrometheusExposition(sim.metrics())};
}

TEST(ParallelActorTest, CrossShardPingPongMatchesFastAtEveryThreadCount) {
  const auto fast = RunActorPingPong(SimKernel::kFast, 1);
  EXPECT_GT(fast.first, 0u);
  for (int threads : {1, 2}) {
    const auto parallel = RunActorPingPong(SimKernel::kParallel, threads);
    // events_executed differs by exactly the seeding Inject: kFast delivers
    // it synchronously, the sharded path schedules it onto the actor's shard.
    EXPECT_EQ(parallel.first, fast.first + 1) << "threads=" << threads;
    EXPECT_EQ(parallel.second, fast.second) << "threads=" << threads;
  }
}

// A send to an actor id that was never spawned has no owning shard, so it
// must drop on the *sending* shard: routing it to shard 0 at zero delay
// from inside a window would violate the lookahead constraint.
TEST(ParallelActorTest, SendToUnknownActorFromWorkerShardDropsLocally) {
  ParallelConfig config;
  config.shards = 2;
  config.threads = 2;
  Simulation sim(5, SimKernel::kParallel, config);
  Topology topo;
  const int r0 = topo.AddRack();
  const NodeId n0 = topo.AddNode(r0, NodeRole::kDevice);
  sim.parallel()->AssignRack(r0, 1);
  ActorSystem actors(&sim, &topo);
  const ActorId ghost = ActorId(999999);
  const ActorId talker =
      actors.Spawn(n0, [&](ActorContext& ctx, const ActorMessage&) {
        ctx.Send(ghost, "into.the.void", "", Bytes::B(0));
      });
  actors.Inject(talker, "go", "", Bytes::B(0));
  sim.RunToCompletion();
  EXPECT_EQ(actors.messages_processed(), 1u);
  EXPECT_EQ(sim.metrics().counter("actor.messages_dropped"), 1);
}

// A Fabric destroyed before the simulation's next run must take its window-
// barrier hook with it; subsequent sharded windows touch nothing dangling
// (the sanitizer jobs catch a regression here as a use-after-free).
TEST(ParallelKernelTest, BarrierHookDeregistersWhenFabricDies) {
  ParallelConfig config;
  config.shards = 2;
  config.threads = 1;
  Simulation sim(1, SimKernel::kParallel, config);
  Topology topo;
  const int r0 = topo.AddRack();
  const NodeId a = topo.AddNode(r0, NodeRole::kDevice);
  const NodeId b = topo.AddNode(r0, NodeRole::kDevice);
  sim.parallel()->AssignRack(r0, 1);
  {
    Fabric scoped(&sim, &topo);
    scoped.Bind(b, [](const Message&) {});
    scoped.Send(a, b, "probe", "", Bytes::B(16));
    sim.RunToCompletion();
    EXPECT_EQ(scoped.messages_delivered(), 1u);
  }
  int fired = 0;
  sim.parallel()->ScheduleOnShard(1, sim.now() + SimTime::Millis(1),
                                  InlineCallback([&] { ++fired; }));
  sim.RunToCompletion();
  EXPECT_EQ(fired, 1);
}

// ---------------------------------------------------------------------------
// Adaptive window controller.

// Two independent chains with no cross-shard traffic at all: every adapt
// decision sees zero merged channel events, so the window must walk from the
// floor to the declared bound in multiplicative steps, and the run needs far
// fewer barriers than the fixed-window configuration.
TEST(ParallelKernelTest, AdaptiveWindowWidensUnderSparseCrossTraffic) {
  auto run = [](SimTime bound, uint64_t* windows, SimTime* eff) {
    ParallelConfig config;
    config.shards = 2;
    config.threads = 1;
    config.lookahead = SimTime::Micros(4);
    config.lookahead_bound = bound;
    Simulation sim(1, SimKernel::kParallel, config);
    ParallelKernel* kernel = sim.parallel();
    for (uint32_t s = 1; s <= 2; ++s) {
      struct Chain {
        Simulation* sim;
        int left = 4000;
        void Fire() {
          if (--left > 0) {
            sim->After(SimTime::Micros(1), [this] { Fire(); });
          }
        }
      };
      static Chain chains[2];
      chains[s - 1] = Chain{&sim};
      Chain* chain = &chains[s - 1];
      kernel->ScheduleOnShard(s, SimTime::Micros(s),
                              InlineCallback([chain] { chain->Fire(); }));
    }
    sim.RunToCompletion();
    *windows = kernel->windows_run();
    *eff = kernel->Stats().effective_lookahead;
  };
  uint64_t fixed_windows = 0, adaptive_windows = 0;
  SimTime fixed_eff, adaptive_eff;
  run(SimTime(0), &fixed_windows, &fixed_eff);
  run(SimTime::Micros(64), &adaptive_windows, &adaptive_eff);
  // Without a bound the width never moves off the floor.
  EXPECT_EQ(fixed_eff, SimTime::Micros(4));
  // With one, the controller reaches the bound and the barrier count drops.
  EXPECT_EQ(adaptive_eff, SimTime::Micros(64));
  EXPECT_LT(adaptive_windows, fixed_windows / 4);
}

// Heavy cross-shard traffic (every event hops shards) must push the window
// back down to the floor even after it has widened.
TEST(ParallelKernelTest, AdaptiveWindowShrinksUnderCrossTraffic) {
  ParallelConfig config;
  config.shards = 2;
  config.threads = 1;
  config.lookahead = SimTime::Micros(4);
  config.lookahead_bound = SimTime::Micros(64);
  Simulation sim(1, SimKernel::kParallel, config);
  ParallelKernel* kernel = sim.parallel();
  // Phase A: quiet local chain widens the window.
  struct Chain {
    Simulation* sim;
    int left = 2000;
    void Fire() {
      if (--left > 0) {
        sim->After(SimTime::Micros(1), [this] { Fire(); });
      }
    }
  };
  static Chain quiet;
  quiet = Chain{&sim};
  kernel->ScheduleOnShard(1, SimTime::Micros(1),
                          InlineCallback([] { quiet.Fire(); }));
  sim.RunToCompletion();
  EXPECT_GT(kernel->Stats().effective_lookahead, SimTime::Micros(4));
  // Phase B: a ping-pong where every event crosses shards; the 64 us hop
  // clears any window width, and the cross fraction (100%) forces shrink
  // decisions until the width is back at the floor.
  struct Bouncer {
    Simulation* sim;
    ParallelKernel* kernel;
    int left = 2000;
    void Fire() {
      if (--left > 0) {
        const uint32_t dest = ParallelKernel::CurrentShard() == 1 ? 2u : 1u;
        Bouncer* self = this;
        kernel->ScheduleOnShard(dest, sim->now() + SimTime::Micros(64),
                                InlineCallback([self] { self->Fire(); }));
      }
    }
  };
  static Bouncer bouncer;
  bouncer = Bouncer{&sim, kernel};
  kernel->ScheduleOnShard(1, sim.now() + SimTime::Micros(1),
                          InlineCallback([] { bouncer.Fire(); }));
  sim.RunToCompletion();
  EXPECT_EQ(kernel->Stats().effective_lookahead, SimTime::Micros(4));
}

// ---------------------------------------------------------------------------
// Obs flush batching.

// With deferral enabled (the default), a low-traffic run must flush far
// fewer times than it runs windows — and the registry contents at the end
// must be identical to a flush-every-window configuration.
TEST(ParallelKernelTest, FlushBatchingDefersWithoutChangingTelemetry) {
  auto run = [](uint32_t max_defer, uint64_t* windows, uint64_t* flushes) {
    ParallelConfig config;
    config.shards = 2;
    config.threads = 1;
    config.flush_max_defer = max_defer;
    Simulation sim(1, SimKernel::kParallel, config);
    ParallelKernel* kernel = sim.parallel();
    const CounterHandle counter = sim.metrics().CounterSeries("test.batch_total");
    struct Chain {
      Simulation* sim;
      CounterHandle counter;
      int left = 500;
      void Fire() {
        ShardObsBuffer* obs = ParallelKernel::CurrentObsBuffer();
        obs->CounterAdd(counter, 1, sim->now());
        if (--left > 0) {
          sim->After(SimTime::Micros(2), [this] { Fire(); });
        }
      }
    };
    static Chain chain;
    chain = Chain{&sim, counter};
    kernel->ScheduleOnShard(1, SimTime::Micros(1),
                            InlineCallback([] { chain.Fire(); }));
    sim.RunToCompletion();
    *windows = kernel->windows_run();
    *flushes = kernel->Stats().flushes;
    EXPECT_EQ(sim.metrics().value(counter), 500);
    return PrometheusExposition(sim.metrics());
  };
  uint64_t batched_windows = 0, batched_flushes = 0;
  uint64_t eager_windows = 0, eager_flushes = 0;
  const std::string batched = run(8, &batched_windows, &batched_flushes);
  const std::string eager = run(1, &eager_windows, &eager_flushes);
  EXPECT_EQ(batched, eager);
  EXPECT_GE(eager_flushes, eager_windows);  // every window flushes
  EXPECT_LT(batched_flushes, batched_windows / 4);
}

// ---------------------------------------------------------------------------
// Work stealing, stats, and the rebalancer's link lifecycle.

TEST(ParallelKernelTest, StatsExposePerShardEventsAndClaims) {
  ParallelConfig config;
  config.shards = 4;
  config.threads = 2;
  Simulation sim(1, SimKernel::kParallel, config);
  ParallelKernel* kernel = sim.parallel();
  // Shard 1 gets 3x the events of shards 2..4.
  struct Chain {
    Simulation* sim;
    int left = 0;
    void Fire() {
      if (--left > 0) {
        sim->After(SimTime::Micros(1), [this] { Fire(); });
      }
    }
  };
  static Chain chains[6];
  int next_chain = 0;
  auto start = [&](uint32_t shard, int fires) {
    chains[next_chain] = Chain{&sim, fires};
    Chain* chain = &chains[next_chain++];
    kernel->ScheduleOnShard(shard, SimTime::Micros(1),
                            InlineCallback([chain] { chain->Fire(); }));
  };
  start(1, 600);
  start(1, 600);
  start(1, 600);
  start(2, 600);
  start(3, 600);
  start(4, 600);
  sim.RunToCompletion();
  const ParallelKernelStats stats = kernel->Stats();
  const std::vector<uint64_t> per_shard = kernel->PerShardEvents();
  ASSERT_EQ(per_shard.size(), 4u);
  EXPECT_EQ(per_shard[0], 1800u);
  EXPECT_EQ(per_shard[1], 600u);
  // imbalance = max/mean = 1800 / (3600/4) = 2.0
  EXPECT_NEAR(stats.imbalance_ratio, 2.0, 0.01);
  EXPECT_GT(stats.steal_claims, 0u);
  EXPECT_GT(stats.windows, 0u);
}

// The full rebalance lifecycle at kernel level: a hot shard owning two
// racks sheds its cross-shard-attributed rack to the coldest shard, the
// migration link keeps the pair on one claim unit, and the map change is a
// pure function of sim state (same trajectory at any thread count —
// covered by the differential test; here we check the mechanics).
TEST(ParallelKernelTest, RebalanceMigratesAttributedRackOffHotShard) {
  ParallelConfig config;
  config.shards = 3;
  config.threads = 1;
  config.rebalance_period = 16;
  Simulation sim(1, SimKernel::kParallel, config);
  ParallelKernel* kernel = sim.parallel();
  kernel->AssignRack(0, 1);
  kernel->AssignRack(1, 1);  // hot shard owns two racks
  kernel->AssignRack(2, 2);
  kernel->AssignRack(3, 3);
  EXPECT_EQ(kernel->ShardOfRack(0), 1u);
  // Local load on shard 1 (attributed to rack 1's entities, but scheduled
  // shard-locally so it carries no rack tag — like intra-rack traffic).
  struct Chain {
    Simulation* sim;
    int left = 3000;
    void Fire() {
      if (--left > 0) {
        sim->After(SimTime::Micros(1), [this] { Fire(); });
      }
    }
  };
  static Chain hot;
  hot = Chain{&sim};
  kernel->ScheduleOnShard(1, SimTime::Micros(1),
                          InlineCallback([] { hot.Fire(); }));
  // Cross-shard feeder attributing load to rack 0: shard 3 -> shard 1,
  // rack tag 0, one event per lookahead.
  struct Feeder {
    Simulation* sim;
    ParallelKernel* kernel;
    SimTime hop;
    int left = 500;
    void Fire() {
      if (--left > 0) {
        Feeder* self = this;
        // Re-arm on shard 3, then poke rack 0 on shard 1.
        kernel->ScheduleOnShard(3, sim->now() + hop,
                                InlineCallback([self] { self->Fire(); }),
                                /*rack=*/3);
        kernel->ScheduleOnShard(1, sim->now() + hop, InlineCallback([] {}),
                                /*rack=*/0);
      }
    }
  };
  static Feeder feeder;
  feeder = Feeder{&sim, kernel, kernel->lookahead()};
  kernel->ScheduleOnShard(3, SimTime::Micros(2),
                          InlineCallback([] { feeder.Fire(); }));
  sim.RunToCompletion();
  const ParallelKernelStats stats = kernel->Stats();
  EXPECT_GE(stats.rebalances, 1u);
  // Rack 0 (the only rack on the hot shard with attributed cross-shard
  // load) moved off shard 1; rack 1 stayed.
  EXPECT_NE(kernel->ShardOfRack(0), 1u);
  EXPECT_EQ(kernel->ShardOfRack(1), 1u);
}

}  // namespace
}  // namespace udc
