// Placement-transaction tests: the plan/commit/abort contract
// (src/core/placement_txn.h), the engine's metrics, PoolById, ref-counted
// attestation provisioning, warm-slot-exact launch cancellation, batched
// deploys — and a randomized atomicity property test that drives deploys
// into pool exhaustion and asserts a failed deploy leaves the datacenter,
// environment manager and attestation registry byte-identical to the
// pre-deploy snapshot.

#include <gtest/gtest.h>

#include <array>
#include <memory>
#include <string>
#include <vector>

#include "src/core/placement_engine.h"
#include "src/core/placement_txn.h"
#include "src/core/udc_cloud.h"
#include "src/crypto/hmac.h"
#include "src/workload/medical.h"
#include "src/workload/microservices.h"

namespace udc {
namespace {

class PlacementTxnTest : public ::testing::Test {
 protected:
  PlacementTxnTest()
      : dc_(DatacenterConfig{.racks = 2}), envs_(&sim_),
        attest_(&sim_, KeyFromString("txn-test-vendor")),
        engine_(&sim_, &dc_, &envs_, &attest_) {}

  int64_t CpuAllocated() const {
    return dc_.pool(DeviceKind::kCpuBlade).TotalAllocated();
  }

  Simulation sim_;
  DisaggregatedDatacenter dc_;
  EnvManager envs_;
  AttestationService attest_;
  PlacementEngine engine_;
};

TEST_F(PlacementTxnTest, AbortReleasesStagedAllocations) {
  PlacementTxn txn = engine_.Begin("test");
  auto alloc = txn.Allocate(DeviceKind::kCpuBlade, TenantId(1), 1000,
                            AllocationConstraints{});
  ASSERT_TRUE(alloc.ok());
  EXPECT_EQ(CpuAllocated(), 1000);
  txn.Abort();
  EXPECT_EQ(CpuAllocated(), 0);
  EXPECT_EQ(txn.state(), PlacementTxn::State::kAborted);
  EXPECT_EQ(sim_.metrics().counter("core.txn_aborted"), 1);
  EXPECT_EQ(sim_.metrics().counter("core.txn_ops_undone"), 1);
}

TEST_F(PlacementTxnTest, CommitKeepsAllocationsAndCountsOps) {
  PlacementTxn txn = engine_.Begin("test");
  ASSERT_TRUE(txn.Allocate(DeviceKind::kCpuBlade, TenantId(1), 500,
                           AllocationConstraints{})
                  .ok());
  ASSERT_TRUE(txn.Allocate(DeviceKind::kDramModule, TenantId(1), 1 << 20,
                           AllocationConstraints{})
                  .ok());
  EXPECT_TRUE(txn.Commit().ok());
  EXPECT_EQ(txn.state(), PlacementTxn::State::kCommitted);
  EXPECT_EQ(CpuAllocated(), 500);
  EXPECT_EQ(sim_.metrics().counter("core.txn_committed"), 1);
  EXPECT_EQ(sim_.metrics().counter("core.txn_ops_staged"), 2);
  EXPECT_EQ(sim_.metrics().counter("core.txn_ops_undone"), 0);
}

TEST_F(PlacementTxnTest, DestructorAbortsOpenTransaction) {
  {
    PlacementTxn txn = engine_.Begin("test");
    ASSERT_TRUE(txn.Allocate(DeviceKind::kCpuBlade, TenantId(1), 1000,
                             AllocationConstraints{})
                    .ok());
    EXPECT_EQ(CpuAllocated(), 1000);
  }  // txn destroyed while open
  EXPECT_EQ(CpuAllocated(), 0);
  EXPECT_EQ(sim_.metrics().counter("core.txn_aborted"), 1);
}

TEST_F(PlacementTxnTest, AbortRunsUndosInReverseStagingOrder) {
  std::vector<int> order;
  PlacementTxn txn = engine_.Begin("test");
  txn.StageUndo([&order] { order.push_back(1); });
  txn.StageUndo([&order] { order.push_back(2); });
  txn.StageUndo([&order] { order.push_back(3); });
  txn.Abort();
  EXPECT_EQ(order, (std::vector<int>{3, 2, 1}));
}

TEST_F(PlacementTxnTest, StageReleaseAppliesOnCommitOnly) {
  PlacementTxn setup = engine_.Begin("test");
  auto alloc = setup.Allocate(DeviceKind::kCpuBlade, TenantId(1), 1000,
                              AllocationConstraints{});
  ASSERT_TRUE(alloc.ok());
  ASSERT_TRUE(setup.Commit().ok());

  {
    PlacementTxn aborted = engine_.Begin("test");
    aborted.StageRelease(*alloc);
    EXPECT_EQ(CpuAllocated(), 1000);
    aborted.Abort();
    // Dropped, not applied: the allocation survives the abort.
    EXPECT_EQ(CpuAllocated(), 1000);
  }

  PlacementTxn committed = engine_.Begin("test");
  committed.StageRelease(*alloc);
  EXPECT_EQ(CpuAllocated(), 1000);
  EXPECT_TRUE(committed.Commit().ok());
  EXPECT_EQ(CpuAllocated(), 0);
}

TEST_F(PlacementTxnTest, StageStopAppliesOnCommitOnly) {
  PlacementTxn setup = engine_.Begin("test");
  ExecEnvironment* env =
      setup.Launch(TenantId(1), NodeId(1), LaunchOptions{}, nullptr);
  ASSERT_NE(env, nullptr);
  ASSERT_TRUE(setup.Commit().ok());
  EXPECT_EQ(envs_.live_count(), 1u);

  {
    PlacementTxn aborted = engine_.Begin("test");
    aborted.StageStop(env);
    aborted.Abort();
    EXPECT_EQ(envs_.live_count(), 1u);  // still running
  }

  PlacementTxn committed = engine_.Begin("test");
  committed.StageStop(env);
  EXPECT_TRUE(committed.Commit().ok());
  EXPECT_EQ(envs_.live_count(), 0u);
}

TEST_F(PlacementTxnTest, AbortCancelsLaunchAndRefundsWarmSlot) {
  envs_.Prewarm(EnvKind::kContainer, TenantId(1), 1);
  ASSERT_EQ(envs_.WarmSlots(EnvKind::kContainer, TenantId(1)), 1);

  PlacementTxn txn = engine_.Begin("test");
  ExecEnvironment* env =
      txn.Launch(TenantId(1), NodeId(1), LaunchOptions{}, nullptr);
  ASSERT_NE(env, nullptr);
  EXPECT_TRUE(env->started_warm());
  EXPECT_EQ(envs_.WarmSlots(EnvKind::kContainer, TenantId(1)), 0);
  EXPECT_EQ(envs_.live_count(), 1u);

  txn.Abort();
  // The launch is cancelled and the warm slot it consumed is refunded, so
  // the warm pool is exactly as the transaction found it.
  EXPECT_EQ(envs_.live_count(), 0u);
  EXPECT_EQ(envs_.WarmSlots(EnvKind::kContainer, TenantId(1)), 1);
  // The pending ready event must no-op for the reaped environment.
  sim_.RunToCompletion();
}

TEST(StoreTxnTest, AbortRestoresStoreRefcountsAndWarmCreditsExactly) {
  // Same abort contract, content-addressed store backend: cancelling a
  // launch must return the consumed slot to its source rack and unwind the
  // content refcount exactly — a placement abort is invisible to the store.
  Simulation sim;
  DisaggregatedDatacenter dc(DatacenterConfig{.racks = 2});
  EnvStoreConfig store_config;
  store_config.enabled = true;
  store_config.share_across_tenants = true;
  EnvManager envs(&sim, store_config);
  envs.set_topology(&dc.topology());
  AttestationService attest(&sim, KeyFromString("txn-test-vendor"));
  PlacementEngine engine(&sim, &dc, &envs, &attest);

  LaunchOptions options;
  options.kind = EnvKind::kTeeEnclave;
  options.image = "shared-model";
  envs.Prewarm(options.kind, TenantId(1), 1, options.image);
  const EnvStore* store = envs.store();
  const Sha256Digest digest = store->KeyDigest(
      options.kind, TenancyMode::kShared, TenantId(1), options.image);
  const int64_t refs_before = store->ContentRefs(digest);
  const int64_t slots_before = store->SlotsOnRack(digest, 0);
  ASSERT_EQ(slots_before, 1);

  PlacementTxn txn = engine.Begin("store_abort");
  // Different tenant, same content: the launch consumes the shared slot.
  ExecEnvironment* env = txn.Launch(TenantId(2), NodeId(1), options, nullptr);
  ASSERT_NE(env, nullptr);
  EXPECT_EQ(env->start_mode(), EnvStartMode::kWarm);
  EXPECT_EQ(store->SlotsOnRack(digest, 0), 0);
  EXPECT_EQ(store->live_env_refs(), 1);

  txn.Abort();
  EXPECT_EQ(envs.live_count(), 0u);
  EXPECT_EQ(store->SlotsOnRack(digest, 0), slots_before);
  EXPECT_EQ(store->ContentRefs(digest), refs_before);
  EXPECT_EQ(store->live_env_refs(), 0);
  sim.RunToCompletion();  // pending ready event must no-op
}

TEST_F(PlacementTxnTest, AbortRetiresProvisionedIdentities) {
  PlacementTxn txn = engine_.Begin("test");
  txn.Provision(7);
  EXPECT_TRUE(attest_.IsProvisioned(7));
  txn.Abort();
  EXPECT_FALSE(attest_.IsProvisioned(7));
  EXPECT_EQ(attest_.provisioned_count(), 0u);
}

TEST_F(PlacementTxnTest, ResizeUndoneOnAbort) {
  PlacementTxn setup = engine_.Begin("test");
  auto alloc = setup.Allocate(DeviceKind::kCpuBlade, TenantId(1), 1000,
                              AllocationConstraints{});
  ASSERT_TRUE(alloc.ok());
  ASSERT_TRUE(setup.Commit().ok());
  PoolAllocation held = *std::move(alloc);

  ResourcePool* pool = dc_.PoolById(held.pool);
  ASSERT_NE(pool, nullptr);
  PlacementTxn txn = engine_.Begin("test");
  ASSERT_TRUE(txn.Resize(pool, held, 500).ok());
  EXPECT_EQ(CpuAllocated(), 1500);
  EXPECT_EQ(held.total(), 1500);
  txn.Abort();
  EXPECT_EQ(CpuAllocated(), 1000);
  EXPECT_EQ(held.total(), 1000);
}

TEST(AttestationRefcountTest, ProvisionIsRefCountedAndRetireIdempotent) {
  Simulation sim;
  AttestationService attest(&sim, KeyFromString("refs"));
  attest.ProvisionDevice(42);
  attest.ProvisionDevice(42);
  EXPECT_EQ(attest.ProvisionRefs(42), 2);
  EXPECT_EQ(attest.provisioned_count(), 1u);

  attest.RetireDevice(42);
  EXPECT_TRUE(attest.IsProvisioned(42));  // one holder left
  attest.RetireDevice(42);
  EXPECT_FALSE(attest.IsProvisioned(42));
  EXPECT_EQ(attest.provisioned_count(), 0u);
  attest.RetireDevice(42);  // idempotent: retiring again is a no-op
  EXPECT_FALSE(attest.IsProvisioned(42));
}

TEST(PoolByIdTest, ResolvesEveryKindAndRejectsUnknownIds) {
  DisaggregatedDatacenter dc(DatacenterConfig{.racks = 1});
  for (int i = 0; i < kNumDeviceKinds; ++i) {
    const auto kind = static_cast<DeviceKind>(i);
    ResourcePool* pool = dc.PoolById(dc.pool(kind).id());
    ASSERT_NE(pool, nullptr);
    EXPECT_EQ(pool, &dc.pool(kind));
  }
  EXPECT_EQ(dc.PoolById(PoolId()), nullptr);
  EXPECT_EQ(dc.PoolById(PoolId(9999)), nullptr);
}

// --- Deploy-level behaviour: one transaction per deploy. -------------------

TEST(DeployTxnTest, TeardownRestoresEnvsAndAttestationRegistry) {
  UdcCloudConfig config;
  config.datacenter.racks = 2;
  UdcCloud cloud(config);
  const TenantId tenant = cloud.RegisterTenant("t");
  auto spec = MedicalAppSpec();
  ASSERT_TRUE(spec.ok());

  ASSERT_EQ(cloud.envs().live_count(), 0u);
  ASSERT_EQ(cloud.attestation().provisioned_count(), 0u);
  auto deployment = cloud.Deploy(tenant, *spec);
  ASSERT_TRUE(deployment.ok()) << deployment.status().ToString();
  EXPECT_GT(cloud.envs().live_count(), 0u);
  EXPECT_GT(cloud.attestation().provisioned_count(), 0u);

  (*deployment)->Teardown();
  EXPECT_EQ(cloud.envs().live_count(), 0u);
  EXPECT_EQ(cloud.attestation().provisioned_count(), 0u);
  EXPECT_EQ(cloud.datacenter().TotalAllocated(), ResourceVector());
}

TEST(DeployTxnTest, SharedDeviceIdentitiesSurviveOtherTeardown) {
  UdcCloudConfig config;
  config.datacenter.racks = 1;  // one rack: deployments share devices
  UdcCloud cloud(config);
  const TenantId tenant = cloud.RegisterTenant("t");
  Rng rng(7);
  auto spec = GenerateMicroserviceApp(rng, MicroserviceConfig{
                                               .chain_length = 2,
                                               .fanout_services = 0,
                                               .stateful_backend = false,
                                           });
  ASSERT_TRUE(spec.ok());

  auto first = cloud.Deploy(tenant, *spec);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  auto second = cloud.Deploy(tenant, *spec);
  ASSERT_TRUE(second.ok()) << second.status().ToString();

  // Tearing down the first deployment must not retire identities the
  // second still relies on (they are ref-counted, not flat).
  (*first)->Teardown();
  for (const auto& [module, placement] : (*second)->placements()) {
    EXPECT_TRUE(cloud.attestation().IsProvisioned(placement.home.value()));
  }
  (*second)->Teardown();
  EXPECT_EQ(cloud.attestation().provisioned_count(), 0u);
}

TEST(DeployTxnTest, DeployAllReturnsPositionalResults) {
  UdcCloudConfig config;
  config.datacenter.racks = 2;
  UdcCloud cloud(config);
  const TenantId tenant = cloud.RegisterTenant("t");
  Rng rng(11);
  std::vector<AppSpec> specs;
  for (int i = 0; i < 3; ++i) {
    auto spec = GenerateMicroserviceApp(rng);
    ASSERT_TRUE(spec.ok());
    specs.push_back(*std::move(spec));
  }
  std::vector<const AppSpec*> spec_ptrs;
  for (const AppSpec& s : specs) {
    spec_ptrs.push_back(&s);
  }

  auto results = cloud.DeployAll(tenant, spec_ptrs);
  ASSERT_EQ(results.size(), 3u);
  for (size_t i = 0; i < results.size(); ++i) {
    ASSERT_TRUE(results[i].ok()) << results[i].status().ToString();
    EXPECT_EQ((*results[i])->spec().graph.app_name(),
              specs[i].graph.app_name());
    for (const ModuleId id : specs[i].graph.ModuleIds()) {
      EXPECT_NE((*results[i])->PlacementOf(id), nullptr);
    }
  }
  EXPECT_EQ(cloud.sim()->metrics().counter("core.txn_committed"), 3);
}

// --- Randomized atomicity property test. -----------------------------------
//
// Everything a deploy can touch, snapshotted: pool aggregates and per-rack
// free capacities for every device kind, the environment manager's live and
// warm-pool state, and the attestation registry size. A failed deploy must
// leave all of it exactly as found — no stranded slices, no leaked
// environments or warm slots, no orphaned identities.
struct StateSnapshot {
  std::array<int64_t, kNumDeviceKinds> allocated{};
  std::array<std::vector<int64_t>, kNumDeviceKinds> free_by_rack;
  size_t live_envs = 0;
  size_t warm_entries = 0;
  size_t provisioned = 0;

  bool operator==(const StateSnapshot&) const = default;
};

StateSnapshot Snapshot(UdcCloud& cloud) {
  StateSnapshot snap;
  for (int i = 0; i < kNumDeviceKinds; ++i) {
    const auto kind = static_cast<DeviceKind>(i);
    const ResourcePool& pool = cloud.datacenter().pool(kind);
    snap.allocated[static_cast<size_t>(i)] = pool.TotalAllocated();
    snap.free_by_rack[static_cast<size_t>(i)] =
        pool.HealthyFreeByRack(cloud.datacenter().topology());
  }
  snap.live_envs = cloud.envs().live_count();
  snap.warm_entries = cloud.envs().warm_slot_entries();
  snap.provisioned = cloud.attestation().provisioned_count();
  return snap;
}

// Deploys randomized microservice apps into `cloud` until `target_failures`
// deploys have failed (capacity exhaustion), asserting atomicity of every
// failure. Successful deployments accumulate (shrinking free capacity) and
// are torn down at the end, which must restore the pre-test baseline.
void RunAtomicityScenario(UdcCloud& cloud, uint64_t seed,
                          const MicroserviceConfig& shape,
                          int target_failures) {
  const TenantId tenant = cloud.RegisterTenant("atomicity");
  const StateSnapshot baseline = Snapshot(cloud);
  Rng rng(seed);
  std::vector<std::unique_ptr<Deployment>> live;
  int failures = 0;
  for (int attempt = 0; attempt < 200 && failures < target_failures;
       ++attempt) {
    MicroserviceConfig config = shape;
    config.chain_length =
        static_cast<int>(rng.NextInt64InRange(1, shape.chain_length));
    config.work_scale =
        shape.work_scale * rng.NextDoubleInRange(0.5, 2.0);
    auto spec = GenerateMicroserviceApp(rng, config);
    ASSERT_TRUE(spec.ok()) << spec.status().ToString();

    const StateSnapshot before = Snapshot(cloud);
    auto deployment = cloud.Deploy(tenant, *spec);
    if (deployment.ok()) {
      live.push_back(std::move(*deployment));
      continue;
    }
    ++failures;
    // The property: a failed deploy is invisible. Pool aggregates, rack
    // free lists, env manager and attestation registry all read exactly as
    // they did before the attempt.
    EXPECT_EQ(Snapshot(cloud), before)
        << "failed deploy (attempt " << attempt
        << ") leaked state: " << deployment.status().ToString();
  }
  EXPECT_GE(failures, target_failures)
      << "scenario never exhausted capacity — not exercising abort";

  live.clear();  // teardown everything that succeeded
  EXPECT_EQ(Snapshot(cloud), baseline)
      << "teardown after the scenario did not restore the baseline";
}

TEST(PlacementAtomicityTest, GpuExhaustionAbortsClean) {
  UdcCloudConfig config;
  config.datacenter.racks = 1;
  config.datacenter.rack.gpu_boards = 0;  // GPU demand can never be met
  UdcCloud cloud(config);
  RunAtomicityScenario(cloud, /*seed=*/21, MicroserviceConfig{.chain_length = 4},
                       /*target_failures=*/3);
}

TEST(PlacementAtomicityTest, GpuExhaustionAbortsCleanWithStoreEnabled) {
  // The same exhaustion scenario with the content-addressed store behind
  // the env manager: aborts must additionally leave zero live store refs
  // and release every content-bound image quote.
  UdcCloudConfig config;
  config.datacenter.racks = 1;
  config.datacenter.rack.gpu_boards = 0;
  config.env_store.enabled = true;
  config.env_store.share_across_tenants = true;
  UdcCloud cloud(config);
  RunAtomicityScenario(cloud, /*seed=*/21, MicroserviceConfig{.chain_length = 4},
                       /*target_failures=*/3);
  EXPECT_EQ(cloud.envs().store()->live_env_refs(), 0);
  EXPECT_EQ(cloud.attestation().live_image_quotes(), 0u);
}

TEST(PlacementAtomicityTest, StorageExhaustionAbortsClean) {
  UdcCloudConfig config;
  config.datacenter.racks = 1;
  config.datacenter.rack.ssd_drives = 1;
  config.datacenter.rack.nvm_modules = 1;
  config.datacenter.rack.hdd_drives = 1;
  UdcCloud cloud(config);
  RunAtomicityScenario(
      cloud, /*seed=*/22,
      MicroserviceConfig{.chain_length = 3, .stateful_backend = true,
                         .work_scale = 4.0},
      /*target_failures=*/3);
}

TEST(PlacementAtomicityTest, ComputeExhaustionUnderChurnAbortsClean) {
  UdcCloudConfig config;
  config.datacenter.racks = 2;
  config.datacenter.rack.cpu_blades = 1;
  config.datacenter.rack.gpu_boards = 1;
  config.datacenter.rack.dram_modules = 1;
  UdcCloud cloud(config);
  RunAtomicityScenario(cloud, /*seed=*/23,
                       MicroserviceConfig{.chain_length = 5,
                                          .fanout_services = 3,
                                          .work_scale = 2.0},
                       /*target_failures=*/5);
}

}  // namespace
}  // namespace udc
