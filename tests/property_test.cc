// Property-based tests: randomized sweeps over invariants that must hold
// for any input, parameterized by seed (TEST_P).

#include <gtest/gtest.h>

#include <numeric>

#include "src/common/rng.h"
#include "src/dist/consistency.h"
#include "src/hw/pool.h"
#include "src/aspects/spec_parser.h"
#include "src/crypto/cipher.h"
#include "src/ir/partitioner.h"
#include "src/sim/simulation.h"

namespace udc {
namespace {

class SeededTest : public ::testing::TestWithParam<uint64_t> {};

// --- Pool conservation: random allocate/release/resize never leaks or
// double-frees capacity, and per-tenant ledgers always sum to allocations.
TEST_P(SeededTest, PoolConservationUnderRandomOps) {
  Rng rng(GetParam());
  Topology topo;
  const int r0 = topo.AddRack();
  const int r1 = topo.AddRack();
  ResourcePool pool(PoolId(0), DeviceKind::kCpuBlade);
  for (int i = 0; i < 6; ++i) {
    pool.AddDevice(std::make_unique<Device>(
        DeviceId(static_cast<uint64_t>(i)), DeviceKind::kCpuBlade, 32000,
        topo.AddNode(i % 2 == 0 ? r0 : r1, NodeRole::kDevice),
        DeviceProfile::DefaultFor(DeviceKind::kCpuBlade)));
  }
  const int64_t capacity = pool.TotalCapacity();

  std::vector<PoolAllocation> live;
  int64_t expected_allocated = 0;
  for (int step = 0; step < 300; ++step) {
    const double action = rng.NextDouble();
    if (action < 0.5 || live.empty()) {
      AllocationConstraints c;
      c.single_device = rng.NextBool(0.3);
      c.require_exclusive = rng.NextBool(0.1);
      c.preferred_rack = rng.NextBool(0.5) ? static_cast<int>(rng.NextUint64(2)) : -1;
      const int64_t amount = 1 + static_cast<int64_t>(rng.NextUint64(20000));
      auto alloc = pool.Allocate(
          TenantId(rng.NextUint64(4)), amount, c, topo);
      if (alloc.ok()) {
        expected_allocated += amount;
        live.push_back(*std::move(alloc));
      }
    } else if (action < 0.8) {
      const size_t idx = rng.NextUint64(live.size());
      expected_allocated -= live[idx].total();
      ASSERT_TRUE(pool.Release(live[idx]).ok());
      live.erase(live.begin() + static_cast<long>(idx));
    } else {
      const size_t idx = rng.NextUint64(live.size());
      const int64_t before = live[idx].total();
      const int64_t delta =
          rng.NextInt64InRange(-(before - 1), 4000);
      if (delta != 0) {
        const Status s = pool.Resize(live[idx], delta, topo);
        if (s.ok()) {
          expected_allocated += live[idx].total() - before;
        }
      }
    }
    // Invariants after every step.
    ASSERT_EQ(pool.TotalAllocated(), expected_allocated);
    ASSERT_LE(pool.TotalAllocated(), capacity);
    int64_t ledger_sum = 0;
    for (const LedgerEntry& e : pool.LedgerSnapshot()) {
      ASSERT_GT(e.amount, 0);
      ledger_sum += e.amount;
    }
    ASSERT_EQ(ledger_sum, expected_allocated);
  }
  for (const PoolAllocation& a : live) {
    ASSERT_TRUE(pool.Release(a).ok());
  }
  ASSERT_EQ(pool.TotalAllocated(), 0);
}

// --- Exclusive allocations never share a device with another tenant.
TEST_P(SeededTest, ExclusivityIsNeverViolated) {
  Rng rng(GetParam() + 1000);
  Topology topo;
  const int rack = topo.AddRack();
  ResourcePool pool(PoolId(0), DeviceKind::kGpuBoard);
  for (int i = 0; i < 4; ++i) {
    pool.AddDevice(std::make_unique<Device>(
        DeviceId(static_cast<uint64_t>(i)), DeviceKind::kGpuBoard, 4000,
        topo.AddNode(rack, NodeRole::kDevice),
        DeviceProfile::DefaultFor(DeviceKind::kGpuBoard)));
  }
  std::vector<PoolAllocation> live;
  for (int step = 0; step < 150; ++step) {
    if (rng.NextBool(0.6) || live.empty()) {
      AllocationConstraints c;
      c.require_exclusive = rng.NextBool(0.5);
      auto alloc = pool.Allocate(TenantId(rng.NextUint64(3)),
                                 1 + static_cast<int64_t>(rng.NextUint64(3000)),
                                 c, topo);
      if (alloc.ok()) {
        live.push_back(*std::move(alloc));
      }
    } else {
      const size_t idx = rng.NextUint64(live.size());
      ASSERT_TRUE(pool.Release(live[idx]).ok());
      live.erase(live.begin() + static_cast<long>(idx));
    }
    for (const Device* d : pool.devices()) {
      if (d->exclusive()) {
        ASSERT_LE(d->tenant_count(), 1u);
        if (d->tenant_count() == 1) {
          ASSERT_EQ(d->tenants()[0], d->exclusive_tenant());
        }
      }
    }
  }
}

// --- Consistency resolution: strictest-wins is idempotent, commutative and
// upper-bounds every input.
TEST_P(SeededTest, ConsistencyResolutionIsAJoin) {
  Rng rng(GetParam() + 2000);
  for (int trial = 0; trial < 100; ++trial) {
    const size_t n = 1 + rng.NextUint64(6);
    std::vector<ConsistencyLevel> levels;
    for (size_t i = 0; i < n; ++i) {
      levels.push_back(static_cast<ConsistencyLevel>(rng.NextUint64(5)));
    }
    const auto resolved =
        ResolveConsistency(levels, ConflictPolicy::kStrictestWins);
    ASSERT_TRUE(resolved.ok());
    for (ConsistencyLevel l : levels) {
      ASSERT_FALSE(StricterThan(l, resolved->level));
    }
    // Join with itself is a fixed point.
    const auto again = ResolveConsistency(
        {resolved->level, resolved->level}, ConflictPolicy::kReject);
    ASSERT_TRUE(again.ok());
    ASSERT_EQ(again->level, resolved->level);
    // Permutation invariance.
    std::vector<ConsistencyLevel> shuffled = levels;
    rng.Shuffle(shuffled);
    ASSERT_EQ(
        ResolveConsistency(shuffled, ConflictPolicy::kStrictestWins)->level,
        resolved->level);
  }
}

// --- Chain partitioner matches brute force on small instances.
TEST_P(SeededTest, PartitionerMatchesBruteForce) {
  Rng rng(GetParam() + 3000);
  const size_t n = 4 + rng.NextUint64(3);  // 4..6 segments
  LegacyProgram p;
  p.name = "bf";
  for (size_t i = 0; i < n; ++i) {
    p.segments.push_back(CodeSegment{"s", 1.0, false});
  }
  p.dep_bytes.assign(n, std::vector<double>(n, 0.0));
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      if (rng.NextBool(0.6)) {
        p.dep_bytes[i][j] = static_cast<double>(1 + rng.NextUint64(50));
      }
    }
  }
  const size_t parts = 2 + rng.NextUint64(2);  // 2..3
  const auto got = PartitionChain(p, parts);
  ASSERT_TRUE(got.ok());

  // Brute force over all cut subsets of size parts-1.
  double best = 1e18;
  std::vector<size_t> cuts(n - 1);
  std::iota(cuts.begin(), cuts.end(), 1u);
  std::vector<bool> select(n - 1, false);
  std::fill(select.end() - static_cast<long>(parts - 1), select.end(), true);
  do {
    std::vector<size_t> boundaries{0};
    for (size_t i = 0; i < cuts.size(); ++i) {
      if (select[i]) {
        boundaries.push_back(cuts[i]);
      }
    }
    auto part_of = [&](size_t seg) {
      size_t part = 0;
      for (size_t m = 0; m < boundaries.size(); ++m) {
        if (seg >= boundaries[m]) {
          part = m;
        }
      }
      return part;
    };
    double cost = 0;
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = i + 1; j < n; ++j) {
        if (p.dep_bytes[i][j] > 0 && part_of(i) != part_of(j)) {
          cost += p.dep_bytes[i][j];
        }
      }
    }
    best = std::min(best, cost);
  } while (std::next_permutation(select.begin(), select.end()));

  // The greedy independent-cut heuristic is exact for adjacent-only deps and
  // near-optimal generally; require it within 1.6x of brute force here.
  EXPECT_LE(got->cross_cut_bytes, best * 1.6 + 1e-9);
}

// --- ResourceVector algebra: + and - are inverses; FitsIn is reflexive and
// transitive on random vectors.
TEST_P(SeededTest, ResourceVectorAlgebra) {
  Rng rng(GetParam() + 4000);
  auto random_vec = [&] {
    ResourceVector v;
    for (int i = 0; i < kNumResourceKinds; ++i) {
      v.Set(static_cast<ResourceKind>(i),
            static_cast<int64_t>(rng.NextUint64(1 << 20)));
    }
    return v;
  };
  for (int trial = 0; trial < 200; ++trial) {
    const ResourceVector a = random_vec();
    const ResourceVector b = random_vec();
    EXPECT_EQ((a + b) - b, a);
    EXPECT_TRUE(a.FitsIn(a));
    EXPECT_TRUE(a.FitsIn(a + b));
    const ResourceVector c = random_vec();
    if (a.FitsIn(b) && b.FitsIn(c)) {
      EXPECT_TRUE(a.FitsIn(c));
    }
    EXPECT_TRUE(ResourceVector::Min(a, b).FitsIn(a));
    EXPECT_TRUE(a.FitsIn(ResourceVector::Max(a, b)));
  }
}


// --- AEAD: random sizes and nonces always round-trip; any single-byte flip
// in the ciphertext or MAC is detected.
TEST_P(SeededTest, AeadRoundTripAndTamperFuzz) {
  Rng rng(GetParam() + 5000);
  const AeadCipher cipher(KeyFromString("fuzz"));
  for (int trial = 0; trial < 60; ++trial) {
    const size_t len = rng.NextUint64(600);
    std::vector<uint8_t> plain(len);
    for (auto& b : plain) {
      b = static_cast<uint8_t>(rng.NextUint64(256));
    }
    const uint64_t nonce = 1 + rng.NextUint64(1u << 30);
    const SealedBox box = cipher.Seal(plain, nonce);
    const auto open = cipher.Open(box);
    ASSERT_TRUE(open.ok());
    ASSERT_EQ(*open, plain);

    SealedBox bad = box;
    if (!bad.ciphertext.empty() && rng.NextBool(0.5)) {
      bad.ciphertext[rng.NextUint64(bad.ciphertext.size())] ^=
          static_cast<uint8_t>(1 + rng.NextUint64(255));
      ASSERT_FALSE(cipher.Open(bad).ok());
    } else {
      bad.mac[rng.NextUint64(bad.mac.size())] ^=
          static_cast<uint8_t>(1 + rng.NextUint64(255));
      ASSERT_FALSE(cipher.Open(bad).ok());
    }
  }
}

// --- Parser: random garbage never crashes; it either errors or yields a
// spec that validates.
TEST_P(SeededTest, SpecParserFuzzNeverCrashes) {
  Rng rng(GetParam() + 6000);
  const char* kFragments[] = {
      "app",     "task",    "data",  "edge",   "aspect",   "colocate",
      "x",       "work=10", "->",    "size=1GiB", "resource", "exec",
      "dist",    "cpu=1",   "#",     "\t",     "replication=2", "???",
      "isolation=strong", "gpu=1000m", "affinity", "out=1MiB",
  };
  for (int trial = 0; trial < 120; ++trial) {
    std::string doc;
    const int lines = 1 + static_cast<int>(rng.NextUint64(8));
    for (int l = 0; l < lines; ++l) {
      const int tokens = 1 + static_cast<int>(rng.NextUint64(5));
      for (int t = 0; t < tokens; ++t) {
        doc += kFragments[rng.NextUint64(std::size(kFragments))];
        doc += ' ';
      }
      doc += '\n';
    }
    const auto spec = ParseAppSpec(doc);
    if (spec.ok()) {
      ASSERT_TRUE(spec->graph.Validate().ok());
    } else {
      ASSERT_FALSE(spec.status().message().empty());
    }
  }
}

// --- Event queue: random schedule/cancel sequences execute exactly the
// non-cancelled callbacks, in non-decreasing time order.
TEST_P(SeededTest, EventQueueRandomScheduleCancel) {
  Rng rng(GetParam() + 7000);
  Simulation sim;
  std::vector<SimTime> fired;
  std::vector<EventHandle> handles;
  int expected = 0;
  for (int i = 0; i < 200; ++i) {
    const SimTime when(static_cast<int64_t>(rng.NextUint64(10000)));
    handles.push_back(sim.At(when, [&fired, &sim] { fired.push_back(sim.now()); }));
    ++expected;
    if (!handles.empty() && rng.NextBool(0.3)) {
      const size_t idx = rng.NextUint64(handles.size());
      if (sim.Cancel(handles[idx])) {
        --expected;
      }
      handles.erase(handles.begin() + static_cast<long>(idx));
    }
  }
  sim.RunToCompletion();
  ASSERT_EQ(static_cast<int>(fired.size()), expected);
  for (size_t i = 1; i < fired.size(); ++i) {
    ASSERT_GE(fired[i], fired[i - 1]);
  }
}

// --- Topology: transfer time is symmetric, zero on self, and respects the
// triangle-ish rack structure (intra <= inter for equal sizes).
TEST_P(SeededTest, TopologyMetricProperties) {
  Rng rng(GetParam() + 8000);
  Topology topo;
  std::vector<NodeId> nodes;
  const int racks = 2 + static_cast<int>(rng.NextUint64(3));
  for (int r = 0; r < racks; ++r) {
    const int rack = topo.AddRack();
    for (int i = 0; i < 3; ++i) {
      nodes.push_back(topo.AddNode(rack, NodeRole::kDevice));
    }
  }
  for (int trial = 0; trial < 60; ++trial) {
    const NodeId a = nodes[rng.NextUint64(nodes.size())];
    const NodeId b = nodes[rng.NextUint64(nodes.size())];
    const Bytes size(static_cast<int64_t>(rng.NextUint64(1 << 22)));
    ASSERT_EQ(topo.TransferTime(a, b, size), topo.TransferTime(b, a, size));
    ASSERT_EQ(topo.TransferTime(a, a, size), SimTime(0));
    if (a != b) {
      ASSERT_GT(topo.TransferTime(a, b, size), SimTime(0));
    }
  }
}

// --- Billing: CostFor is additive in resources and linear in time.
TEST_P(SeededTest, PricingLinearity) {
  Rng rng(GetParam() + 9000);
  const PriceList prices = PriceList::DefaultOnDemand();
  for (int trial = 0; trial < 60; ++trial) {
    ResourceVector a;
    ResourceVector b;
    for (int i = 0; i < kNumResourceKinds; ++i) {
      a.Set(static_cast<ResourceKind>(i),
            static_cast<int64_t>(rng.NextUint64(1 << 30)));
      b.Set(static_cast<ResourceKind>(i),
            static_cast<int64_t>(rng.NextUint64(1 << 30)));
    }
    const SimTime hour = SimTime::Hours(1);
    const int64_t sum_parts =
        prices.CostFor(a, hour).micro_usd() + prices.CostFor(b, hour).micro_usd();
    const int64_t whole = prices.CostFor(a + b, hour).micro_usd();
    ASSERT_NEAR(static_cast<double>(whole), static_cast<double>(sum_parts), 4.0);
    const int64_t doubled = prices.CostFor(a, SimTime::Hours(2)).micro_usd();
    ASSERT_NEAR(static_cast<double>(doubled),
                2.0 * static_cast<double>(prices.CostFor(a, hour).micro_usd()),
                4.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeededTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

}  // namespace
}  // namespace udc
