// Region-federation tests: region partitioning (cell -> region mapping,
// per-region free summaries), the router's balanced home-region choice,
// the region-affinity aspect, cross-region deploys that span regions
// inside one transaction, multi-region abort atomicity, the env store's
// remote (cross-region) tier with exact CancelLaunch refunds, and a
// randomized differential asserting the region-federated control plane
// with one region makes byte-identical admit/reject decisions to the
// cell-partitioned router on the same deploy/teardown sequence.
//
// As in cell_router_test, the specs have uniform explicit demands (every
// task is exactly a quarter of a cpu blade), so admission is count-based
// and the cells-only router is a differential oracle for the region
// router despite their different placement geometry.

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/common/rng.h"
#include "src/core/udc_cloud.h"
#include "src/exec/env_manager.h"
#include "src/exec/env_store.h"
#include "src/hw/topology.h"
#include "src/sim/simulation.h"

namespace udc {
namespace {

// One task = 8000 millicores = a quarter of a 32-core cpu blade.
AppSpec MakeUniformSpec(const std::string& name, int tasks) {
  AppSpec spec;
  spec.graph.set_app_name(name);
  for (int i = 0; i < tasks; ++i) {
    auto id = spec.graph.AddTask(name + "-t" + std::to_string(i),
                                 /*work_units=*/1.0);
    AspectSet aspects = ProviderDefaults();
    aspects.resource.defined = true;
    aspects.resource.objective = ResourceObjective::kExplicit;
    aspects.resource.demand.Set(ResourceKind::kCpu, 8000);
    aspects.resource.demand.Set(ResourceKind::kDram, Bytes::MiB(64).bytes());
    spec.aspects[*id] = aspects;
  }
  return spec;
}

AppSpec PinnedSpec(const std::string& name, int tasks, int region) {
  AppSpec spec = MakeUniformSpec(name, tasks);
  for (auto& [id, aspects] : spec.aspects) {
    aspects.dist.region_affinity = region;
  }
  return spec;
}

UdcCloudConfig RegionConfig(int racks, int cells, int regions) {
  UdcCloudConfig config;
  config.datacenter.racks = racks;
  config.datacenter.cells = cells;
  config.datacenter.regions = regions;
  config.scheduler.use_placement_index = true;
  return config;
}

using PoolOccupancy = std::array<int64_t, kNumDeviceKinds>;

PoolOccupancy OccupancyOf(UdcCloud& cloud) {
  PoolOccupancy occupancy{};
  for (int k = 0; k < kNumDeviceKinds; ++k) {
    occupancy[static_cast<size_t>(k)] =
        cloud.datacenter().pool(static_cast<DeviceKind>(k)).TotalAllocated();
  }
  return occupancy;
}

TEST(TopologyRegionsTest, SetRegionCountPartitionsCellsContiguously) {
  DisaggregatedDatacenter dc(DatacenterConfig{.racks = 10});
  Topology& topo = dc.topology();
  topo.SetCellCount(5);
  topo.SetRegionCount(3);
  ASSERT_EQ(topo.region_count(), 3);
  // Every cell maps to exactly one region, regions are contiguous and
  // non-decreasing, and no region is empty — the cell-partitioning
  // contract mirrored one level up.
  std::vector<int> cells_per_region(3, 0);
  int prev = 0;
  for (int cell = 0; cell < topo.cell_count(); ++cell) {
    const int region = topo.RegionOf(cell);
    ASSERT_GE(region, 0);
    ASSERT_LT(region, 3);
    ASSERT_GE(region, prev);
    ASSERT_LE(region - prev, 1);
    prev = region;
    ++cells_per_region[static_cast<size_t>(region)];
    EXPECT_GE(cell, topo.RegionCellBegin(region));
    EXPECT_LT(cell, topo.RegionCellEnd(region));
  }
  for (int r = 0; r < 3; ++r) {
    EXPECT_GT(cells_per_region[static_cast<size_t>(r)], 0);
  }
  // RegionOfRack composes the two partitions: each rack's region is its
  // cell's region.
  for (int rack = 0; rack < topo.rack_count(); ++rack) {
    EXPECT_EQ(topo.RegionOfRack(rack), topo.RegionOf(topo.CellOf(rack)));
  }
  // Out of range / unpartitioned.
  EXPECT_EQ(topo.RegionOf(-1), -1);
  EXPECT_EQ(topo.RegionOf(topo.cell_count()), -1);
}

TEST(RegionRouterTest, RegionFreeSummaryTracksCommitDeltas) {
  UdcCloud cloud(RegionConfig(/*racks=*/4, /*cells=*/4, /*regions=*/2));
  RegionRouter* router = cloud.region_router();
  ASSERT_NE(router, nullptr);
  const std::vector<int64_t>& free =
      router->RegionFreeSummary(DeviceKind::kCpuBlade);
  ASSERT_EQ(free.size(), 2u);
  // 2 racks x 4 blades x 32000 millicores per region, all free.
  EXPECT_EQ(free[0], 2 * 4 * 32000);
  EXPECT_EQ(free[0], free[1]);

  const int64_t before_0 = free[0];
  const int64_t before_1 = free[1];
  const AppSpec spec = MakeUniformSpec("one", 1);
  auto deployment = cloud.Deploy(cloud.RegisterTenant("t"), spec);
  ASSERT_TRUE(deployment.ok());
  cloud.sim()->RunToCompletion();
  // Exactly one region's summary moved, by exactly the task's demand.
  EXPECT_EQ(before_0 + before_1 - free[0] - free[1], 8000);
  EXPECT_TRUE(free[0] == before_0 || free[1] == before_1);
  deployment->reset();  // teardown releases the slice
  cloud.sim()->RunToCompletion();
  EXPECT_EQ(free[0], before_0);
  EXPECT_EQ(free[1], before_1);
}

TEST(RegionRouterTest, BalancesHomeRegionsByFreeCapacity) {
  UdcCloud cloud(RegionConfig(/*racks=*/4, /*cells=*/4, /*regions=*/2));
  ASSERT_NE(cloud.region_router(), nullptr);
  const AppSpec spec = MakeUniformSpec("one", 1);
  std::vector<std::unique_ptr<Deployment>> live;
  for (int i = 0; i < 4; ++i) {
    auto deployment =
        cloud.Deploy(cloud.RegisterTenant("t" + std::to_string(i)), spec);
    ASSERT_TRUE(deployment.ok());
    live.push_back(std::move(*deployment));
    cloud.sim()->RunToCompletion();
  }
  // Equal capacity, equal demands: the router alternates home regions.
  EXPECT_EQ(cloud.region_router()->RegionDeploys(0), 2);
  EXPECT_EQ(cloud.region_router()->RegionDeploys(1), 2);
  EXPECT_EQ(cloud.region_router()->cross_region_deploys(), 0);
}

TEST(RegionRouterTest, HonorsRegionAffinityAspect) {
  UdcCloud cloud(RegionConfig(/*racks=*/4, /*cells=*/4, /*regions=*/2));
  // Pinned to region 1: every deploy must land there even though region 0
  // is equally free (and would win ties for unpinned specs).
  const AppSpec spec = PinnedSpec("pin", 1, /*region=*/1);
  std::vector<std::unique_ptr<Deployment>> live;
  for (int i = 0; i < 3; ++i) {
    auto deployment =
        cloud.Deploy(cloud.RegisterTenant("p" + std::to_string(i)), spec);
    ASSERT_TRUE(deployment.ok());
    live.push_back(std::move(*deployment));
    cloud.sim()->RunToCompletion();
  }
  EXPECT_EQ(cloud.region_router()->RegionDeploys(0), 0);
  EXPECT_EQ(cloud.region_router()->RegionDeploys(1), 3);
}

// Fills a 2-region cloud until each region has exactly
// `free_slots_per_region` quarter-blade slots left.
std::vector<std::unique_ptr<Deployment>> FillAllBut(
    UdcCloud& cloud, int free_slots_per_region) {
  // racks=2, cells=2, regions=2: 4 blades x 4 slots = 16 slots per region.
  const int fillers = 2 * (16 - free_slots_per_region);
  const AppSpec spec = MakeUniformSpec("filler", 1);
  std::vector<std::unique_ptr<Deployment>> live;
  for (int i = 0; i < fillers; ++i) {
    auto deployment =
        cloud.Deploy(cloud.RegisterTenant("f" + std::to_string(i)), spec);
    EXPECT_TRUE(deployment.ok());
    if (deployment.ok()) {
      live.push_back(std::move(*deployment));
    }
    cloud.sim()->RunToCompletion();
  }
  return live;
}

TEST(RegionRouterTest, CrossRegionDeploySpansRegionsInOneTransaction) {
  UdcCloud cloud(RegionConfig(/*racks=*/2, /*cells=*/2, /*regions=*/2));
  auto fillers = FillAllBut(cloud, /*free_slots_per_region=*/2);
  // 3 tasks against 2 free slots per region: no single region fits the
  // DAG, so the deploy must span — and still commit atomically.
  const AppSpec spec = MakeUniformSpec("span", 3);
  auto deployment = cloud.Deploy(cloud.RegisterTenant("span"), spec);
  ASSERT_TRUE(deployment.ok());
  cloud.sim()->RunToCompletion();
  EXPECT_EQ(cloud.region_router()->cross_region_deploys(), 1);
  EXPECT_GE(cloud.region_router()->region_fallbacks(), 1);
  EXPECT_EQ(cloud.sim()->metrics().counter("core.txn_aborted"), 0);

  deployment->reset();
  fillers.clear();
  cloud.sim()->RunToCompletion();
  EXPECT_EQ(cloud.datacenter().TotalAllocated(), ResourceVector());
  EXPECT_EQ(cloud.envs().live_count(), 0u);
}

TEST(RegionRouterTest, MultiRegionAbortRestoresSnapshotState) {
  UdcCloud cloud(RegionConfig(/*racks=*/2, /*cells=*/2, /*regions=*/2));
  auto fillers = FillAllBut(cloud, /*free_slots_per_region=*/2);

  const PoolOccupancy occupancy_before = OccupancyOf(cloud);
  const size_t envs_before = cloud.envs().live_count();
  const size_t attested_before = cloud.attestation().provisioned_count();
  const int64_t committed_before =
      cloud.sim()->metrics().counter("core.txn_committed");

  // 5 tasks against 4 free slots datacenter-wide: the home region admits
  // 2, 2 spill to the other region, the 5th fits nowhere — every staged
  // sub-plan (both regions') must unwind.
  const AppSpec spec = MakeUniformSpec("toobig", 5);
  auto deployment = cloud.Deploy(cloud.RegisterTenant("toobig"), spec);
  EXPECT_FALSE(deployment.ok());
  cloud.sim()->RunToCompletion();

  EXPECT_EQ(OccupancyOf(cloud), occupancy_before);
  EXPECT_EQ(cloud.envs().live_count(), envs_before);
  EXPECT_EQ(cloud.attestation().provisioned_count(), attested_before);
  // The abort really staged work across regions before unwinding.
  EXPECT_GE(cloud.region_router()->region_fallbacks(), 1);
  EXPECT_GE(cloud.sim()->metrics().counter("core.txn_aborted"), 1);
  EXPECT_EQ(cloud.sim()->metrics().counter("core.txn_committed"),
            committed_before);
}

// --- The env store's remote (cross-region) tier, tested at unit level:
// a topology with one rack per region, a slot banked in region 0, and a
// launch in region 1 that must pay the WAN price, replicate the image,
// and refund exactly when cancelled.

TEST(EnvStoreRegionsTest, RemoteFetchAndRefundAreExact) {
  Simulation sim;
  Topology topology;
  const int rack0 = topology.AddRack();
  const int rack1 = topology.AddRack();
  const NodeId node0 = topology.AddNode(rack0, NodeRole::kDevice);
  const NodeId node1 = topology.AddNode(rack1, NodeRole::kDevice);
  topology.SetCellCount(2);
  topology.SetRegionCount(2);

  EnvStoreConfig store_config;
  store_config.enabled = true;
  store_config.share_across_tenants = true;
  EnvManager manager(&sim, store_config);
  manager.set_topology(&topology);  // builds the rack -> region map
  LaunchOptions options;
  options.kind = EnvKind::kTeeEnclave;
  options.image = "federated-model";
  EnvStore* store = manager.store();
  const Sha256Digest digest = store->KeyDigest(
      EnvKind::kTeeEnclave, TenancyMode::kShared, TenantId(1),
      "federated-model");

  // Bank a warm slot on rack 0 (region 0).
  ExecEnvironment* env = manager.Launch(TenantId(1), node0, options, nullptr);
  sim.RunToCompletion();
  ASSERT_TRUE(manager.Stop(env, /*keep_warm=*/true).ok());
  const int64_t slots_before = store->SlotsOnRack(digest, 0);
  ASSERT_GE(slots_before, 1);

  // Launch in region 1: the only slot is cross-region, so the start is
  // remote — strictly slower than a tepid fetch (it adds the WAN leg) but
  // still far below a cold build, and NextStartLatency predicts the tier.
  const SimTime predicted = manager.NextStartLatency(
      EnvKind::kTeeEnclave, TenantId(2), options, node1);
  const SimTime before = sim.now();
  env = manager.Launch(TenantId(2), node1, options, nullptr);
  sim.RunToCompletion();
  EXPECT_EQ(env->start_mode(), EnvStartMode::kRemote);
  EXPECT_EQ(env->ready_at() - before, predicted);
  const EnvProfile profile = EnvProfile::DefaultFor(EnvKind::kTeeEnclave);
  EXPECT_GT(predicted, profile.warm_start);
  EXPECT_LT(predicted, profile.cold_start);
  EXPECT_EQ(sim.metrics().counter("exec.remote_starts"), 1);
  EXPECT_EQ(store->remote_hits(), 1);
  // The slot was consumed at the source and the image pull-through
  // replicated into rack 1's cache.
  EXPECT_EQ(store->SlotsOnRack(digest, 0), slots_before - 1);
  const auto racks = store->PerRackStats();
  ASSERT_EQ(racks.size(), 2u);
  EXPECT_EQ(racks[1].entries, 1u);
  ASSERT_TRUE(manager.Stop(env, /*keep_warm=*/false).ok());

  // Bank a fresh slot on rack 0 (the remote start above consumed the
  // first one), then remote launch + cancel: the slot returns to rack 0
  // (the source, in the other region) with its original provenance, refs
  // come back exactly.
  env = manager.Launch(TenantId(1), node0, options, nullptr);
  sim.RunToCompletion();
  ASSERT_TRUE(manager.Stop(env, /*keep_warm=*/true).ok());
  const int64_t rebanked = store->SlotsOnRack(digest, 0);
  const int64_t refs_rebanked = store->ContentRefs(digest);
  ASSERT_GE(rebanked, 1);
  env = manager.Launch(TenantId(2), node1, options, nullptr);
  EXPECT_EQ(env->start_mode(), EnvStartMode::kRemote);
  EXPECT_EQ(store->SlotsOnRack(digest, 0), rebanked - 1);
  ASSERT_TRUE(manager.CancelLaunch(env).ok());
  EXPECT_EQ(store->SlotsOnRack(digest, 0), rebanked);
  EXPECT_EQ(store->SlotsOnRack(digest, 1), 0);
  EXPECT_EQ(store->ContentRefs(digest), refs_rebanked);
  EXPECT_EQ(store->live_env_refs(), 0);
  sim.RunToCompletion();
}

// --- The randomized differential: regions=1 vs. the cells-only router on
// one shared script. With a single region the region router's candidate
// order degenerates to the cell router's exactly, so the two control
// planes must produce an identical admit/reject stream (compared both
// directly and as an FNV-1a hash, the form the federation bench gates on)
// and identical final occupancy.

struct Action {
  bool deploy = false;
  uint64_t value = 0;  // teardown slot selector
};

struct LegOutcome {
  std::vector<bool> decisions;
  PoolOccupancy occupancy{};
  size_t live_envs = 0;
};

uint64_t Fnv1a(const std::vector<bool>& decisions) {
  uint64_t hash = 0xcbf29ce484222325ull;
  for (const bool decision : decisions) {
    hash ^= decision ? 1u : 0u;
    hash *= 0x100000001b3ull;
  }
  return hash;
}

LegOutcome RunLeg(int regions, const std::vector<Action>& script,
                  const std::shared_ptr<const AppSpec>& spec) {
  UdcCloud cloud(RegionConfig(/*racks=*/4, /*cells=*/2, regions));
  LegOutcome outcome;
  std::vector<std::unique_ptr<Deployment>> live;
  int tenant = 0;
  for (const Action& action : script) {
    if (action.deploy || live.empty()) {
      auto deployment = cloud.Deploy(
          cloud.RegisterTenant("d" + std::to_string(tenant++)), spec);
      outcome.decisions.push_back(deployment.ok());
      if (deployment.ok()) {
        live.push_back(std::move(*deployment));
      }
    } else {
      const size_t idx = action.value % live.size();
      live.erase(live.begin() + static_cast<long>(idx));
    }
    cloud.sim()->RunToCompletion();
  }
  outcome.occupancy = OccupancyOf(cloud);
  outcome.live_envs = cloud.envs().live_count();
  return outcome;
}

TEST(RegionRouterDifferentialTest, OneRegionMatchesCellsOnlyRouter) {
  // 4 racks = 64 quarter-blade slots; 2-task deploys saturate at 32 live,
  // and the 70/30 deploy/teardown mix keeps the run bouncing off the
  // capacity ceiling, so both admits and rejects are exercised heavily.
  const auto spec =
      std::make_shared<const AppSpec>(MakeUniformSpec("diff", 2));
  for (const uint64_t seed : {0x12E610ull, 0xFEDE8ull, 0x0AB5ull}) {
    Rng rng(seed);
    std::vector<Action> script;
    for (int i = 0; i < 400; ++i) {
      script.push_back(Action{rng.NextUint64(100) < 70,
                              rng.NextUint64(1u << 30)});
    }
    const LegOutcome cells = RunLeg(/*regions=*/0, script, spec);
    const LegOutcome regioned = RunLeg(/*regions=*/1, script, spec);

    ASSERT_EQ(cells.decisions.size(), regioned.decisions.size());
    EXPECT_EQ(Fnv1a(cells.decisions), Fnv1a(regioned.decisions))
        << "seed " << seed;
    EXPECT_EQ(cells.decisions, regioned.decisions) << "seed " << seed;
    EXPECT_EQ(cells.occupancy, regioned.occupancy) << "seed " << seed;
    EXPECT_EQ(cells.live_envs, regioned.live_envs) << "seed " << seed;
    // The scripts are tuned to hit exhaustion: a run with no rejects
    // would be vacuous as a differential.
    EXPECT_NE(std::find(cells.decisions.begin(), cells.decisions.end(),
                        false),
              cells.decisions.end())
        << "seed " << seed << " never hit capacity";
  }
}

}  // namespace
}  // namespace udc
