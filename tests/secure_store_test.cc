#include <gtest/gtest.h>

#include "src/dist/secure_store.h"

namespace udc {
namespace {

DataProtection FullProtection() {
  DataProtection p;
  p.encryption = true;
  p.integrity = true;
  p.replay_protection = true;
  return p;
}

std::vector<uint8_t> Blob(std::string_view s) {
  return std::vector<uint8_t>(s.begin(), s.end());
}

TEST(SecureStoreTest, PutGetRoundTripsAllProtectionModes) {
  for (int enc = 0; enc <= 1; ++enc) {
    for (int integ = 0; integ <= 1; ++integ) {
      for (int replay = 0; replay <= 1; ++replay) {
        DataProtection p;
        p.encryption = enc != 0;
        p.integrity = integ != 0;
        p.replay_protection = replay != 0;
        SecureDataStore store("S", KeyFromString("tenant-key"), p);
        ASSERT_TRUE(store.Put(0, Blob("record-zero")).ok());
        ASSERT_TRUE(store.Put(7, Blob("record-seven")).ok());
        const auto r0 = store.Get(0);
        const auto r7 = store.Get(7);
        ASSERT_TRUE(r0.ok()) << "enc=" << enc << " integ=" << integ;
        ASSERT_TRUE(r7.ok());
        EXPECT_EQ(*r0, Blob("record-zero"));
        EXPECT_EQ(*r7, Blob("record-seven"));
      }
    }
  }
}

TEST(SecureStoreTest, EncryptionHidesPlaintext) {
  DataProtection p;
  p.encryption = true;
  SecureDataStore store("S1", KeyFromString("k"), p);
  ASSERT_TRUE(store.Put(0, Blob("highly confidential diagnosis")).ok());
  // Nothing to directly inspect here except via tamper hook semantics: the
  // stored bytes differ from the plaintext (Seal's ciphertext).
  const auto out = store.Get(0);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(*out, Blob("highly confidential diagnosis"));
}

TEST(SecureStoreTest, TamperDetectedWithEncryption) {
  DataProtection p;
  p.encryption = true;
  SecureDataStore store("S1", KeyFromString("k"), p);
  ASSERT_TRUE(store.Put(0, Blob("data")).ok());
  ASSERT_TRUE(store.TamperChunkForTest(0));
  const auto out = store.Get(0);
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), StatusCode::kVerificationFailed);
}

TEST(SecureStoreTest, TamperDetectedWithIntegrityOnly) {
  // Table 1's S4: integrity protection without encryption.
  DataProtection p;
  p.integrity = true;
  SecureDataStore store("S4", KeyFromString("k"), p);
  ASSERT_TRUE(store.Put(0, Blob("anonymized")).ok());
  ASSERT_TRUE(store.Put(1, Blob("records")).ok());
  ASSERT_TRUE(store.TamperChunkForTest(1));
  EXPECT_TRUE(store.Get(0).ok());
  const auto out = store.Get(1);
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), StatusCode::kVerificationFailed);
}

TEST(SecureStoreTest, NoProtectionMeansNoDetection) {
  // Without any protection the store is a plain KV: tampering goes through
  // (this is the fallback-to-today's-cloud behaviour, and why Table 1
  // specifies protection for the medical data).
  SecureDataStore store("plain", KeyFromString("k"), DataProtection());
  ASSERT_TRUE(store.Put(0, Blob("data")).ok());
  ASSERT_TRUE(store.TamperChunkForTest(0));
  const auto out = store.Get(0);
  ASSERT_TRUE(out.ok());
  EXPECT_NE(*out, Blob("data"));
}

TEST(SecureStoreTest, RollbackDetectedWithReplayProtection) {
  SecureDataStore store("S1", KeyFromString("k"), FullProtection());
  ASSERT_TRUE(store.Put(0, Blob("version-1")).ok());
  ASSERT_TRUE(store.Get(0).ok());  // reader pins nonce of v1
  ASSERT_TRUE(store.Put(0, Blob("version-2")).ok());
  ASSERT_TRUE(store.Get(0).ok());  // reader advances to v2
  // A malicious storage host restores the stale but correctly-sealed v1.
  ASSERT_TRUE(store.RollbackChunkForTest(0));
  const auto out = store.Get(0);
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), StatusCode::kVerificationFailed);
  EXPECT_NE(out.status().message().find("rolled back"), std::string::npos);
}

TEST(SecureStoreTest, RollbackUndetectedWithoutReplayProtection) {
  // Encryption + integrity alone cannot catch a rollback: the stale chunk
  // is authentically sealed. This is exactly why replay protection is a
  // separate option in sec. 3.3.
  DataProtection p;
  p.encryption = true;
  p.integrity = true;
  SecureDataStore store("S3", KeyFromString("k"), p);
  ASSERT_TRUE(store.Put(0, Blob("new-image")).ok());
  ASSERT_TRUE(store.Put(0, Blob("newer-image")).ok());
  ASSERT_TRUE(store.RollbackChunkForTest(0));
  const auto out = store.Get(0);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(*out, Blob("new-image"));  // silently served stale data
}

TEST(SecureStoreTest, IntegrityRootChangesWithContent) {
  DataProtection p;
  p.integrity = true;
  SecureDataStore store("S", KeyFromString("k"), p);
  ASSERT_TRUE(store.Put(0, Blob("a")).ok());
  const auto root1 = store.IntegrityRoot();
  ASSERT_TRUE(root1.ok());
  ASSERT_TRUE(store.Put(1, Blob("b")).ok());
  const auto root2 = store.IntegrityRoot();
  ASSERT_TRUE(root2.ok());
  EXPECT_FALSE(DigestEqual(*root1, *root2));
}

TEST(SecureStoreTest, IntegrityRootRequiresIntegrity) {
  SecureDataStore store("S", KeyFromString("k"), DataProtection());
  EXPECT_FALSE(store.IntegrityRoot().ok());
}

TEST(SecureStoreTest, MissingChunkIsNotFound) {
  SecureDataStore store("S", KeyFromString("k"), FullProtection());
  EXPECT_EQ(store.Get(42).status().code(), StatusCode::kNotFound);
}

TEST(SecureStoreTest, DifferentKeysCannotRead) {
  DataProtection p;
  p.encryption = true;
  SecureDataStore alice("S", KeyFromString("alice"), p);
  ASSERT_TRUE(alice.Put(0, Blob("secret")).ok());
  // A store with another key but the same module name simulates a provider
  // trying to read tenant data: the seal cannot be opened.
  // (We model this by constructing a reader over tampered state: re-keying
  // an existing store is not part of the API, so we verify key separation
  // at the cipher level instead.)
  const AeadCipher k1(DeriveKey(KeyFromString("alice"), "udc-data-S"));
  const AeadCipher k2(DeriveKey(KeyFromString("provider"), "udc-data-S"));
  const SealedBox box = k1.Seal(Blob("secret"), 1);
  EXPECT_TRUE(k1.Open(box).ok());
  EXPECT_FALSE(k2.Open(box).ok());
}

class SecureStoreSweep : public ::testing::TestWithParam<int> {};

TEST_P(SecureStoreSweep, ManyChunksAllVerify) {
  const int n = GetParam();
  SecureDataStore store("S", KeyFromString("k"), FullProtection());
  for (int i = 0; i < n; ++i) {
    ASSERT_TRUE(store
                    .Put(static_cast<uint64_t>(i),
                         Blob("chunk-" + std::to_string(i)))
                    .ok());
  }
  for (int i = 0; i < n; ++i) {
    const auto out = store.Get(static_cast<uint64_t>(i));
    ASSERT_TRUE(out.ok()) << i;
    EXPECT_EQ(*out, Blob("chunk-" + std::to_string(i)));
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, SecureStoreSweep,
                         ::testing::Values(1, 2, 5, 16, 33));

}  // namespace
}  // namespace udc
