// Tests for the control-plane services layered on the core: the repair
// orchestrator, the actor-based executor, hybrid deployment, and the RPC
// frontend.

#include <gtest/gtest.h>

#include "src/core/actor_executor.h"
#include "src/core/frontend.h"
#include "src/core/hybrid.h"
#include "src/core/auditor.h"
#include "src/core/defrag.h"
#include "src/core/monitor.h"
#include "src/core/repair.h"
#include "src/core/runtime.h"
#include "src/common/strings.h"
#include "src/aspects/spec_parser.h"
#include "src/workload/medical.h"

namespace udc {
namespace {

class ServiceTest : public ::testing::Test {
 protected:
  ServiceTest() {
    UdcCloudConfig config;
    config.datacenter.racks = 4;
    cloud_ = std::make_unique<UdcCloud>(config);
    tenant_ = cloud_->RegisterTenant("hospital");
    spec_ = std::make_unique<AppSpec>(std::move(*MedicalAppSpec()));
    auto deployment = cloud_->Deploy(tenant_, *spec_);
    EXPECT_TRUE(deployment.ok());
    deployment_ = std::move(*deployment);
  }

  std::unique_ptr<UdcCloud> cloud_;
  TenantId tenant_;
  std::unique_ptr<AppSpec> spec_;
  std::unique_ptr<Deployment> deployment_;
};

// --- RepairService -------------------------------------------------------

TEST_F(ServiceTest, RepairReplacesFailedComputeDevice) {
  CheckpointStore checkpoints;
  RepairService repair(cloud_->sim(), deployment_.get(), &cloud_->envs(),
                       &checkpoints);

  const Placement* a4 = deployment_->PlacementOf(spec_->graph.IdOf("A4"));
  const ResourceUnit* unit = deployment_->FindUnit(a4->unit);
  const DeviceId victim = unit->PrimaryDevice(ResourceKind::kCpu);
  Device* device =
      cloud_->datacenter().pool(DeviceKind::kCpuBlade).FindDevice(victim);
  ASSERT_NE(device, nullptr);
  device->set_health(DeviceHealth::kFailed);

  const auto actions = repair.HandleDeviceFailure(victim);
  ASSERT_FALSE(actions.empty());
  bool a4_repaired = false;
  for (const RepairAction& action : actions) {
    if (action.module_name == "A4") {
      a4_repaired = true;
      EXPECT_TRUE(action.success) << action.detail;
      EXPECT_NE(action.replacement_device, victim);
      EXPECT_EQ(action.handling, FailureHandling::kCheckpointRestore);
      EXPECT_GT(action.recovery_time, SimTime(0));
    }
  }
  EXPECT_TRUE(a4_repaired);
  // The placement moved off the dead device.
  const Placement* after = deployment_->PlacementOf(spec_->graph.IdOf("A4"));
  const ResourceUnit* after_unit = deployment_->FindUnit(after->unit);
  EXPECT_NE(after_unit->PrimaryDevice(ResourceKind::kCpu), victim);
  // And the DAG still runs end to end.
  DagRuntime runtime(cloud_->sim(), deployment_.get());
  EXPECT_TRUE(runtime.RunOnce().ok());
}

TEST_F(ServiceTest, RepairRebuildsFailedReplica) {
  CheckpointStore checkpoints;
  RepairService repair(cloud_->sim(), deployment_.get(), &cloud_->envs(),
                       &checkpoints);

  const ModuleId s1 = spec_->graph.IdOf("S1");
  const Placement* placement = deployment_->PlacementOf(s1);
  ASSERT_EQ(placement->replica_devices.size(), 3u);
  const DeviceId victim = placement->replica_devices[1];
  Device* device =
      cloud_->datacenter().pool(DeviceKind::kSsdDrive).FindDevice(victim);
  ASSERT_NE(device, nullptr);
  device->set_health(DeviceHealth::kFailed);

  const auto actions = repair.HandleDeviceFailure(victim);
  ASSERT_EQ(actions.size(), 1u);
  EXPECT_TRUE(actions[0].success) << actions[0].detail;
  EXPECT_EQ(actions[0].handling, FailureHandling::kFailover);
  EXPECT_GT(actions[0].recovery_time, SimTime(0));  // re-silvering charged

  const Placement* after = deployment_->PlacementOf(s1);
  EXPECT_EQ(after->replica_devices.size(), 3u);
  for (const DeviceId d : after->replica_devices) {
    EXPECT_NE(d, victim);
  }
  // Store stays fully available for the declared factor.
  EXPECT_EQ(deployment_->StoreOf(s1)->config().replication_factor, 3);
}

TEST_F(ServiceTest, RepairAttachesToInjector) {
  CheckpointStore checkpoints;
  RepairService repair(cloud_->sim(), deployment_.get(), &cloud_->envs(),
                       &checkpoints);
  repair.Attach(&cloud_->failures());

  const Placement* a2 = deployment_->PlacementOf(spec_->graph.IdOf("A2"));
  const ResourceUnit* unit = deployment_->FindUnit(a2->unit);
  const DeviceId victim = unit->PrimaryDevice(ResourceKind::kGpu);
  Device* device =
      cloud_->datacenter().pool(DeviceKind::kGpuBoard).FindDevice(victim);
  cloud_->failures().ScheduleFailure(device, SimTime::Seconds(1), SimTime(0));
  cloud_->sim()->RunToCompletion();

  EXPECT_GE(repair.repairs_attempted(), 1);
  EXPECT_GE(repair.repairs_succeeded(), 1);
}


TEST(RepairDomainTest, DomainMembersCoFail) {
  UdcCloudConfig config;
  config.datacenter.racks = 4;
  UdcCloud cloud(config);
  const TenantId tenant = cloud.RegisterTenant("t");
  auto spec = ParseAppSpec(R"(
app domains
task A work=5000
task B work=5000
task C work=5000
edge A -> B
aspect A resource cpu=1000m
aspect A exec isolation=strong tenancy=single
aspect B resource cpu=32000m
aspect C resource cpu=1000m
domain pair members=A,B
)");
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  auto deployment = cloud.Deploy(tenant, *spec);
  ASSERT_TRUE(deployment.ok());

  CheckpointStore checkpoints;
  RepairService repair(cloud.sim(), deployment->get(), &cloud.envs(),
                       &checkpoints);

  // Fail only A's device (ensure it is not shared with B by checking ids).
  const Placement* a = (*deployment)->PlacementOf(spec->graph.IdOf("A"));
  const DeviceId victim =
      (*deployment)->FindUnit(a->unit)->PrimaryDevice(ResourceKind::kCpu);
  Device* device =
      cloud.datacenter().pool(DeviceKind::kCpuBlade).FindDevice(victim);
  ASSERT_NE(device, nullptr);
  device->set_health(DeviceHealth::kFailed);

  const auto actions = repair.HandleDeviceFailure(victim);
  bool a_repaired = false;
  bool b_cofailed = false;
  bool c_touched = false;
  for (const RepairAction& action : actions) {
    if (action.module_name == "A") {
      a_repaired = true;
    }
    if (action.module_name == "B" &&
        action.detail.find("co-failure") != std::string::npos) {
      b_cofailed = true;
      EXPECT_GT(action.recovery_time, SimTime(0));
    }
    if (action.module_name == "C") {
      c_touched = true;
    }
  }
  EXPECT_TRUE(a_repaired);
  // B co-fails with A; C (outside the domain) is untouched unless it shared
  // the device.
  const Placement* b = (*deployment)->PlacementOf(spec->graph.IdOf("B"));
  const Placement* c = (*deployment)->PlacementOf(spec->graph.IdOf("C"));
  const DeviceId b_dev =
      (*deployment)->FindUnit(b->unit)->PrimaryDevice(ResourceKind::kCpu);
  const DeviceId c_dev =
      (*deployment)->FindUnit(c->unit)->PrimaryDevice(ResourceKind::kCpu);
  if (b_dev != victim) {
    EXPECT_TRUE(b_cofailed);
  }
  if (c_dev != victim) {
    EXPECT_FALSE(c_touched);
  }
  EXPECT_EQ(cloud.sim()->metrics().counter("repair.cofailures"),
            b_cofailed ? 1 : 0);
}

// --- ActorExecutor -------------------------------------------------------

TEST_F(ServiceTest, ActorExecutionMatchesDagShape) {
  ActorExecutor executor(cloud_->sim(), deployment_.get());
  std::vector<InvocationResult> results;
  executor.Submit([&](const InvocationResult& r) { results.push_back(r); });
  cloud_->sim()->RunToCompletion();
  ASSERT_EQ(results.size(), 1u);
  EXPECT_GT(results[0].latency(), SimTime(0));
  EXPECT_EQ(executor.completed(), 1u);

  // One unloaded invocation should be in the same ballpark as the analytic
  // runtime's critical path (both charge the same per-stage service times;
  // env_wait is excluded from the actor path).
  DagRuntime analytic(cloud_->sim(), deployment_.get());
  const auto report = analytic.RunOnce();
  ASSERT_TRUE(report.ok());
  EXPECT_LT(results[0].latency(), report->end_to_end * 2);
}

TEST_F(ServiceTest, ConcurrentInvocationsQueue) {
  ActorExecutor executor(cloud_->sim(), deployment_.get());
  std::vector<SimTime> latencies;
  for (int i = 0; i < 5; ++i) {
    executor.Submit([&](const InvocationResult& r) {
      latencies.push_back(r.latency());
    });
  }
  cloud_->sim()->RunToCompletion();
  ASSERT_EQ(latencies.size(), 5u);
  // All submitted at t=0: later invocations wait behind earlier ones at the
  // bottleneck module, so latency is non-decreasing.
  for (size_t i = 1; i < latencies.size(); ++i) {
    EXPECT_GE(latencies[i], latencies[i - 1]);
  }
  EXPECT_GT(latencies.back(), latencies.front());
}

TEST_F(ServiceTest, ActorRecoveryReplaysLog) {
  ActorExecutor executor(cloud_->sim(), deployment_.get());
  int completions = 0;
  executor.Submit([&](const InvocationResult&) { ++completions; });
  cloud_->sim()->RunToCompletion();
  EXPECT_EQ(completions, 1);

  const ModuleId a2 = spec_->graph.IdOf("A2");
  const auto replayed = executor.CrashAndRecover(a2);
  ASSERT_TRUE(replayed.ok()) << replayed.status().ToString();
  EXPECT_GE(*replayed, 1u);  // its input message was logged
  cloud_->sim()->RunToCompletion();
  // Replay of a completed invocation is ignored (no double completion).
  EXPECT_EQ(completions, 1);
}

// --- HybridDeployer ------------------------------------------------------

TEST_F(ServiceTest, HybridPrefersUdc) {
  IaasCloud iaas(cloud_->sim(), &cloud_->datacenter().topology(), 4);
  HybridDeployer hybrid(cloud_.get(), &iaas);
  const auto result = hybrid.Deploy(tenant_, *spec_);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->path, HybridPath::kUdc);
  EXPECT_NE(result->udc, nullptr);
  EXPECT_EQ(hybrid.udc_deploys(), 1);
  EXPECT_EQ(hybrid.iaas_fallbacks(), 0);
}

TEST_F(ServiceTest, HybridFallsBackWhenPoolsExhausted) {
  // A UDC region with no GPUs cannot host the medical app; the hybrid path
  // lands it on the server fleet instead.
  UdcCloudConfig tiny;
  tiny.datacenter.racks = 1;
  tiny.datacenter.rack.gpu_boards = 0;
  UdcCloud small(tiny);
  const TenantId t = small.RegisterTenant("h");
  IaasCloud iaas(small.sim(), &small.datacenter().topology(), 8);
  HybridDeployer hybrid(&small, &iaas);

  const auto result = hybrid.Deploy(t, *spec_);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->path, HybridPath::kIaas);
  EXPECT_EQ(result->instances.size(), spec_->graph.size());
  EXPECT_EQ(hybrid.iaas_fallbacks(), 1);
  // Instance economics: the fallback costs more per hour than UDC would.
  const Money iaas_cost = result->HourlyCost(small.billing(), iaas);
  EXPECT_GT(iaas_cost.micro_usd(), 0);
}

TEST_F(ServiceTest, HybridPropagatesRealErrors) {
  IaasCloud iaas(cloud_->sim(), &cloud_->datacenter().topology(), 4);
  HybridDeployer hybrid(cloud_.get(), &iaas);
  AppSpec broken;
  auto a = broken.graph.AddTask("a", 1);
  auto b = broken.graph.AddTask("b", 1);
  ASSERT_TRUE(broken.graph.AddEdge(*a, *b).ok());
  ASSERT_TRUE(broken.graph.AddEdge(*b, *a).ok());  // cycle
  const auto result = hybrid.Deploy(tenant_, broken);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(hybrid.iaas_fallbacks(), 0);  // no silent fallback on bad specs
}


// --- ContinuousAuditor ---------------------------------------------------

TEST_F(ServiceTest, AuditorQuietOnHonestProvider) {
  FulfillmentVerifier verifier(cloud_->sim(), cloud_->vendor_root(),
                               &cloud_->attestation());
  AuditorConfig config;
  config.sample_per_round = 0;  // audit everything
  ContinuousAuditor auditor(cloud_->sim(), &verifier, deployment_.get(),
                            config);
  EXPECT_TRUE(auditor.RunRound().empty());
  EXPECT_EQ(auditor.rounds(), 1);
  EXPECT_EQ(auditor.modules_audited(), 10);
}

TEST_F(ServiceTest, AuditorCatchesLateDowngrade) {
  FulfillmentVerifier verifier(cloud_->sim(), cloud_->vendor_root(),
                               &cloud_->attestation());
  AuditorConfig config;
  config.sample_per_round = 0;
  ContinuousAuditor auditor(cloud_->sim(), &verifier, deployment_.get(),
                            config);
  ASSERT_TRUE(auditor.RunRound().empty());

  // The provider swaps A4's enclave for a shared container after the fact.
  const Placement* a4 = deployment_->PlacementOf(spec_->graph.IdOf("A4"));
  ResourceUnit* unit = deployment_->FindUnit(a4->unit);
  LaunchOptions cheap;
  cheap.kind = EnvKind::kContainer;
  cheap.tenancy = TenancyMode::kShared;
  unit->env = cloud_->envs().Launch(tenant_, a4->home, cheap, nullptr);
  cloud_->sim()->RunToCompletion();

  const auto findings = auditor.RunRound();
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].module_name, "A4");
  EXPECT_EQ(cloud_->sim()->metrics().counter("audit.violations"), 1);
}

TEST_F(ServiceTest, AuditorPeriodicRoundsRespectHorizon) {
  FulfillmentVerifier verifier(cloud_->sim(), cloud_->vendor_root(),
                               &cloud_->attestation());
  AuditorConfig config;
  config.period = SimTime::Minutes(10);
  config.sample_per_round = 2;
  ContinuousAuditor auditor(cloud_->sim(), &verifier, deployment_.get(),
                            config);
  int callbacks = 0;
  auditor.Start(SimTime::Hours(1),
                [&](const AuditFinding&) { ++callbacks; });
  cloud_->sim()->RunToCompletion();
  EXPECT_EQ(auditor.rounds(), 6);  // 10..60 minutes
  EXPECT_EQ(auditor.modules_audited(), 12);
  EXPECT_EQ(callbacks, 0);
  EXPECT_LE(cloud_->sim()->now(), SimTime::Hours(1) + SimTime::Minutes(1));
}


// --- Defragmenter --------------------------------------------------------

TEST(DefragTest, MeasuresAndConsolidatesFragmentation) {
  // A tight datacenter where a large DRAM ask must spill across modules.
  UdcCloudConfig config;
  config.datacenter.racks = 1;
  config.datacenter.rack.dram_modules = 4;  // 4 x 256 GiB
  UdcCloud cloud(config);
  const TenantId tenant = cloud.RegisterTenant("t");

  // Fill 200 GiB of one module so the next ask cannot fit on any single one.
  AllocationConstraints fill_constraints;
  fill_constraints.single_device = true;
  auto filler = cloud.datacenter()
                    .pool(DeviceKind::kDramModule)
                    .Allocate(TenantId(99), Bytes::GiB(200).bytes(),
                              fill_constraints,
                              cloud.datacenter().topology());
  ASSERT_TRUE(filler.ok());
  // Every module now has at most 256 free except one with 56: a 300 GiB ask
  // must fragment (256 + 44).
  auto spec = ParseAppSpec(R"(
app frag
task big work=100
aspect big resource cpu=1000m dram=100GiB
)");
  ASSERT_TRUE(spec.ok());
  auto deployment = cloud.Deploy(tenant, *spec);
  ASSERT_TRUE(deployment.ok()) << deployment.status().ToString();

  Defragmenter defrag(cloud.sim(), deployment->get());
  const FragmentationReport before = defrag.Measure();
  EXPECT_GE(before.fragmented, 1);
  EXPECT_GT(before.MeanSlices(), 1.0);

  // Free the filler: consolidation now has room.
  ASSERT_TRUE(cloud.datacenter()
                  .pool(DeviceKind::kDramModule)
                  .Release(*filler)
                  .ok());
  const auto result = defrag.Consolidate();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GE(result->moves, 1);
  EXPECT_GT(result->migration_time, SimTime(0));

  const FragmentationReport after = defrag.Measure();
  EXPECT_EQ(after.fragmented, 0);
  EXPECT_DOUBLE_EQ(after.MeanSlices(), 1.0);
  // No capacity leaked by the move.
  const int64_t held =
      (*deployment)->TotalResources().Get(ResourceKind::kDram);
  EXPECT_EQ(held, Bytes::GiB(100).bytes());
}

TEST(DefragTest, NoOpWhenUnfragmented) {
  UdcCloud cloud;
  const TenantId tenant = cloud.RegisterTenant("t");
  auto spec = ParseAppSpec("app x\ntask t work=1\naspect t resource cpu=500m\n");
  ASSERT_TRUE(spec.ok());
  auto deployment = cloud.Deploy(tenant, *spec);
  ASSERT_TRUE(deployment.ok());
  Defragmenter defrag(cloud.sim(), deployment->get());
  EXPECT_EQ(defrag.Measure().fragmented, 0);
  const auto result = defrag.Consolidate();
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->moves, 0);
}


TEST(DefragTest, ConsolidateIsIdempotent) {
  UdcCloud cloud;
  const TenantId tenant = cloud.RegisterTenant("t");
  auto spec = ParseAppSpec("app x\ntask t work=1\naspect t resource cpu=500m\n");
  auto deployment = cloud.Deploy(tenant, *spec);
  ASSERT_TRUE(deployment.ok());
  Defragmenter defrag(cloud.sim(), deployment->get());
  ASSERT_TRUE(defrag.Consolidate().ok());
  const auto again = defrag.Consolidate();
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->moves, 0);
}

// --- Trace integration ---------------------------------------------------

TEST_F(ServiceTest, TraceRecordsControlPlaneEvents) {
  // Deployment placed every module: the scheduler emitted placement spans
  // (mirrored into the legacy trace as "name k=v" lines).
  const SpanTracer& spans = cloud_->sim()->spans();
  ASSERT_NE(spans.Find("sched.place_task", "module", "A2"), nullptr);
  ASSERT_NE(spans.Find("sched.place_data", "module", "S1"), nullptr);
  EXPECT_TRUE(cloud_->sim()->trace().Contains("sched", "module=A2"));
  EXPECT_TRUE(cloud_->sim()->trace().Contains("sched", "module=S1"));
  // Placement spans parent under the deploy span.
  const Span* place = spans.Find("sched.place_task", "module", "A2");
  const Span* deploy = spans.SpanById(place->parent_span_id);
  ASSERT_NE(deploy, nullptr);
  EXPECT_EQ(deploy->name, "sched.deploy");
  EXPECT_EQ(deploy->trace_id, place->trace_id);

  DagRuntime runtime(cloud_->sim(), deployment_.get());
  ASSERT_TRUE(runtime.RunOnce().ok());
  EXPECT_NE(spans.Find("exec.stage", "module", "A4"), nullptr);
  EXPECT_TRUE(cloud_->sim()->trace().Contains("exec", "module=A4"));

  CheckpointStore checkpoints;
  RepairService repair(cloud_->sim(), deployment_.get(), &cloud_->envs(),
                       &checkpoints);
  const Placement* a4 = deployment_->PlacementOf(spec_->graph.IdOf("A4"));
  const DeviceId victim =
      deployment_->FindUnit(a4->unit)->PrimaryDevice(ResourceKind::kCpu);
  cloud_->datacenter()
      .pool(DeviceKind::kCpuBlade)
      .FindDevice(victim)
      ->set_health(DeviceHealth::kFailed);
  (void)repair.HandleDeviceFailure(victim);
  EXPECT_TRUE(cloud_->sim()->trace().Contains("repair", "A4"));
}


// --- UtilizationMonitor --------------------------------------------------

TEST_F(ServiceTest, MonitorFlushesWindowsAndFeedsTuner) {
  AdaptiveTuner tuner(cloud_->sim(), deployment_.get());
  UtilizationMonitor monitor(cloud_->sim(), &tuner, SimTime::Minutes(10));
  const ModuleId a3 = spec_->graph.IdOf("A3");
  const int64_t before = deployment_->ResourcesOf(a3).Get(ResourceKind::kGpu);

  // A3 runs hot for an hour: ~95% busy per window.
  for (int minute = 0; minute < 60; ++minute) {
    cloud_->sim()->RunUntil(SimTime::Minutes(minute + 1));
    monitor.ReportBusy(a3, Scale(SimTime::Minutes(1), 0.95));
  }
  monitor.Flush();
  EXPECT_GE(monitor.windows_flushed(), 5);
  EXPECT_GT(monitor.LastUtilization(a3), 0.9);
  // The tuner grew the hot slice.
  EXPECT_GT(deployment_->ResourcesOf(a3).Get(ResourceKind::kGpu), before);
}

TEST_F(ServiceTest, MonitorObserveOnlyModeNeedsNoTuner) {
  UtilizationMonitor monitor(cloud_->sim(), nullptr, SimTime::Minutes(5));
  const ModuleId b2 = spec_->graph.IdOf("B2");
  cloud_->sim()->RunUntil(SimTime::Minutes(6));
  monitor.ReportBusy(b2, SimTime::Minutes(1));
  cloud_->sim()->RunUntil(SimTime::Minutes(12));
  monitor.Flush();
  EXPECT_GT(monitor.windows_flushed(), 0);
  // Utilization lands in a per-module labeled gauge, not a shared series.
  const MetricLabels b2_labels = {
      {"module",
       StrFormat("%llu", static_cast<unsigned long long>(b2.value()))}};
  EXPECT_GT(cloud_->sim()->metrics().gauge("monitor.utilization", b2_labels),
            0.0);
  EXPECT_GT(cloud_->sim()->metrics().counter("monitor.windows_flushed"), 0);
}

// --- CloudFrontend -------------------------------------------------------

class FrontendTest : public ::testing::Test {
 protected:
  FrontendTest() {
    cloud_ = std::make_unique<UdcCloud>();
    tenant_ = cloud_->RegisterTenant("hospital");
    const NodeId frontend_node =
        cloud_->datacenter().topology().AddNode(0, NodeRole::kServer);
    frontend_ = std::make_unique<CloudFrontend>(cloud_.get(), frontend_node);
    const NodeId client_node =
        cloud_->datacenter().topology().AddNode(0, NodeRole::kServer);
    client_ = std::make_unique<TenantClient>(cloud_->sim(), &cloud_->fabric(),
                                             client_node, frontend_node,
                                             tenant_);
  }

  std::string Call(void (TenantClient::*method)(uint64_t,
                                                std::function<void(Result<std::string>)>),
                   uint64_t id) {
    std::string response;
    (client_.get()->*method)(id, [&](Result<std::string> r) {
      response = r.ok() ? *r : "rpc-error:" + r.status().ToString();
    });
    cloud_->sim()->RunToCompletion();
    return response;
  }

  std::unique_ptr<UdcCloud> cloud_;
  TenantId tenant_;
  std::unique_ptr<CloudFrontend> frontend_;
  std::unique_ptr<TenantClient> client_;
};

TEST_F(FrontendTest, DeployVerifyBillTeardownOverRpc) {
  std::string deploy_response;
  client_->Deploy(MedicalAppUdcl(), [&](Result<std::string> r) {
    deploy_response = r.value_or("FAIL");
  });
  cloud_->sim()->RunToCompletion();
  ASSERT_TRUE(StartsWith(deploy_response, "ok:")) << deploy_response;
  uint64_t id = 0;
  ASSERT_TRUE(ParseUint64(
      std::string_view(deploy_response).substr(3), &id));
  EXPECT_EQ(frontend_->live_deployments(), 1u);

  const std::string verify = Call(&TenantClient::Verify, id);
  EXPECT_TRUE(StartsWith(verify, "ok:")) << verify;
  EXPECT_NE(verify.find("ALL PASS"), std::string::npos);

  const std::string bill = Call(&TenantClient::Bill, id);
  EXPECT_TRUE(StartsWith(bill, "ok:"));
  EXPECT_NE(bill.find("TOTAL"), std::string::npos);

  const std::string teardown = Call(&TenantClient::Teardown, id);
  EXPECT_EQ(teardown, "ok:released");
  EXPECT_EQ(frontend_->live_deployments(), 0u);
  EXPECT_TRUE(cloud_->datacenter().TotalAllocated().IsZero());
}

TEST_F(FrontendTest, RejectsMalformedSpecOverRpc) {
  std::string response;
  client_->Deploy("definitely not a udcl document", [&](Result<std::string> r) {
    response = r.value_or("FAIL");
  });
  cloud_->sim()->RunToCompletion();
  EXPECT_TRUE(StartsWith(response, "err:")) << response;
}

TEST_F(FrontendTest, TenantIsolationOnDeploymentIds) {
  std::string deploy_response;
  client_->Deploy(MedicalAppUdcl(), [&](Result<std::string> r) {
    deploy_response = r.value_or("FAIL");
  });
  cloud_->sim()->RunToCompletion();
  ASSERT_TRUE(StartsWith(deploy_response, "ok:"));
  uint64_t id = 0;
  ASSERT_TRUE(ParseUint64(std::string_view(deploy_response).substr(3), &id));

  // Another tenant cannot bill, verify or tear down this deployment.
  const TenantId other = cloud_->RegisterTenant("rival");
  const NodeId rival_node =
      cloud_->datacenter().topology().AddNode(0, NodeRole::kServer);
  TenantClient rival(cloud_->sim(), &cloud_->fabric(), rival_node,
                     frontend_->node(), other);
  std::string response;
  rival.Teardown(id, [&](Result<std::string> r) {
    response = r.value_or("FAIL");
  });
  cloud_->sim()->RunToCompletion();
  EXPECT_NE(response.find("PERMISSION_DENIED"), std::string::npos);
  EXPECT_EQ(frontend_->live_deployments(), 1u);  // still alive
}

TEST_F(FrontendTest, UnknownDeploymentIdRejected) {
  const std::string response = Call(&TenantClient::Bill, 999);
  EXPECT_TRUE(StartsWith(response, "err:"));
}

}  // namespace
}  // namespace udc
