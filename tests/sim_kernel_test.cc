// Simulation-kernel fast path: InlineCallback storage/move/destruction, the
// slot-slab event queue's generation handles (cancel-after-fire, handle
// reuse ABA, stale heap entries), and — the load-bearing property — that the
// fast kernel is indistinguishable from the legacy queue: a randomized
// queue-level differential plus full-scenario runs (medical pipeline,
// replication under failures) whose traces must match byte for byte across
// kernels.

#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/core/runtime.h"
#include "src/core/udc_cloud.h"
#include "src/dist/replication.h"
#include "src/net/fabric.h"
#include "src/net/rpc.h"
#include "src/obs/exposition.h"
#include "src/sim/event_queue.h"
#include "src/sim/inline_callback.h"
#include "src/sim/legacy_event_queue.h"
#include "src/sim/simulation.h"
#include "src/workload/medical.h"

namespace udc {
namespace {

// Counts constructions/destructions/invocations through shared state so the
// callable can be moved freely.
struct Probe {
  std::shared_ptr<int> destroyed = std::make_shared<int>(0);
  std::shared_ptr<int> invoked = std::make_shared<int>(0);
};

template <size_t kPad>
struct PaddedCallable {
  std::shared_ptr<int> destroyed;
  std::shared_ptr<int> invoked;
  char pad[kPad] = {};
  bool moved_from = false;

  PaddedCallable(const Probe& probe)
      : destroyed(probe.destroyed), invoked(probe.invoked) {}
  PaddedCallable(PaddedCallable&& other) noexcept
      : destroyed(std::move(other.destroyed)),
        invoked(std::move(other.invoked)) {
    other.moved_from = true;
  }
  PaddedCallable(const PaddedCallable&) = delete;
  ~PaddedCallable() {
    if (!moved_from) {
      ++*destroyed;
    }
  }
  void operator()() { ++*invoked; }
};

TEST(InlineCallbackTest, SmallCaptureStaysInline) {
  Probe probe;
  InlineCallback cb = PaddedCallable<8>(probe);
  EXPECT_TRUE(cb.is_inline());
  EXPECT_TRUE(static_cast<bool>(cb));
  cb();
  cb();
  EXPECT_EQ(*probe.invoked, 2);
  cb.Reset();
  EXPECT_EQ(*probe.destroyed, 1);
  EXPECT_FALSE(static_cast<bool>(cb));
}

TEST(InlineCallbackTest, LargeCaptureSpillsToSlabAndIsReturned) {
  InlineCallback::ResetSlabStatsForTest();
  Probe probe;
  {
    InlineCallback cb = PaddedCallable<200>(probe);
    EXPECT_FALSE(cb.is_inline());
    EXPECT_EQ(InlineCallback::slab_stats().spills, 1u);
    EXPECT_EQ(InlineCallback::slab_stats().outstanding, 1u);
    cb();
  }
  EXPECT_EQ(*probe.invoked, 1);
  EXPECT_EQ(*probe.destroyed, 1);
  EXPECT_EQ(InlineCallback::slab_stats().outstanding, 0u);
}

TEST(InlineCallbackTest, SlabBlocksAreRecycledAcrossCallbacks) {
  InlineCallback::ResetSlabStatsForTest();
  Probe probe;
  { InlineCallback warm = PaddedCallable<200>(probe); }
  const uint64_t fresh_after_warm = InlineCallback::slab_stats().fresh_blocks;
  const uint64_t reused_after_warm = InlineCallback::slab_stats().reused_blocks;
  for (int i = 0; i < 100; ++i) {
    InlineCallback cb = PaddedCallable<200>(probe);
    cb();
  }
  // Steady state: every spill reuses the warm block; no new operator new.
  EXPECT_EQ(InlineCallback::slab_stats().fresh_blocks, fresh_after_warm);
  EXPECT_EQ(InlineCallback::slab_stats().reused_blocks,
            reused_after_warm + 100);
}

TEST(InlineCallbackTest, MoveTransfersOwnershipInline) {
  Probe probe;
  InlineCallback a = PaddedCallable<8>(probe);
  InlineCallback b = std::move(a);
  EXPECT_FALSE(static_cast<bool>(a));  // NOLINT(bugprone-use-after-move)
  ASSERT_TRUE(static_cast<bool>(b));
  b();
  EXPECT_EQ(*probe.invoked, 1);
  b.Reset();
  // Exactly one live copy was ever destroyed.
  EXPECT_EQ(*probe.destroyed, 1);
}

TEST(InlineCallbackTest, MoveTransfersOwnershipSpilled) {
  InlineCallback::ResetSlabStatsForTest();
  Probe probe;
  InlineCallback a = PaddedCallable<200>(probe);
  InlineCallback b = std::move(a);
  EXPECT_FALSE(static_cast<bool>(a));  // NOLINT(bugprone-use-after-move)
  EXPECT_EQ(InlineCallback::slab_stats().outstanding, 1u);
  b();
  b.Reset();
  EXPECT_EQ(*probe.invoked, 1);
  EXPECT_EQ(*probe.destroyed, 1);
  EXPECT_EQ(InlineCallback::slab_stats().outstanding, 0u);
}

TEST(InlineCallbackTest, WrapsStdFunctionAsLegacyBridge) {
  int fired = 0;
  std::function<void()> fn = [&fired] { ++fired; };
  InlineCallback cb = std::move(fn);
  cb();
  EXPECT_EQ(fired, 1);
}

TEST(EventQueueSlotTest, CancelAfterFireFailsEvenWhenSlotReused) {
  EventQueue q;
  int fired_a = 0;
  int fired_b = 0;
  const EventHandle a = q.Schedule(SimTime::Millis(1), [&] { ++fired_a; });
  q.PopAndRun();
  // B reuses A's slot (single-slot queue); A's stale handle must not be able
  // to cancel it.
  const EventHandle b = q.Schedule(SimTime::Millis(2), [&] { ++fired_b; });
  EXPECT_EQ(a.slot, b.slot);
  EXPECT_NE(a.gen, b.gen);
  EXPECT_FALSE(q.Cancel(a));
  q.PopAndRun();
  EXPECT_EQ(fired_a, 1);
  EXPECT_EQ(fired_b, 1);
  EXPECT_FALSE(q.Cancel(b));  // after fire
}

TEST(EventQueueSlotTest, CancelledSlotReuseKeepsTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  const EventHandle h = q.Schedule(SimTime::Millis(5), [&] { order.push_back(5); });
  EXPECT_TRUE(q.Cancel(h));
  // Reuses the cancelled slot while its stale heap entry (for t=5ms) is
  // still buried in the heap.
  q.Schedule(SimTime::Millis(1), [&] { order.push_back(1); });
  EXPECT_EQ(q.NextTime(), SimTime::Millis(1));
  while (!q.empty()) {
    q.PopAndRun();
  }
  EXPECT_EQ(order, (std::vector<int>{1}));
}

TEST(EventQueueSlotTest, CancelReleasesCaptureImmediately) {
  EventQueue q;
  auto token = std::make_shared<int>(7);
  const EventHandle h = q.Schedule(SimTime::Millis(1), [token] { (void)*token; });
  EXPECT_EQ(token.use_count(), 2);
  EXPECT_TRUE(q.Cancel(h));
  EXPECT_EQ(token.use_count(), 1);  // capture destroyed at cancel, not pop
}

TEST(EventQueueSlotTest, SequentialEventsShareOneSlot) {
  EventQueue q;
  int fired = 0;
  q.Schedule(SimTime::Millis(1), [&] { ++fired; });
  for (int i = 0; i < 999; ++i) {
    q.PopAndRun();
    q.Schedule(SimTime::Millis(1), [&] { ++fired; });
  }
  q.PopAndRun();
  EXPECT_EQ(fired, 1000);
  EXPECT_EQ(q.slot_capacity(), 1u);
  EXPECT_EQ(q.total_scheduled(), 1000u);
}

// Queue-level differential: identical op sequences against the fast queue
// and the legacy oracle must agree on every observable — fire order, cancel
// results, next-event times and sizes.
TEST(KernelDifferentialTest, RandomScheduleCancelMatchesLegacyQueue) {
  struct Op {
    int64_t at_us;       // relative to current time of the op index
    bool cancel;         // cancel a previously scheduled event
    size_t cancel_victim;
  };
  Rng rng(0xD1FFu);
  std::vector<Op> ops;
  for (int i = 0; i < 2000; ++i) {
    Op op;
    op.at_us = rng.NextInt64InRange(0, 10000);
    op.cancel = i > 0 && rng.NextBool(0.3);
    op.cancel_victim =
        static_cast<size_t>(rng.NextInt64InRange(0, i > 0 ? i - 1 : 0));
    ops.push_back(op);
  }

  EventQueue fast;
  LegacyEventQueue legacy;
  std::vector<int> fast_fired, legacy_fired;
  std::vector<EventHandle> fast_handles, legacy_handles;

  for (size_t i = 0; i < ops.size(); ++i) {
    fast_handles.push_back(fast.Schedule(
        SimTime(ops[i].at_us), [&fast_fired, i] { fast_fired.push_back(static_cast<int>(i)); }));
    legacy_handles.push_back(legacy.Schedule(
        SimTime(ops[i].at_us),
        [&legacy_fired, i] { legacy_fired.push_back(static_cast<int>(i)); }));
    if (ops[i].cancel) {
      const size_t victim = ops[i].cancel_victim;
      EXPECT_EQ(fast.Cancel(fast_handles[victim]),
                legacy.Cancel(legacy_handles[victim]));
    }
    ASSERT_EQ(fast.size(), legacy.size());
  }
  while (!legacy.empty()) {
    ASSERT_FALSE(fast.empty());
    ASSERT_EQ(fast.NextTime(), legacy.NextTime());
    EXPECT_EQ(fast.PopAndRun(), legacy.PopAndRun());
  }
  EXPECT_TRUE(fast.empty());
  EXPECT_EQ(fast_fired, legacy_fired);
  EXPECT_EQ(fast.total_scheduled(), legacy.total_scheduled());
}

// Scenario-level determinism: the same seed must produce byte-identical
// trace output, metrics and event counts under both kernels.
struct ScenarioResult {
  std::string trace;
  std::string metrics;
  uint64_t events_executed = 0;
};

ScenarioResult RunMedicalScenario(SimKernel kernel, int threads = 1) {
  UdcCloudConfig config;
  config.kernel = kernel;
  config.parallel.threads = threads;  // ignored unless kernel == kParallel
  config.datacenter.racks = 4;
  UdcCloud cloud(config);
  const TenantId tenant = cloud.RegisterTenant("hospital");
  auto spec = MedicalAppSpec();
  auto deployment = cloud.Deploy(tenant, *spec);
  EXPECT_TRUE(deployment.ok());
  DagRuntime runtime(cloud.sim(), deployment->get());
  EXPECT_TRUE(runtime.RunOnce().ok());
  cloud.sim()->RunUntil(SimTime::Minutes(10));
  ScenarioResult result;
  result.trace = cloud.sim()->trace().Dump();
  result.metrics = PrometheusExposition(cloud.sim()->metrics());
  result.events_executed = cloud.sim()->events_executed();
  return result;
}

TEST(KernelDifferentialTest, MedicalPipelineIsKernelInvariant) {
  const ScenarioResult fast = RunMedicalScenario(SimKernel::kFast);
  const ScenarioResult legacy = RunMedicalScenario(SimKernel::kLegacy);
  EXPECT_GT(fast.events_executed, 0u);
  EXPECT_EQ(fast.events_executed, legacy.events_executed);
  EXPECT_EQ(fast.trace, legacy.trace);
  EXPECT_EQ(fast.metrics, legacy.metrics);
}

ScenarioResult RunReplicationScenario(SimKernel kernel, int threads = 1) {
  ParallelConfig parallel;
  parallel.threads = threads;  // ignored unless kernel == kParallel
  Simulation sim(7, kernel, parallel);
  Topology topo;
  const int r0 = topo.AddRack();
  const int r1 = topo.AddRack();
  const NodeId client = topo.AddNode(r0, NodeRole::kDevice);
  const std::vector<NodeId> replicas = {topo.AddNode(r0, NodeRole::kDevice),
                                        topo.AddNode(r0, NodeRole::kDevice),
                                        topo.AddNode(r1, NodeRole::kDevice)};
  Fabric fabric(&sim, &topo);
  ReplicationConfig config;
  config.protocol = ReplicationProtocol::kPrimaryBackup;
  config.replication_factor = 3;
  ReplicatedStore store(&sim, &fabric, &topo, "store", replicas, config,
                        nullptr);
  int completed = 0;
  for (int i = 0; i < 50; ++i) {
    sim.After(SimTime::Millis(i), [&, i] {
      if (i == 20) {
        fabric.SetNodeUp(replicas[2], false);
      }
      if (i == 35) {
        fabric.SetNodeUp(replicas[2], true);
      }
      if (i % 3 == 0) {
        store.Write(client, Bytes::KiB(1), [&](OpResult) { ++completed; });
      } else {
        store.Read(client, Bytes::KiB(1), [&](OpResult) { ++completed; });
      }
    });
  }
  sim.RunToCompletion();
  EXPECT_EQ(completed, 50);
  ScenarioResult result;
  result.trace = sim.trace().Dump();
  result.metrics = PrometheusExposition(sim.metrics());
  result.events_executed = sim.events_executed();
  return result;
}

TEST(KernelDifferentialTest, ReplicationUnderFailuresIsKernelInvariant) {
  const ScenarioResult fast = RunReplicationScenario(SimKernel::kFast);
  const ScenarioResult legacy = RunReplicationScenario(SimKernel::kLegacy);
  EXPECT_GT(fast.events_executed, 0u);
  EXPECT_EQ(fast.events_executed, legacy.events_executed);
  EXPECT_EQ(fast.trace, legacy.trace);
  EXPECT_EQ(fast.metrics, legacy.metrics);
}

// A run that never assigns a rack to a worker shard stays in the parallel
// kernel's serial fast path — the kFast inner loop verbatim — so the full
// medical scenario must match kFast byte for byte at every thread count.
TEST(ParallelDifferentialTest, MedicalPipelineMatchesFastAtEveryThreadCount) {
  const ScenarioResult fast = RunMedicalScenario(SimKernel::kFast);
  EXPECT_GT(fast.events_executed, 0u);
  for (int threads : {1, 2, 4, 8}) {
    const ScenarioResult parallel =
        RunMedicalScenario(SimKernel::kParallel, threads);
    EXPECT_EQ(parallel.events_executed, fast.events_executed)
        << "threads=" << threads;
    EXPECT_EQ(parallel.trace, fast.trace) << "threads=" << threads;
    EXPECT_EQ(parallel.metrics, fast.metrics) << "threads=" << threads;
  }
}

TEST(ParallelDifferentialTest, ReplicationMatchesFastAtEveryThreadCount) {
  const ScenarioResult fast = RunReplicationScenario(SimKernel::kFast);
  EXPECT_GT(fast.events_executed, 0u);
  for (int threads : {1, 2, 4, 8}) {
    const ScenarioResult parallel =
        RunReplicationScenario(SimKernel::kParallel, threads);
    EXPECT_EQ(parallel.events_executed, fast.events_executed)
        << "threads=" << threads;
    EXPECT_EQ(parallel.trace, fast.trace) << "threads=" << threads;
    EXPECT_EQ(parallel.metrics, fast.metrics) << "threads=" << threads;
  }
}

// Genuinely sharded traffic: five message chains hopping rack-to-rack
// around four racks, each rack its own worker shard. Chain c starts at
// (1 + c) us and every hop costs the 6 us inter-rack latency, so no two
// events anywhere in the run share a timestamp across shards (offsets
// differ by 1..4 us, never a multiple of the hop) — the condition under
// which kParallel is byte-identical to kFast, not merely to itself.
ScenarioResult RunShardedFanoutScenario(SimKernel kernel, int threads) {
  constexpr int kRacks = 4;
  constexpr int kChains = 5;
  constexpr int kHops = 60;
  ParallelConfig parallel;
  parallel.shards = kRacks;
  parallel.threads = threads;
  Simulation sim(11, kernel, parallel);
  Topology topo;
  std::vector<NodeId> nodes;
  for (int r = 0; r < kRacks; ++r) {
    const int rack = topo.AddRack();
    nodes.push_back(topo.AddNode(rack, NodeRole::kDevice));
    if (sim.parallel() != nullptr) {
      sim.parallel()->AssignRack(rack, static_cast<uint32_t>(r + 1));
    }
  }
  Fabric fabric(&sim, &topo);
  fabric.PreinternType("fanout.hop");
  // hops_left[c] is only ever touched by the shard holding chain c's
  // in-flight message (one per chain; the window barrier publishes the
  // update before the next hop runs on the neighbouring shard).
  std::vector<int> hops_left(kChains, kHops);
  for (int r = 0; r < kRacks; ++r) {
    const NodeId self = nodes[r];
    const NodeId next = nodes[(r + 1) % kRacks];
    fabric.Bind(self, [&fabric, &hops_left, self, next](const Message& msg) {
      const int chain = static_cast<int>(msg.tag);
      if (--hops_left[chain] > 0) {
        fabric.Send(self, next, "fanout.hop", "", Bytes::B(0), msg.tag);
      }
    });
  }
  for (int c = 0; c < kChains; ++c) {
    sim.At(SimTime::Micros(1 + c), [&fabric, &nodes, c] {
      const NodeId from = nodes[c % kRacks];
      const NodeId to = nodes[(c + 1) % kRacks];
      fabric.Send(from, to, "fanout.hop", "", Bytes::B(0),
                  static_cast<uint64_t>(c));
    });
  }
  sim.RunToCompletion();
  EXPECT_EQ(fabric.messages_delivered(),
            static_cast<uint64_t>(kChains) * kHops);
  for (int c = 0; c < kChains; ++c) {
    EXPECT_EQ(hops_left[c], 0) << "chain " << c;
  }
  ScenarioResult result;
  result.trace = sim.trace().Dump();
  result.metrics = PrometheusExposition(sim.metrics());
  result.events_executed = sim.events_executed();
  return result;
}

TEST(ParallelDifferentialTest, ShardedFanoutMatchesFastAtEveryThreadCount) {
  const ScenarioResult fast = RunShardedFanoutScenario(SimKernel::kFast, 1);
  EXPECT_GT(fast.events_executed, 0u);
  EXPECT_NE(fast.trace.find("fanout.hop"), std::string::npos);
  for (int threads : {1, 2, 4, 8}) {
    const ScenarioResult parallel =
        RunShardedFanoutScenario(SimKernel::kParallel, threads);
    EXPECT_EQ(parallel.events_executed, fast.events_executed)
        << "threads=" << threads;
    EXPECT_EQ(parallel.trace, fast.trace) << "threads=" << threads;
    EXPECT_EQ(parallel.metrics, fast.metrics) << "threads=" << threads;
  }
}

// Deliberately skewed topology for the barrier-time rebalancer: worker
// shard 1 owns two racks (r0, r1) and carries three ping-pong chains
// between them, while shards 2 and 3 see only the two ring chains passing
// through. The rebalancer's first check (window 64) finds shard 1 above
// 2x the mean with r0 attributed cross-shard load (ring arrivals from r3),
// migrates r0 to the coldest shard mid-run, and links the two shards until
// the source drains. Chain c starts at (1 + c) us and every hop costs the
// 6 us inter-rack latency, so all timestamps are distinct mod 6 across
// chains — the condition for byte-identity to kFast.
struct SkewedScenario {
  ScenarioResult result;
  uint64_t rebalances = 0;
  uint32_t final_shard_of_r0 = 0;
};

SkewedScenario RunSkewedRebalanceScenario(SimKernel kernel, int threads) {
  constexpr int kPingPongChains = 3;
  constexpr int kChains = 5;  // 3 ping-pong + 2 ring
  constexpr int kHops = 220;
  ParallelConfig parallel;
  parallel.shards = 3;
  parallel.threads = threads;
  Simulation sim(13, kernel, parallel);
  Topology topo;
  std::vector<int> racks;
  std::vector<NodeId> nodes;
  for (int r = 0; r < 4; ++r) {
    racks.push_back(topo.AddRack());
    nodes.push_back(topo.AddNode(racks.back(), NodeRole::kDevice));
  }
  if (sim.parallel() != nullptr) {
    sim.parallel()->AssignRack(racks[0], 1);  // hot shard owns two racks
    sim.parallel()->AssignRack(racks[1], 1);
    sim.parallel()->AssignRack(racks[2], 2);
    sim.parallel()->AssignRack(racks[3], 3);
  }
  Fabric fabric(&sim, &topo);
  fabric.PreinternType("skew.hop");
  std::vector<int> hops_left(kChains, kHops);
  // Ring route for chains 3..4: n1 -> n2 -> n3 -> n0 -> n1.
  const int ring_next[] = {1, 2, 3, 0};
  for (int i = 0; i < 4; ++i) {
    const NodeId self = nodes[i];
    fabric.Bind(self, [&fabric, &nodes, &hops_left, &ring_next, self,
                       i](const Message& msg) {
      const int chain = static_cast<int>(msg.tag);
      if (--hops_left[chain] <= 0) {
        return;
      }
      if (chain < kPingPongChains) {
        const NodeId peer = self == nodes[0] ? nodes[1] : nodes[0];
        fabric.Send(self, peer, "skew.hop", "", Bytes::B(0), msg.tag);
      } else {
        fabric.Send(self, nodes[ring_next[i]], "skew.hop", "", Bytes::B(0),
                    msg.tag);
      }
    });
  }
  for (int c = 0; c < kChains; ++c) {
    sim.At(SimTime::Micros(1 + c), [&fabric, &nodes, c] {
      const NodeId from = c < kPingPongChains ? nodes[0] : nodes[1];
      const NodeId to = c < kPingPongChains ? nodes[1] : nodes[2];
      fabric.Send(from, to, "skew.hop", "", Bytes::B(0),
                  static_cast<uint64_t>(c));
    });
  }
  sim.RunToCompletion();
  EXPECT_EQ(fabric.messages_delivered(),
            static_cast<uint64_t>(kChains) * kHops);
  for (int c = 0; c < kChains; ++c) {
    EXPECT_EQ(hops_left[c], 0) << "chain " << c;
  }
  SkewedScenario out;
  out.result.trace = sim.trace().Dump();
  out.result.metrics = PrometheusExposition(sim.metrics());
  out.result.events_executed = sim.events_executed();
  if (sim.parallel() != nullptr) {
    out.rebalances = sim.parallel()->Stats().rebalances;
    out.final_shard_of_r0 = sim.parallel()->ShardOfRack(racks[0]);
  }
  return out;
}

TEST(ParallelDifferentialTest, SkewedTopologyRebalanceMatchesFast) {
  const SkewedScenario fast =
      RunSkewedRebalanceScenario(SimKernel::kFast, 1);
  EXPECT_GT(fast.result.events_executed, 0u);
  for (int threads : {1, 2, 4, 8}) {
    const SkewedScenario parallel =
        RunSkewedRebalanceScenario(SimKernel::kParallel, threads);
    // The rebalance must actually happen (the scenario is built so shard 1
    // trips the trigger at the first check), it must move rack 0 off the
    // hot shard, and its trajectory must not depend on the thread count.
    EXPECT_GE(parallel.rebalances, 1u) << "threads=" << threads;
    EXPECT_NE(parallel.final_shard_of_r0, 1u) << "threads=" << threads;
    EXPECT_EQ(parallel.rebalances,
              RunSkewedRebalanceScenario(SimKernel::kParallel, 1).rebalances)
        << "threads=" << threads;
    // And the output is still byte-identical to kFast across the mid-run
    // shard-map change.
    EXPECT_EQ(parallel.result.events_executed, fast.result.events_executed)
        << "threads=" << threads;
    EXPECT_EQ(parallel.result.trace, fast.result.trace)
        << "threads=" << threads;
    EXPECT_EQ(parallel.result.metrics, fast.result.metrics)
        << "threads=" << threads;
  }
}

TEST(FabricFastPathTest, SetNodeUpDoesNotGrowDownMap) {
  Simulation sim;
  Topology topo;
  const int rack = topo.AddRack();
  const NodeId a = topo.AddNode(rack, NodeRole::kDevice);
  const NodeId b = topo.AddNode(rack, NodeRole::kDevice);
  Fabric fabric(&sim, &topo);
  for (int i = 0; i < 100; ++i) {
    fabric.SetNodeUp(a, false);
    fabric.SetNodeUp(a, true);
    fabric.SetNodeUp(b, true);  // marking an up node up stores nothing
  }
  EXPECT_TRUE(fabric.IsNodeUp(a));
  EXPECT_EQ(fabric.down_node_count(), 0u);
  fabric.SetNodeUp(a, false);
  EXPECT_EQ(fabric.down_node_count(), 1u);
  EXPECT_FALSE(fabric.IsNodeUp(a));
}

TEST(FabricFastPathTest, MessagesArePooledAndTypesInterned) {
  Simulation sim;
  Topology topo;
  const int rack = topo.AddRack();
  const NodeId a = topo.AddNode(rack, NodeRole::kDevice);
  const NodeId b = topo.AddNode(rack, NodeRole::kDevice);
  Fabric fabric(&sim, &topo);
  std::vector<std::string> seen_types;
  uint32_t first_type_id = 0;
  fabric.Bind(b, [&](const Message& msg) {
    seen_types.push_back(msg.type);
    if (first_type_id == 0) {
      first_type_id = msg.type_id;
    }
    EXPECT_EQ(msg.type_id, first_type_id);
  });
  for (int i = 0; i < 200; ++i) {
    fabric.Send(a, b, "bench.ping", "payload", Bytes::B(128));
    sim.RunToCompletion();
  }
  EXPECT_EQ(seen_types.size(), 200u);
  EXPECT_EQ(seen_types.front(), "bench.ping");
  EXPECT_NE(first_type_id, 0u);
  // Sequential sends share one pooled Message and one interned type.
  EXPECT_EQ(fabric.message_arena_size(), 1u);
  EXPECT_EQ(fabric.interned_type_count(), 1u);
  EXPECT_EQ(fabric.messages_delivered(), 200u);
}

TEST(FabricFastPathTest, DeliveredCounterIsExported) {
  Simulation sim;
  Topology topo;
  const int rack = topo.AddRack();
  const NodeId a = topo.AddNode(rack, NodeRole::kDevice);
  const NodeId b = topo.AddNode(rack, NodeRole::kDevice);
  const NodeId unbound = topo.AddNode(rack, NodeRole::kDevice);
  Fabric fabric(&sim, &topo);
  fabric.Bind(b, [](const Message&) {});
  fabric.Send(a, b, "t", "", Bytes::B(1));
  fabric.Send(a, unbound, "t", "", Bytes::B(1));  // no handler: dropped
  sim.RunToCompletion();
  const std::string exposition = PrometheusExposition(sim.metrics());
  EXPECT_NE(exposition.find("udc_net_messages_delivered 1"), std::string::npos)
      << exposition;
  EXPECT_NE(exposition.find("udc_net_messages_dropped 1"), std::string::npos);
}

TEST(RpcFastPathTest, TagCarriedWireFormatRoundTrips) {
  Simulation sim;
  Topology topo;
  const int rack = topo.AddRack();
  const NodeId n1 = topo.AddNode(rack, NodeRole::kDevice);
  const NodeId n2 = topo.AddNode(rack, NodeRole::kDevice);
  Fabric fabric(&sim, &topo);
  RpcEndpoint client(&sim, &fabric, n1);
  RpcEndpoint server(&sim, &fabric, n2);
  server.Serve("echo", [](const Message& msg) { return msg.payload; });

  std::string got;
  client.Call(n2, "echo", "hello", Bytes::B(100), Bytes::B(100),
              SimTime::Seconds(1),
              [&](Result<std::string> r) { ASSERT_TRUE(r.ok()); got = *r; });
  sim.RunToCompletion();
  EXPECT_EQ(got, "hello");

  // Unknown methods produce a typed error, not a hang.
  bool failed = false;
  client.Call(n2, "nope", "x", Bytes::B(10), Bytes::B(10), SimTime::Seconds(1),
              [&](Result<std::string> r) { failed = !r.ok(); });
  sim.RunToCompletion();
  EXPECT_TRUE(failed);
}

}  // namespace
}  // namespace udc
