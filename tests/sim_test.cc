#include <gtest/gtest.h>

#include <vector>

#include "src/sim/event_queue.h"
#include "src/sim/metrics.h"
#include "src/sim/simulation.h"
#include "src/sim/trace.h"

namespace udc {
namespace {

TEST(EventQueueTest, FiresInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.Schedule(SimTime::Millis(3), [&] { order.push_back(3); });
  q.Schedule(SimTime::Millis(1), [&] { order.push_back(1); });
  q.Schedule(SimTime::Millis(2), [&] { order.push_back(2); });
  while (!q.empty()) {
    q.PopAndRun();
  }
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueTest, TiesBreakByScheduleOrder) {
  EventQueue q;
  std::vector<int> order;
  q.Schedule(SimTime::Millis(1), [&] { order.push_back(1); });
  q.Schedule(SimTime::Millis(1), [&] { order.push_back(2); });
  q.Schedule(SimTime::Millis(1), [&] { order.push_back(3); });
  while (!q.empty()) {
    q.PopAndRun();
  }
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueTest, CancelPreventsExecution) {
  EventQueue q;
  bool fired = false;
  const EventHandle h = q.Schedule(SimTime::Millis(1), [&] { fired = true; });
  EXPECT_TRUE(q.Cancel(h));
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(q.Cancel(h));  // double-cancel is a no-op
  EXPECT_FALSE(fired);
}

TEST(EventQueueTest, CancelAfterFireFails) {
  EventQueue q;
  const EventHandle h = q.Schedule(SimTime::Millis(1), [] {});
  q.PopAndRun();
  EXPECT_FALSE(q.Cancel(h));
}

TEST(EventQueueTest, NextTimeSkipsCancelled) {
  EventQueue q;
  const EventHandle h = q.Schedule(SimTime::Millis(1), [] {});
  q.Schedule(SimTime::Millis(5), [] {});
  EXPECT_TRUE(q.Cancel(h));
  EXPECT_EQ(q.NextTime(), SimTime::Millis(5));
}

TEST(EventQueueTest, CallbackMaySchedule) {
  EventQueue q;
  int count = 0;
  q.Schedule(SimTime::Millis(1), [&] {
    ++count;
    q.Schedule(SimTime::Millis(2), [&] { ++count; });
  });
  while (!q.empty()) {
    q.PopAndRun();
  }
  EXPECT_EQ(count, 2);
}

TEST(EventQueueTest, SameTimestampFifoUnderInterleavedScheduling) {
  // A batch of same-time events must fire in scheduling order even when
  // events at other times are scheduled around and between them.
  EventQueue q;
  std::vector<int> order;
  q.Schedule(SimTime::Millis(9), [&] { order.push_back(90); });
  for (int i = 0; i < 8; ++i) {
    q.Schedule(SimTime::Millis(5), [&order, i] { order.push_back(i); });
  }
  q.Schedule(SimTime::Millis(1), [&] { order.push_back(-1); });
  while (!q.empty()) {
    q.PopAndRun();
  }
  EXPECT_EQ(order, (std::vector<int>{-1, 0, 1, 2, 3, 4, 5, 6, 7, 90}));
}

TEST(EventQueueTest, SameTimestampFifoSurvivesCancellations) {
  // Cancelling events inside a same-time batch must not disturb the
  // relative order of the survivors.
  EventQueue q;
  std::vector<int> order;
  std::vector<EventHandle> handles;
  for (int i = 0; i < 10; ++i) {
    handles.push_back(
        q.Schedule(SimTime::Millis(2), [&order, i] { order.push_back(i); }));
  }
  EXPECT_TRUE(q.Cancel(handles[0]));
  EXPECT_TRUE(q.Cancel(handles[5]));
  EXPECT_TRUE(q.Cancel(handles[9]));
  while (!q.empty()) {
    q.PopAndRun();
  }
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4, 6, 7, 8}));
}

TEST(EventQueueTest, CancelOfFiredHandleLeavesQueueIntact) {
  EventQueue q;
  int fired = 0;
  const EventHandle first = q.Schedule(SimTime::Millis(1), [&] { ++fired; });
  q.Schedule(SimTime::Millis(2), [&] { ++fired; });
  q.PopAndRun();
  EXPECT_FALSE(q.Cancel(first));  // already fired
  EXPECT_FALSE(q.Cancel(first));  // and stays dead
  EXPECT_EQ(q.size(), 1u);        // the pending event is untouched
  q.PopAndRun();
  EXPECT_EQ(fired, 2);
  EXPECT_FALSE(q.Cancel(EventHandle{}));  // never-scheduled handle
}

TEST(EventQueueTest, TotalScheduledCountsEveryScheduleCall) {
  EventQueue q;
  EXPECT_EQ(q.total_scheduled(), 0u);
  const EventHandle a = q.Schedule(SimTime::Millis(1), [] {});
  q.Schedule(SimTime::Millis(2), [] {});
  EXPECT_EQ(q.total_scheduled(), 2u);
  EXPECT_TRUE(q.Cancel(a));  // cancelling does not un-count
  EXPECT_EQ(q.total_scheduled(), 2u);
  q.PopAndRun();  // firing does not change it either
  EXPECT_EQ(q.total_scheduled(), 2u);
  q.Schedule(SimTime::Millis(3), [] {});
  EXPECT_EQ(q.total_scheduled(), 3u);
  EXPECT_EQ(q.size(), 1u);  // size tracks live events, not scheduled
}

TEST(SimulationTest, ClockAdvancesWithEvents) {
  Simulation sim;
  SimTime seen;
  sim.After(SimTime::Millis(10), [&] { seen = sim.now(); });
  sim.RunToCompletion();
  EXPECT_EQ(seen, SimTime::Millis(10));
  EXPECT_EQ(sim.now(), SimTime::Millis(10));
}

TEST(SimulationTest, RunUntilStopsAtDeadline) {
  Simulation sim;
  int fired = 0;
  sim.After(SimTime::Millis(5), [&] { ++fired; });
  sim.After(SimTime::Millis(15), [&] { ++fired; });
  sim.RunUntil(SimTime::Millis(10));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), SimTime::Millis(10));
  sim.RunToCompletion();
  EXPECT_EQ(fired, 2);
}

TEST(SimulationTest, StepExecutesOne) {
  Simulation sim;
  int fired = 0;
  sim.After(SimTime::Millis(1), [&] { ++fired; });
  sim.After(SimTime::Millis(2), [&] { ++fired; });
  EXPECT_TRUE(sim.Step());
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(sim.Step());
  EXPECT_FALSE(sim.Step());
}

TEST(SimulationTest, DeterministicWithSeed) {
  Simulation a(99);
  Simulation b(99);
  EXPECT_EQ(a.rng().NextUint64(), b.rng().NextUint64());
}

TEST(MetricsTest, CountersAccumulate) {
  MetricsRegistry m;
  m.IncrementCounter("test.x");
  m.IncrementCounter("test.x", 4);
  EXPECT_EQ(m.counter("test.x"), 5);
  EXPECT_EQ(m.counter("missing"), 0);
}

TEST(MetricsTest, Gauges) {
  MetricsRegistry m;
  m.SetGauge("test.g", 2.5);
  m.AddToGauge("test.g", 0.5);
  EXPECT_DOUBLE_EQ(m.gauge("test.g"), 3.0);
}

TEST(MetricsTest, HistogramsObserve) {
  MetricsRegistry m;
  m.Observe("test.h", 1.0);
  m.Observe("test.h", 3.0);
  ASSERT_NE(m.histogram("test.h"), nullptr);
  EXPECT_DOUBLE_EQ(m.histogram("test.h")->Mean(), 2.0);
  EXPECT_EQ(m.histogram("missing"), nullptr);
}

TEST(MetricsTest, ReportListsEverything) {
  MetricsRegistry m;
  m.IncrementCounter("a.count");
  m.SetGauge("b.gauge", 1.0);
  m.Observe("c.hist", 2.0);
  const std::string report = m.Report();
  EXPECT_NE(report.find("a.count"), std::string::npos);
  EXPECT_NE(report.find("b.gauge"), std::string::npos);
  EXPECT_NE(report.find("c.hist"), std::string::npos);
}

TEST(TraceTest, RecordsAndFilters) {
  TraceRecorder t;
  t.Record(SimTime::Millis(1), "sched", "placed A1");
  t.Record(SimTime::Millis(2), "net", "sent msg");
  t.Record(SimTime::Millis(3), "sched", "placed A2");
  EXPECT_EQ(t.size(), 3u);
  EXPECT_EQ(t.EventsInCategory("sched").size(), 2u);
  EXPECT_TRUE(t.Contains("sched", "A1"));
  EXPECT_FALSE(t.Contains("net", "A1"));
  EXPECT_NE(t.Dump().find("placed A2"), std::string::npos);
}

}  // namespace
}  // namespace udc
