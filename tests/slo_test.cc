// SLO engine, sketch-vs-exact differential, and black-box dump tests.
//
// The differential follows the repo idiom (kLegacy is to kFast what
// Histogram is to SketchHistogram): the exact Histogram keeps every sample
// and is the oracle; the sketch must agree on every quantile to within its
// advertised relative error across several sample distributions.

#include "src/obs/slo.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "src/common/histogram.h"
#include "src/common/logging.h"
#include "src/common/rng.h"
#include "src/common/sketch_histogram.h"
#include "src/common/units.h"
#include "src/obs/metrics.h"
#include "src/sim/simulation.h"

namespace udc {
namespace {

constexpr double kQuantiles[] = {0.0,  0.01, 0.1,  0.25, 0.5,
                                 0.75, 0.9,  0.95, 0.99, 1.0};

// The exact value the sketch's rank convention names: the sample at rank
// round(q * (n - 1)) of the sorted stream.
double NearestRank(const std::vector<double>& sorted, double q) {
  const auto rank = static_cast<size_t>(
      std::llround(q * static_cast<double>(sorted.size() - 1)));
  return sorted[rank];
}

void ExpectQuantilesAgree(const SketchHistogram& sketch,
                          const std::vector<double>& samples,
                          const std::string& what) {
  std::vector<double> sorted = samples;
  std::sort(sorted.begin(), sorted.end());
  const double tol = sketch.relative_error() + 1e-6;
  for (double q : kQuantiles) {
    const double exact = NearestRank(sorted, q);
    const double est = sketch.Quantile(q);
    EXPECT_NEAR(est, exact, tol * exact)
        << what << " q=" << q << " exact=" << exact << " sketch=" << est;
  }
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path);
  if (!in.good()) {
    return "";
  }
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

// --- Sketch vs exact differential -----------------------------------------

TEST(SketchDifferentialTest, UniformSamplesWithinRelativeError) {
  Rng rng(1);
  SketchHistogram sketch(0.01);
  std::vector<double> samples;
  samples.reserve(20000);
  for (int i = 0; i < 20000; ++i) {
    const double v = rng.NextDoubleInRange(0.5, 5000.0);
    samples.push_back(v);
    sketch.Add(v);
  }
  ExpectQuantilesAgree(sketch, samples, "uniform");
  // Extrema and moments are tracked exactly, independent of bucketing.
  std::vector<double> sorted = samples;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_DOUBLE_EQ(sketch.Min(), sorted.front());
  EXPECT_DOUBLE_EQ(sketch.Max(), sorted.back());
  EXPECT_EQ(sketch.count(), 20000);
}

TEST(SketchDifferentialTest, ExponentialSamplesWithinRelativeError) {
  Rng rng(2);
  SketchHistogram sketch(0.01);
  std::vector<double> samples;
  for (int i = 0; i < 20000; ++i) {
    // Inverse-transform exponential, mean 120 — a latency-like tail.
    const double u = rng.NextDouble();
    const double v = -120.0 * std::log(1.0 - u) + 1e-6;
    samples.push_back(v);
    sketch.Add(v);
  }
  ExpectQuantilesAgree(sketch, samples, "exponential");
}

TEST(SketchDifferentialTest, LognormalSamplesWithinRelativeError) {
  Rng rng(3);
  SketchHistogram sketch(0.01);
  std::vector<double> samples;
  for (int i = 0; i < 20000; ++i) {
    // Box-Muller normal, exponentiated: spans several orders of magnitude.
    const double u1 = rng.NextDoubleInRange(1e-12, 1.0);
    const double u2 = rng.NextDouble();
    const double z =
        std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
    const double v = std::exp(1.5 * z);
    samples.push_back(v);
    sketch.Add(v);
  }
  ExpectQuantilesAgree(sketch, samples, "lognormal");
}

TEST(SketchDifferentialTest, AgreesWithExactHistogramQuantile) {
  // The registry's exact Histogram lerps between neighboring ranks; on a
  // dense stream the two conventions must still land within the sketch's
  // error bound plus the (tiny) neighbor gap.
  Rng rng(4);
  SketchHistogram sketch(0.01);
  Histogram exact;
  for (int i = 0; i < 50000; ++i) {
    const double v = rng.NextDoubleInRange(10.0, 1000.0);
    sketch.Add(v);
    exact.Add(v);
  }
  for (double q : kQuantiles) {
    const double e = exact.Quantile(q);
    EXPECT_NEAR(sketch.Quantile(q), e, 0.012 * e) << "q=" << q;
  }
}

TEST(SketchDifferentialTest, DiffSinceRecoversIntervalDistribution) {
  Rng rng(5);
  SketchHistogram cumulative(0.01);
  for (int i = 0; i < 5000; ++i) {
    cumulative.Add(rng.NextDoubleInRange(1.0, 10.0));  // phase A: fast
  }
  const SketchHistogram snapshot = cumulative;  // SLO window base
  std::vector<double> phase_b;
  for (int i = 0; i < 5000; ++i) {
    const double v = rng.NextDoubleInRange(100.0, 1000.0);  // phase B: slow
    phase_b.push_back(v);
    cumulative.Add(v);
  }
  const SketchHistogram diff = cumulative.DiffSince(snapshot);
  EXPECT_EQ(diff.count(), 5000);
  ExpectQuantilesAgree(diff, phase_b, "diff");
}

TEST(SketchDifferentialTest, MergeMatchesCombinedStream) {
  Rng rng(6);
  SketchHistogram a(0.01);
  SketchHistogram b(0.01);
  SketchHistogram combined(0.01);
  for (int i = 0; i < 3000; ++i) {
    const double va = rng.NextDoubleInRange(0.1, 50.0);
    const double vb = rng.NextDoubleInRange(200.0, 900.0);
    a.Add(va);
    b.Add(vb);
    combined.Add(va);
    combined.Add(vb);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), combined.count());
  EXPECT_NEAR(a.Sum(), combined.Sum(), 1e-6 * combined.Sum());
  for (double q : kQuantiles) {
    // Merge is an elementwise bucket add, so quantiles match exactly.
    EXPECT_DOUBLE_EQ(a.Quantile(q), combined.Quantile(q)) << "q=" << q;
  }
}

TEST(SketchHistogramTest, EmptyAndDegenerateInputs) {
  SketchHistogram sketch;
  EXPECT_TRUE(sketch.empty());
  EXPECT_EQ(sketch.Quantile(0.5), 0.0);
  EXPECT_EQ(sketch.Min(), 0.0);
  EXPECT_EQ(sketch.Max(), 0.0);
  // Zero and negative values land in the zero bucket, estimate 0.
  sketch.Add(0.0);
  sketch.Add(-5.0);
  EXPECT_EQ(sketch.count(), 2);
  EXPECT_EQ(sketch.Quantile(0.5), 0.0);
}

TEST(SketchHistogramTest, MemoryFootprintIsFixed) {
  SketchHistogram sketch(0.01);
  sketch.Add(1.0);  // materialize the bucket array
  const size_t footprint = sketch.MemoryFootprintBytes();
  Rng rng(7);
  for (int i = 0; i < 100000; ++i) {
    sketch.Add(std::exp(rng.NextDoubleInRange(-15.0, 30.0)));
  }
  EXPECT_EQ(sketch.MemoryFootprintBytes(), footprint)
      << "bounded-memory sketch grew with sample count";
}

// --- SLO engine -----------------------------------------------------------

TEST(SloEngineTest, HistogramWindowSlidesAndStatesTransition) {
  MetricsRegistry metrics;
  SloEngine engine(&metrics);
  SloSpec spec;
  spec.name = "slo.test.latency_p50";
  spec.kind = SloSpec::SourceKind::kHistogramQuantile;
  spec.source = "test.latency_ms";
  spec.quantile = 0.5;
  spec.threshold = 100.0;
  spec.window = SimTime::Seconds(10);
  engine.AddObjective(std::move(spec));

  // Registering a histogram objective forces the source into sketch mode.
  const MetricHistogram* series = metrics.histogram("test.latency_ms");
  ASSERT_NE(series, nullptr);
  EXPECT_TRUE(series->sketch_mode());

  for (int i = 0; i < 200; ++i) {
    metrics.Observe("test.latency_ms", 50.0);
  }
  engine.Tick(SimTime::Seconds(10));
  const SloVerdict* v = engine.Find("slo.test.latency_p50");
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(v->state, SloState::kOk);
  EXPECT_NEAR(v->measured, 50.0, 1.0);
  EXPECT_FALSE(v->ever_breached);

  // Next window only sees the new, slow samples: the old 50ms cohort is
  // outside [10s, 20s] and must not dilute the quantile.
  for (int i = 0; i < 200; ++i) {
    metrics.Observe("test.latency_ms", 500.0);
  }
  engine.Tick(SimTime::Seconds(20));
  v = engine.Find("slo.test.latency_p50");
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(v->state, SloState::kBreach);
  EXPECT_NEAR(v->measured, 500.0, 10.0);
  EXPECT_TRUE(v->ever_breached);
  EXPECT_FALSE(engine.AllOk());

  // Verdicts are exported as gauges for the normal exposition path.
  EXPECT_NEAR(metrics.gauge("slo.test.latency_p50"), 500.0, 10.0);
  EXPECT_EQ(metrics.gauge("slo.test.latency_p50.state"),
            static_cast<double>(SloState::kBreach));

  // A quiet window clears the breach state (ever_breached latches).
  engine.Tick(SimTime::Seconds(30));
  v = engine.Find("slo.test.latency_p50");
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(v->state, SloState::kOk);
  EXPECT_TRUE(v->ever_breached);
  EXPECT_TRUE(engine.AllOk());

  // Inside the warn band: 90 <= 100 but past warn_ratio 0.8.
  for (int i = 0; i < 200; ++i) {
    metrics.Observe("test.latency_ms", 90.0);
  }
  engine.Tick(SimTime::Seconds(40));
  v = engine.Find("slo.test.latency_p50");
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(v->state, SloState::kWarn);
}

TEST(SloEngineTest, CounterRateFirstTickMeasuresSinceTimeZero) {
  MetricsRegistry metrics;
  SloEngine engine(&metrics);
  SloSpec spec;
  spec.name = "slo.test.event_rate";
  spec.kind = SloSpec::SourceKind::kCounterRate;
  spec.source = "test.events_total";
  spec.cmp = SloSpec::Cmp::kGe;
  spec.threshold = 5.0;  // events/sec
  spec.window = SimTime::Seconds(10);
  engine.AddObjective(std::move(spec));

  metrics.IncrementCounter("test.events_total", 100);
  engine.Tick(SimTime::Seconds(10));
  const SloVerdict* v = engine.Find("slo.test.event_rate");
  ASSERT_NE(v, nullptr);
  // 100 events over the first 10 seconds: counters start at zero with the
  // clock, so the first tick must not read a spurious 0/sec breach.
  EXPECT_NEAR(v->measured, 10.0, 1e-9);
  EXPECT_EQ(v->state, SloState::kOk);

  // A stalled counter over the next window is a real breach.
  engine.Tick(SimTime::Seconds(20));
  v = engine.Find("slo.test.event_rate");
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(v->measured, 0.0);
  EXPECT_EQ(v->state, SloState::kBreach);

  metrics.IncrementCounter("test.events_total", 200);
  engine.Tick(SimTime::Seconds(30));
  v = engine.Find("slo.test.event_rate");
  ASSERT_NE(v, nullptr);
  EXPECT_NEAR(v->measured, 20.0, 1e-9);
  EXPECT_EQ(v->state, SloState::kOk);
}

TEST(SloEngineTest, OnBreachFiresOncePerTransition) {
  MetricsRegistry metrics;
  SloEngine engine(&metrics);
  SloSpec spec;
  spec.name = "slo.test.pressure";
  spec.kind = SloSpec::SourceKind::kGauge;
  spec.source = "test.pressure";
  spec.threshold = 1.0;
  engine.AddObjective(std::move(spec));

  int breaches = 0;
  engine.set_on_breach([&breaches](const SloVerdict&) { ++breaches; });

  metrics.SetGauge("test.pressure", 2.0);
  engine.Tick(SimTime::Seconds(1));
  EXPECT_EQ(breaches, 1);
  engine.Tick(SimTime::Seconds(2));  // still breached: no re-fire
  EXPECT_EQ(breaches, 1);
  metrics.SetGauge("test.pressure", 0.0);
  engine.Tick(SimTime::Seconds(3));  // recovered
  EXPECT_EQ(breaches, 1);
  metrics.SetGauge("test.pressure", 5.0);
  engine.Tick(SimTime::Seconds(4));  // second transition into breach
  EXPECT_EQ(breaches, 2);
}

TEST(SloEngineTest, ProbeObjectiveAndReport) {
  MetricsRegistry metrics;
  SloEngine engine(&metrics);
  double probed = 10.0;
  SloSpec spec;
  spec.name = "slo.test.probe_value";
  spec.kind = SloSpec::SourceKind::kProbe;
  spec.probe = [&probed] { return probed; };
  spec.threshold = 100.0;
  engine.AddObjective(std::move(spec));

  engine.Tick(SimTime::Seconds(1));
  const SloVerdict* v = engine.Find("slo.test.probe_value");
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(v->measured, 10.0);
  EXPECT_EQ(v->state, SloState::kOk);

  probed = 250.0;
  engine.Tick(SimTime::Seconds(2));
  v = engine.Find("slo.test.probe_value");
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(v->measured, 250.0);
  EXPECT_EQ(v->state, SloState::kBreach);
  EXPECT_EQ(engine.worst_state(), SloState::kBreach);

  const std::string report = engine.Report();
  EXPECT_NE(report.find("slo.test.probe_value"), std::string::npos);
  EXPECT_NE(report.find("BREACH"), std::string::npos);
  EXPECT_NE(report.find("(breached)"), std::string::npos);
}

TEST(SloEngineTest, OutOfOrderTicksAreIgnored) {
  MetricsRegistry metrics;
  SloEngine engine(&metrics);
  SloSpec spec;
  spec.name = "slo.test.pressure";
  spec.kind = SloSpec::SourceKind::kGauge;
  spec.source = "test.pressure";
  spec.threshold = 1.0;
  engine.AddObjective(std::move(spec));

  metrics.SetGauge("test.pressure", 0.5);
  engine.Tick(SimTime::Seconds(10));
  metrics.SetGauge("test.pressure", 99.0);
  engine.Tick(SimTime::Seconds(5));  // stale tick: must not re-evaluate
  const SloVerdict* v = engine.Find("slo.test.pressure");
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(v->evaluated_at, SimTime::Seconds(10));
  EXPECT_EQ(v->measured, 0.5);
  EXPECT_EQ(v->state, SloState::kOk);
}

// --- Simulation wiring: timers, breach dumps, crash dumps ------------------

TEST(SloSimulationTest, ArmSloTicksEvaluatesOnCadenceAndTerminates) {
  Simulation sim;
  SloSpec spec;
  spec.name = "slo.test.pressure";
  spec.kind = SloSpec::SourceKind::kGauge;
  spec.source = "test.pressure";
  spec.threshold = 1.0;
  sim.slos().AddObjective(std::move(spec));
  sim.metrics().SetGauge("test.pressure", 0.2);
  sim.After(SimTime::Seconds(3),
            [&sim] { sim.metrics().SetGauge("test.pressure", 0.7); });

  // Bounded timer: RunToCompletion must terminate, with the last tick
  // exactly at `until`.
  sim.ArmSloTicks(SimTime::Seconds(1), SimTime::Seconds(5));
  const SimTime end = sim.RunToCompletion();
  EXPECT_EQ(end, SimTime::Seconds(5));
  const SloVerdict* v = sim.slos().Find("slo.test.pressure");
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(v->evaluated_at, SimTime::Seconds(5));
  EXPECT_EQ(v->measured, 0.7);
}

TEST(SloSimulationTest, BreachDumpsFlightRecorderChromeTrace) {
  const std::string path = ::testing::TempDir() + "slo_breach_dump.json";
  std::remove(path.c_str());
  std::remove((path + ".metrics.json").c_str());

  Simulation sim;
  sim.set_breach_dump_path(path);
  sim.Trace("test", "deploy wave started");
  {
    auto span = sim.Scope("test", "deploy_wave");
  }
  SloSpec spec;
  spec.name = "slo.test.queue_depth";
  spec.kind = SloSpec::SourceKind::kGauge;
  spec.source = "test.queue_depth";
  spec.threshold = 10.0;
  sim.slos().AddObjective(std::move(spec));
  sim.metrics().SetGauge("test.queue_depth", 99.0);
  sim.slos().EvaluateNow(sim.now());

  // The transition into BREACH must leave a loadable black box behind.
  const std::string trace = ReadFile(path);
  ASSERT_FALSE(trace.empty()) << "breach did not write " << path;
  EXPECT_NE(trace.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(trace.find("slo breach: slo.test.queue_depth"), std::string::npos);
  EXPECT_NE(trace.find("deploy wave started"), std::string::npos);
  EXPECT_NE(trace.find("deploy_wave"), std::string::npos);

  const std::string snapshot = ReadFile(path + ".metrics.json");
  ASSERT_FALSE(snapshot.empty());
  EXPECT_NE(snapshot.find("slo.test.queue_depth"), std::string::npos);
}

TEST(SloSimulationDeathTest, CheckFailureWritesCrashDump) {
  const std::string path = ::testing::TempDir() + "slo_crash_dump.json";
  std::remove(path.c_str());

  Simulation sim;
  sim.set_crash_dump_path(path);
  sim.Trace("test", "last words before the check");

  // The death-test child inherits the registered crash hook via fork; the
  // hook runs before abort and the dump survives the child's death.
  EXPECT_DEATH(([] { UDC_CHECK(false) << "induced failure"; })(),
               "induced failure");

  const std::string trace = ReadFile(path);
  ASSERT_FALSE(trace.empty()) << "crash hook did not write " << path;
  EXPECT_NE(trace.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(trace.find("last words before the check"), std::string::npos);
}

}  // namespace
}  // namespace udc
