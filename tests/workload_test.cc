#include <gtest/gtest.h>

#include "src/core/runtime.h"
#include "src/core/udc_cloud.h"
#include "src/workload/inference.h"
#include "src/workload/medical.h"
#include "src/workload/microservices.h"
#include "src/workload/tenants.h"

namespace udc {
namespace {

TEST(TenantMixTest, DeterministicPerSeed) {
  Rng a(5);
  Rng b(5);
  const auto mix_a = SampleTenantMix(a, 50);
  const auto mix_b = SampleTenantMix(b, 50);
  ASSERT_EQ(mix_a.size(), mix_b.size());
  for (size_t i = 0; i < mix_a.size(); ++i) {
    EXPECT_EQ(mix_a[i].demand, mix_b[i].demand);
    EXPECT_EQ(mix_a[i].lifetime, mix_b[i].lifetime);
  }
}

TEST(TenantMixTest, RespectsConfiguredFractions) {
  Rng rng(9);
  TenantMixConfig config;
  config.gpu_fraction = 0.5;
  const auto mix = SampleTenantMix(rng, 2000, config);
  int gpu = 0;
  for (const TenantDemand& d : mix) {
    if (d.gpu_heavy) {
      ++gpu;
      EXPECT_GT(d.demand.Get(ResourceKind::kGpu), 0);
      // The paper's shape: GPU tenants want few cores.
      EXPECT_LE(d.demand.Get(ResourceKind::kCpu), 4000);
    }
    EXPECT_GT(d.demand.Get(ResourceKind::kCpu), 0);
    EXPECT_GE(d.lifetime, SimTime::Minutes(10));
  }
  EXPECT_NEAR(static_cast<double>(gpu) / 2000.0, 0.5, 0.05);
}

TEST(TenantMixTest, DemandsAreHeavyTailed) {
  Rng rng(11);
  const auto mix = SampleTenantMix(rng, 5000);
  Histogram cores;
  for (const TenantDemand& d : mix) {
    cores.Add(static_cast<double>(d.demand.Get(ResourceKind::kCpu)) / 1000.0);
  }
  // Median small, p99 much larger: the long tail instance shapes can't fit.
  EXPECT_LT(cores.Median(), 6.0);
  EXPECT_GT(cores.P99(), 4.0 * cores.Median());
}

TEST(InferenceTraceTest, ArrivalsSortedWithinHorizon) {
  Rng rng(3);
  InferenceTraceConfig config;
  config.horizon = SimTime::Hours(2);
  const auto trace = GenerateInferenceTrace(rng, config);
  ASSERT_GT(trace.size(), 50u);
  for (size_t i = 0; i < trace.size(); ++i) {
    EXPECT_LT(trace[i].arrival, config.horizon);
    if (i > 0) {
      EXPECT_GE(trace[i].arrival, trace[i - 1].arrival);
    }
    EXPECT_GT(trace[i].work_units, 0);
  }
}

TEST(InferenceTraceTest, RateScalesCount) {
  Rng a(5);
  Rng b(5);
  InferenceTraceConfig slow;
  slow.mean_rate_per_hour = 30;
  InferenceTraceConfig fast;
  fast.mean_rate_per_hour = 300;
  const auto few = GenerateInferenceTrace(a, slow);
  const auto many = GenerateInferenceTrace(b, fast);
  EXPECT_GT(many.size(), few.size() * 5);
}

TEST(MicroserviceTest, GeneratesValidDeployableApp) {
  Rng rng(21);
  const auto spec = GenerateMicroserviceApp(rng);
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  EXPECT_TRUE(spec->graph.Validate().ok());
  // chain(4) + fanout(2) + db.
  EXPECT_EQ(spec->graph.TaskIds().size(), 6u);
  EXPECT_EQ(spec->graph.DataIds().size(), 1u);

  UdcCloud cloud;
  const TenantId t = cloud.RegisterTenant("shop");
  auto deployment = cloud.Deploy(t, *spec);
  ASSERT_TRUE(deployment.ok()) << deployment.status().ToString();
  DagRuntime runtime(cloud.sim(), deployment->get());
  const auto report = runtime.RunOnce();
  ASSERT_TRUE(report.ok());
  EXPECT_GT(report->end_to_end, SimTime(0));
  // The db affinity pulled the chain tail into the db's rack.
  const Placement* tail = (*deployment)->PlacementOf(spec->graph.IdOf("svc3"));
  const Placement* db = (*deployment)->PlacementOf(spec->graph.IdOf("db"));
  EXPECT_EQ(tail->rack, db->rack);
}

TEST(MicroserviceTest, ConfigShapesTheGraph) {
  Rng rng(22);
  MicroserviceConfig config;
  config.chain_length = 7;
  config.fanout_services = 0;
  config.stateful_backend = false;
  const auto spec = GenerateMicroserviceApp(rng, config);
  ASSERT_TRUE(spec.ok());
  EXPECT_EQ(spec->graph.TaskIds().size(), 7u);
  EXPECT_TRUE(spec->graph.DataIds().empty());
  // Pure chain: topological order is the chain order.
  const auto topo = spec->graph.TopoOrder();
  ASSERT_TRUE(topo.ok());
  EXPECT_EQ(spec->graph.Find((*topo)[0])->name, "svc0");
  EXPECT_EQ(spec->graph.Find((*topo)[6])->name, "svc6");
}

TEST(MicroserviceTest, RejectsEmptyChain) {
  Rng rng(23);
  MicroserviceConfig config;
  config.chain_length = 0;
  EXPECT_FALSE(GenerateMicroserviceApp(rng, config).ok());
}

TEST(MedicalWorkloadTest, UdclTextStaysInSyncWithFigure2) {
  const auto spec = MedicalAppSpec();
  ASSERT_TRUE(spec.ok());
  // The edges of Figure 2, spelled out.
  const auto has_edge = [&](const char* from, const char* to) {
    for (const ModuleId succ : spec->graph.Successors(spec->graph.IdOf(from))) {
      if (spec->graph.Find(succ)->name == to) {
        return true;
      }
    }
    return false;
  };
  EXPECT_TRUE(has_edge("S3", "A1"));
  EXPECT_TRUE(has_edge("A1", "A2"));
  EXPECT_TRUE(has_edge("A2", "A4"));
  EXPECT_TRUE(has_edge("S1", "A3"));
  EXPECT_TRUE(has_edge("A3", "A4"));
  EXPECT_TRUE(has_edge("S1", "B1"));
  EXPECT_TRUE(has_edge("S2", "B1"));
  EXPECT_TRUE(has_edge("B1", "S4"));
  EXPECT_TRUE(has_edge("S4", "B2"));
}

}  // namespace
}  // namespace udc
