#!/usr/bin/env bash
# Enforces the `layer.noun_verb` metric naming convention (see
# src/obs/metrics.h): every string literal passed to IncrementCounter /
# SetGauge / AddToGauge / Observe — or interned via CounterSeries /
# GaugeSeries / HistogramSeries — must match ^[a-z_]+\.[a-z0-9_.]+$ —
# a lowercase layer prefix, a dot, then lowercase/digit/underscore words.
#
# Runs as a ctest (see tests/CMakeLists.txt) and in CI. Exit 0 when every
# call site conforms, 1 otherwise (offenders listed on stderr).

set -euo pipefail
cd "$(dirname "$0")/.."

pattern='^[a-z_]+\.[a-z0-9_.]+$'
bad=0
found=0

# `file:line:Call("name"` -> `file:line:name` for every metric call site
# with a literal first argument.
while IFS=: read -r file line name; do
  found=$((found + 1))
  if ! [[ "$name" =~ $pattern ]]; then
    echo "bad metric name: $file:$line: \"$name\"" >&2
    bad=1
  fi
done < <(grep -rnoE '(IncrementCounter|SetGauge|AddToGauge|Observe|CounterSeries|GaugeSeries|HistogramSeries)\("[^"]*"' \
           src tools bench tests \
         | sed -E 's/:(IncrementCounter|SetGauge|AddToGauge|Observe|CounterSeries|GaugeSeries|HistogramSeries)\("/:/' \
         | sed -E 's/"$//')

if [[ "$found" -eq 0 ]]; then
  echo "check_metric_names.sh: no metric call sites found — grep broken?" >&2
  exit 1
fi

if [[ "$bad" -ne 0 ]]; then
  echo "metric names must match layer.noun_verb ($pattern)" >&2
  exit 1
fi
echo "check_metric_names.sh: $found call sites OK"
