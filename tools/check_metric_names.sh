#!/usr/bin/env bash
# Enforces the `layer.noun_verb` metric naming convention (see
# src/obs/metrics.h): every string literal passed to IncrementCounter /
# SetGauge / AddToGauge / Observe — or interned via CounterSeries /
# GaugeSeries / HistogramSeries — must match ^[a-z_]+\.[a-z0-9_.]+$ —
# a lowercase layer prefix, a dot, then lowercase/digit/underscore words.
#
# Also enforces the two namespaces the SLO/flight-recorder layer added:
#   - SLO objective names: any "slo.<...>" string literal must be
#     slo.<layer>.<objective> (three dot-separated lowercase segments,
#     e.g. "slo.sched.place_latency_p99").
#   - Span categories: the literal first argument of Scope( / Begin( /
#     BeginWithSetAt( must be a bare lowercase word (^[a-z_][a-z0-9_.]*$) —
#     categories become Chrome-trace pids and flight-recorder fields, so
#     they stay short and greppable.
#
# Runs as a ctest (see tests/CMakeLists.txt) and in CI. Exit 0 when every
# call site conforms, 1 otherwise (offenders listed on stderr).

set -euo pipefail
cd "$(dirname "$0")/.."

pattern='^[a-z_]+\.[a-z0-9_.]+$'
slo_pattern='^slo\.[a-z_]+\.[a-z0-9_.]+$'
category_pattern='^[a-z_][a-z0-9_.]*$'
bad=0
found=0

# `file:line:Call("name"` -> `file:line:name` for every metric call site
# with a literal first argument.
while IFS=: read -r file line name; do
  found=$((found + 1))
  if ! [[ "$name" =~ $pattern ]]; then
    echo "bad metric name: $file:$line: \"$name\"" >&2
    bad=1
  fi
done < <(grep -rnoE '(IncrementCounter|SetGauge|AddToGauge|Observe|CounterSeries|GaugeSeries|HistogramSeries)\("[^"]*"' \
           src tools bench tests \
         | sed -E 's/:(IncrementCounter|SetGauge|AddToGauge|Observe|CounterSeries|GaugeSeries|HistogramSeries)\("/:/' \
         | sed -E 's/"$//')

if [[ "$found" -eq 0 ]]; then
  echo "check_metric_names.sh: no metric call sites found — grep broken?" >&2
  exit 1
fi

# SLO objective names: every "slo.<...>" literal anywhere in the tree
# (specs are built field by field, so lint the strings rather than a call
# shape). This script's own grep patterns are excluded.
slo_found=0
while IFS=: read -r file line name; do
  slo_found=$((slo_found + 1))
  if ! [[ "$name" =~ $slo_pattern ]]; then
    echo "bad SLO name: $file:$line: \"$name\" (want slo.<layer>.<objective>)" >&2
    bad=1
  fi
done < <(grep -rnoE '"slo\.[^"]*"' \
           --exclude=check_metric_names.sh src tools bench tests \
         | sed -E 's/:"/:/; s/"$//')

# Span categories: literal first argument of Scope(/Begin(/BeginWithSetAt(.
cat_found=0
while IFS=: read -r file line name; do
  cat_found=$((cat_found + 1))
  if ! [[ "$name" =~ $category_pattern ]]; then
    echo "bad span category: $file:$line: \"$name\"" >&2
    bad=1
  fi
done < <(grep -rnoE '(->|\.)(Scope|Begin|BeginWithSetAt)\("[^"]*"' \
           src tools bench tests \
         | sed -E 's/:(->|\.)(Scope|Begin|BeginWithSetAt)\("/:/' \
         | sed -E 's/"$//')

if [[ "$slo_found" -eq 0 ]]; then
  echo "check_metric_names.sh: no SLO name literals found — grep broken?" >&2
  exit 1
fi
if [[ "$cat_found" -eq 0 ]]; then
  echo "check_metric_names.sh: no span category literals found — grep broken?" >&2
  exit 1
fi

# Required series: the content-addressed env-store observability surface.
# These names are load-bearing — benches gate on them and `udcctl slo`
# registers slo.exec.warm_hit_ratio over the gauge — so renaming or
# dropping any of them must fail this lint, not silently zero a dashboard.
required_series=(
  exec.warm_hit_ratio
  exec.store_bytes
  exec.store_bytes_deduped
  exec.evictions
  exec.prewarmed
  exec.tepid_starts
  exec.cross_tenant_warm_starts
  attest.image_quotes_minted
  net.wan_messages_sent
  net.wan_bytes_sent
  net.wan_queue_us
  exec.remote_starts
  exec.remote_start_latency_ms
  sched.region_deploys
  sched.cross_region_deploys
  sched.region_fallbacks
  sched.region_place_latency_us
)
for series in "${required_series[@]}"; do
  if ! grep -rqF "\"$series\"" src; then
    echo "missing required metric series: \"$series\" is not interned" \
         "anywhere under src/" >&2
    bad=1
  fi
done

# Required SLO objectives that live outside src/: the federation bench
# registers slo.sched.region_place_p99 over the region-place sketch and
# gates on it — dropping the registration would silently un-gate the
# region placement tail, so it is pinned here (bench/ is its home; src/
# never registers SLOs itself).
required_slos=(
  slo.sched.region_place_p99
)
for slo in "${required_slos[@]}"; do
  if ! grep -rqF "\"$slo\"" src bench tools; then
    echo "missing required SLO objective: \"$slo\" is not registered" \
         "anywhere under src/, bench/ or tools/" >&2
    bad=1
  fi
done

if [[ "$bad" -ne 0 ]]; then
  echo "names must match: metrics $pattern, SLOs $slo_pattern," \
       "span categories $category_pattern" >&2
  exit 1
fi
echo "check_metric_names.sh: $found metric + $slo_found slo +" \
     "$cat_found span-category call sites OK," \
     "${#required_series[@]} required series +" \
     "${#required_slos[@]} required SLOs present"
