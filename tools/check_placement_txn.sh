#!/usr/bin/env bash
# Enforces the placement-transaction discipline (see
# src/core/placement_txn.h): nothing outside the pool layer (src/hw) and
# the placement engine itself may call ResourcePool::Allocate / Release /
# Resize directly. Control-plane services stage pool mutations through a
# PlacementTxn (or the engine's unconditional Release /
# ReleasePoolAllocation helper), so there is exactly one rollback path and
# no hand-rolled "release what I acquired so far" loops.
#
# Flags:
#   - any `->Allocate(` / `->Release(` / `->Resize(` arrow call, and
#   - dot calls whose receiver is pool-shaped: `pool.Allocate(`,
#     `my_pool.Release(`, `pool(kind).Resize(` ...
# in src/ outside src/hw/ and src/core/placement_{txn,engine}.{h,cc}.
# Txn calls (`txn.Allocate(`) and engine calls (`engine_.Release(`) have
# non-pool receivers and pass.
#
# Runs as a ctest (see tests/CMakeLists.txt) and in CI. Exit 0 when clean,
# 1 otherwise (offenders listed on stderr).

set -euo pipefail
cd "$(dirname "$0")/.."

offenders=$(grep -rnE \
    -e '->[[:space:]]*(Allocate|Release|Resize)\(' \
    -e '\b[A-Za-z0-9_]*[Pp]ool[A-Za-z0-9_]*[[:space:]]*\.[[:space:]]*(Allocate|Release|Resize)\(' \
    -e '\bpool\([^)]*\)[[:space:]]*\.[[:space:]]*(Allocate|Release|Resize)\(' \
    src --include='*.cc' --include='*.h' \
  | grep -v '^src/hw/' \
  | grep -v '^src/core/placement_txn\.' \
  | grep -v '^src/core/placement_engine\.' \
  || true)

if [[ -n "$offenders" ]]; then
  echo "direct pool Allocate/Release/Resize outside src/hw and the placement engine:" >&2
  echo "$offenders" >&2
  echo "stage pool mutations through PlacementTxn (src/core/placement_txn.h)" >&2
  exit 1
fi

# Sanity guard: the allowed call sites must still exist, otherwise the grep
# itself is broken and the check is vacuous.
allowed=$(grep -rcE '(->|\.)[[:space:]]*(Allocate|Release|Resize)\(' \
    src/core/placement_txn.cc src/core/placement_engine.cc \
  | awk -F: '{sum += $2} END {print sum}')
if [[ "${allowed:-0}" -eq 0 ]]; then
  echo "check_placement_txn.sh: no pool calls found in the engine — grep broken?" >&2
  exit 1
fi

# Hierarchical control plane: the cell- and region-router sources must
# exist, be inside the scanned tree (so the offender grep above covers
# them), and stage their mutations through PlacementTxn — a routing path
# that stopped using the transaction would silently regrow hand-rolled
# rollback.
txn_users=0
txn_sources=(src/core/cell_router.cc src/core/region_router.cc
             src/core/scheduler.cc)
for f in "${txn_sources[@]}"; do
  if [[ ! -f "$f" ]]; then
    echo "check_placement_txn.sh: expected control-plane source $f missing" >&2
    exit 1
  fi
  if grep -qE '\bPlacementTxn\b|\btxn\.(Allocate|StageRelease|StageUndo|AbortTo)\(' "$f"; then
    txn_users=$((txn_users + 1))
  fi
done
if [[ "$txn_users" -lt ${#txn_sources[@]} ]]; then
  echo "check_placement_txn.sh: control-plane sources no longer stage through PlacementTxn — check the deploy path" >&2
  exit 1
fi

echo "check_placement_txn.sh: OK (engine call sites: $allowed, control-plane txn sources: $txn_users)"
