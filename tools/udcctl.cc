// udcctl — command-line driver for the UDC simulator.
//
//   udcctl validate <spec.udcl>          parse + validate a spec
//   udcctl deploy   <spec.udcl>          deploy, run once, verify, bill
//   udcctl demo                          the built-in medical app (Figure 2)
//
// Reads udcl from a file (or the embedded medical app), runs the full
// deploy/run/verify/bill cycle on a fresh simulated cloud, and prints the
// reports. Exit code 0 on success, 1 on any error.

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "src/core/runtime.h"
#include "src/core/udc_cloud.h"
#include "src/workload/medical.h"

namespace {

int Usage() {
  std::fprintf(stderr,
               "usage: udcctl validate <spec.udcl>\n"
               "       udcctl deploy   <spec.udcl>\n"
               "       udcctl demo\n");
  return 1;
}

udc::Result<std::string> ReadFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return udc::Status(udc::NotFoundError("cannot open " + path));
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

int Validate(const std::string& text) {
  const auto spec = udc::ParseAppSpec(text);
  if (!spec.ok()) {
    std::fprintf(stderr, "INVALID: %s\n", spec.status().ToString().c_str());
    return 1;
  }
  std::printf("OK: %s\n%s", spec->graph.app_name().c_str(),
              spec->graph.DebugString().c_str());
  for (const udc::ModuleId id : spec->graph.ModuleIds()) {
    const udc::AspectSet aspects = spec->AspectsFor(id);
    std::printf("  %-8s %s\n", spec->graph.Find(id)->name.c_str(),
                aspects.ToString().c_str());
  }
  return 0;
}

int Deploy(const std::string& text) {
  const auto spec = udc::ParseAppSpec(text);
  if (!spec.ok()) {
    std::fprintf(stderr, "spec: %s\n", spec.status().ToString().c_str());
    return 1;
  }
  udc::UdcCloud cloud;
  const udc::TenantId tenant = cloud.RegisterTenant("udcctl");
  auto deployment = cloud.Deploy(tenant, *spec);
  if (!deployment.ok()) {
    std::fprintf(stderr, "deploy: %s\n",
                 deployment.status().ToString().c_str());
    return 1;
  }
  std::printf("%s\n", (*deployment)->DebugString().c_str());

  udc::DagRuntime runtime(cloud.sim(), deployment->get());
  const auto report = runtime.RunOnce();
  if (!report.ok()) {
    std::fprintf(stderr, "run: %s\n", report.status().ToString().c_str());
    return 1;
  }
  std::printf("%s\n", report->Table().c_str());

  const auto verification = cloud.Verify(deployment->get());
  if (!verification.ok()) {
    std::fprintf(stderr, "verify: %s\n",
                 verification.status().ToString().c_str());
    return 1;
  }
  std::printf("%s\n", verification->Table().c_str());

  cloud.sim()->RunUntil(udc::SimTime::Hours(1));
  std::printf("%s", cloud.billing().BillToNow(**deployment).Table().c_str());
  return verification->all_ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    return Usage();
  }
  const std::string command = argv[1];
  if (command == "demo") {
    return Deploy(udc::MedicalAppUdcl());
  }
  if (argc < 3) {
    return Usage();
  }
  const auto text = ReadFile(argv[2]);
  if (!text.ok()) {
    std::fprintf(stderr, "%s\n", text.status().ToString().c_str());
    return 1;
  }
  if (command == "validate") {
    return Validate(*text);
  }
  if (command == "deploy") {
    return Deploy(*text);
  }
  return Usage();
}
