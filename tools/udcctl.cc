// udcctl — command-line driver for the UDC simulator.
//
//   udcctl validate <spec.udcl>             parse + validate a spec
//   udcctl deploy   <spec.udcl>             deploy, run once, verify, bill
//   udcctl demo                             the built-in medical app (Figure 2)
//   udcctl metrics  [spec.udcl]             run the cycle, print Prometheus
//                                           text exposition on stdout
//   udcctl trace --chrome <out.json> [spec.udcl]
//                                           run the cycle, write the span
//                                           trace as Chrome trace_event JSON
//   udcctl slo      [spec.udcl]             run the cycle under the default
//                                           SLO set, print the verdict table
//   udcctl record dump --out <path> [spec.udcl]
//                                           run the cycle, dump the flight
//                                           recorder (Chrome trace + metrics
//                                           snapshot)
//   udcctl regions [flags] [spec.udcl]      churn the spec through the
//                                           region-federated control plane,
//                                           print the per-region table
//
// Reads udcl from a file (or the embedded medical app when the spec argument
// is omitted), runs the full deploy/run/verify/bill cycle on a fresh
// simulated cloud, and prints the reports.
//
// Exit codes: 0 success, 1 runtime failure (parse/deploy/verify/IO errors,
// SLO breach), 2 usage error (unknown subcommand or bad arguments).

#include <cstdio>
#include <cstdlib>
#include <deque>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "src/aspects/aspects.h"
#include "src/common/strings.h"
#include "src/core/runtime.h"
#include "src/crypto/sha256.h"
#include "src/core/udc_cloud.h"
#include "src/obs/chrome_trace.h"
#include "src/obs/exposition.h"
#include "src/obs/slo.h"
#include "src/workload/medical.h"

namespace {

// Exit-code contract: bad invocations are distinguishable from runtime
// failures so scripts can tell "I called it wrong" (2) from "the cloud is
// unhealthy" (1).
constexpr int kExitRuntime = 1;
constexpr int kExitUsage = 2;

int Usage() {
  std::fprintf(
      stderr,
      "usage: udcctl <command> [args]\n"
      "\n"
      "commands:\n"
      "  validate <spec.udcl>      parse + validate a spec; prints the module\n"
      "                            graph and per-module aspect sets\n"
      "  deploy <spec.udcl>        deploy, run once, verify, bill; prints\n"
      "                            every report\n"
      "  demo                      `deploy` of the built-in medical app\n"
      "                            (paper Figure 2)\n"
      "  metrics [spec.udcl]       run the cycle, print the Prometheus text\n"
      "                            exposition on stdout\n"
      "  trace --chrome <out.json> [spec.udcl]\n"
      "                            run the cycle, write the span trace as\n"
      "                            Chrome trace_event JSON (open in\n"
      "                            chrome://tracing or ui.perfetto.dev)\n"
      "  slo [spec.udcl]           run the cycle under the default SLO set\n"
      "                            (deploy latency, repair convergence,\n"
      "                            run-report health), print the verdict\n"
      "                            table; exits 1 if any objective breached\n"
      "  record dump --out <path> [spec.udcl]\n"
      "                            run the cycle, dump the always-on flight\n"
      "                            recorder: <path> gets the Chrome trace,\n"
      "                            <path>.metrics.json the metrics snapshot\n"
      "  cells [--racks N] [--cells N] [--deploys N] [spec.udcl]\n"
      "                            churn the spec through the cell-\n"
      "                            partitioned control plane and print the\n"
      "                            per-cell capacity/latency table\n"
      "                            (defaults: 8 racks, 2 cells, 8 deploys)\n"
      "  store [--racks N] [--tenants N] [--deploys N] [spec.udcl]\n"
      "                            churn the spec through several tenants on\n"
      "                            a store-enabled cloud and print the\n"
      "                            content-addressed store's per-rack\n"
      "                            occupancy, hit/miss/eviction counts,\n"
      "                            dedupe factor and top contents by refs\n"
      "                            (defaults: 4 racks, 3 tenants, 9 deploys)\n"
      "  regions [--racks N] [--cells N] [--regions N] [--deploys N]\n"
      "          [spec.udcl]\n"
      "                            churn the spec through the federated\n"
      "                            (region-partitioned) control plane and\n"
      "                            print the per-region capacity, deploy,\n"
      "                            WAN-traffic and store-replication table\n"
      "                            (defaults: 8 racks, 4 cells, 2 regions,\n"
      "                            12 deploys)\n"
      "\n"
      "omitting [spec.udcl] uses the embedded medical app\n"
      "\n"
      "exit codes: 0 success, 1 runtime failure, 2 usage error\n");
  return kExitUsage;
}

udc::Result<std::string> ReadFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return udc::Status(udc::NotFoundError("cannot open " + path));
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

int Validate(const std::string& text) {
  const auto spec = udc::ParseAppSpec(text);
  if (!spec.ok()) {
    std::fprintf(stderr, "INVALID: %s\n", spec.status().ToString().c_str());
    return kExitRuntime;
  }
  std::printf("OK: %s\n%s", spec->graph.app_name().c_str(),
              spec->graph.DebugString().c_str());
  for (const udc::ModuleId id : spec->graph.ModuleIds()) {
    const udc::AspectSet aspects = spec->AspectsFor(id);
    std::printf("  %-8s %s\n", spec->graph.Find(id)->name.c_str(),
                aspects.ToString().c_str());
  }
  return 0;
}

// Runs the full deploy/run/verify/bill cycle against `cloud`. When `verbose`,
// prints every report; otherwise stays quiet so the caller can emit a single
// machine-readable artifact (metrics, trace) on stdout.
int RunCycle(const std::string& text, udc::UdcCloud* cloud, bool verbose) {
  const auto spec = udc::ParseAppSpec(text);
  if (!spec.ok()) {
    std::fprintf(stderr, "spec: %s\n", spec.status().ToString().c_str());
    return kExitRuntime;
  }
  const udc::TenantId tenant = cloud->RegisterTenant("udcctl");
  auto deployment = cloud->Deploy(tenant, *spec);
  if (!deployment.ok()) {
    std::fprintf(stderr, "deploy: %s\n",
                 deployment.status().ToString().c_str());
    return kExitRuntime;
  }
  if (verbose) {
    std::printf("%s\n", (*deployment)->DebugString().c_str());
  }

  udc::DagRuntime runtime(cloud->sim(), deployment->get());
  const auto report = runtime.RunOnce();
  if (!report.ok()) {
    std::fprintf(stderr, "run: %s\n", report.status().ToString().c_str());
    return kExitRuntime;
  }
  if (verbose) {
    std::printf("%s\n", report->Table().c_str());
    std::printf("%s\n", report->breakdown.Table().c_str());
  }

  const auto verification = cloud->Verify(deployment->get());
  if (!verification.ok()) {
    std::fprintf(stderr, "verify: %s\n",
                 verification.status().ToString().c_str());
    return kExitRuntime;
  }
  if (verbose) {
    std::printf("%s\n", verification->Table().c_str());
  }

  cloud->sim()->RunUntil(udc::SimTime::Hours(1));
  if (verbose) {
    std::printf("%s",
                cloud->billing().BillToNow(**deployment).Table().c_str());
  }
  return verification->all_ok ? 0 : kExitRuntime;
}

int Deploy(const std::string& text) {
  udc::UdcCloud cloud;
  return RunCycle(text, &cloud, /*verbose=*/true);
}

int Metrics(const std::string& text) {
  udc::UdcCloud cloud;
  const int rc = RunCycle(text, &cloud, /*verbose=*/false);
  if (rc != 0) {
    return rc;
  }
  std::printf("%s", udc::PrometheusExposition(cloud.sim()->metrics()).c_str());
  return 0;
}

int Trace(const std::string& text, const std::string& out_path) {
  udc::UdcCloud cloud;
  const int rc = RunCycle(text, &cloud, /*verbose=*/false);
  if (rc != 0) {
    return rc;
  }
  const udc::Status status = udc::WriteChromeTrace(
      cloud.sim()->spans(), cloud.sim()->now(), out_path);
  if (!status.ok()) {
    std::fprintf(stderr, "trace: %s\n", status.ToString().c_str());
    return kExitRuntime;
  }
  std::printf("wrote %zu spans to %s (open in chrome://tracing)\n",
              cloud.sim()->spans().spans().size(), out_path.c_str());
  return 0;
}

// The built-in objective set `udcctl slo` judges a run against. Windows span
// the whole run (EvaluateNow at the end); thresholds are generous — the
// point of the CLI gate is "did anything go badly wrong", the tight
// per-layer budgets live in the benches.
void RegisterDefaultObjectives(udc::SloEngine* slos) {
  {
    udc::SloSpec spec;
    spec.name = "slo.frontend.deploy_latency_p99";
    spec.kind = udc::SloSpec::SourceKind::kHistogramQuantile;
    spec.source = "frontend.deploy_latency_ms";
    spec.quantile = 0.99;
    spec.threshold = 60'000.0;  // a deploy should be live within a minute
    spec.window = udc::SimTime::Hours(2);
    slos->AddObjective(std::move(spec));
  }
  {
    udc::SloSpec spec;
    spec.name = "slo.repair.convergence_p99";
    spec.kind = udc::SloSpec::SourceKind::kHistogramQuantile;
    spec.source = "repair.convergence_ms";
    spec.quantile = 0.99;
    spec.threshold = 300'000.0;  // repairs converge within five minutes
    spec.window = udc::SimTime::Hours(2);
    slos->AddObjective(std::move(spec));
  }
  {
    udc::SloSpec spec;
    spec.name = "slo.core.run_end_to_end_ms";
    spec.kind = udc::SloSpec::SourceKind::kHistogramQuantile;
    spec.source = "core.run_end_to_end_ms";
    spec.quantile = 0.99;
    spec.threshold = 3'600'000.0;  // a DAG run finishes within an hour
    spec.window = udc::SimTime::Hours(2);
    slos->AddObjective(std::move(spec));
  }
  {
    udc::SloSpec spec;
    spec.name = "slo.exec.warm_hit_ratio";
    spec.kind = udc::SloSpec::SourceKind::kGauge;
    spec.source = "exec.warm_hit_ratio";
    spec.cmp = udc::SloSpec::Cmp::kGe;
    // Generous on purpose: the gauge reads 1.0 before any start and a
    // single-cycle run is all cold starts, so anything above zero passes.
    // The tight fan-out budget lives in bench/coldstart_isolation.
    spec.threshold = 0.0;
    spec.window = udc::SimTime::Hours(2);
    slos->AddObjective(std::move(spec));
  }
}

int Slo(const std::string& text) {
  udc::UdcCloud cloud;
  // Register before the cycle so histogram sources are in sketch mode from
  // the first Observe (AddObjective flips them).
  RegisterDefaultObjectives(&cloud.sim()->slos());
  const int rc = RunCycle(text, &cloud, /*verbose=*/false);
  if (rc != 0) {
    return rc;
  }
  cloud.sim()->slos().EvaluateNow(cloud.sim()->now());
  std::printf("%s", cloud.sim()->slos().Report().c_str());
  return cloud.sim()->slos().AllOk() ? 0 : kExitRuntime;
}

// `udcctl cells`: the hierarchical control plane made visible. Builds a
// cell-partitioned cloud, churns the spec through the router, and prints a
// per-cell capacity/latency table — the operator's view of how the router
// spread the load and what each cell's placement tail looks like.
int Cells(const std::string& text, int racks, int cells, int deploys) {
  udc::UdcCloudConfig config;
  config.datacenter.racks = racks;
  config.datacenter.cells = cells;
  config.scheduler.record_place_latency = true;
  udc::UdcCloud cloud(config);
  if (cloud.cell_router() == nullptr) {
    std::fprintf(stderr, "cells: need at least 1 cell (got --cells %d)\n",
                 cells);
    return kExitUsage;
  }

  const auto spec = udc::ParseAppSpec(text);
  if (!spec.ok()) {
    std::fprintf(stderr, "spec: %s\n", spec.status().ToString().c_str());
    return kExitRuntime;
  }
  const auto shared_spec = std::make_shared<const udc::AppSpec>(*spec);
  // Deployments stay resident so the table shows a loaded datacenter.
  std::vector<std::unique_ptr<udc::Deployment>> live;
  int ok = 0, failed = 0;
  for (int i = 0; i < deploys; ++i) {
    const udc::TenantId tenant =
        cloud.RegisterTenant("cells-" + std::to_string(i));
    auto deployment = cloud.Deploy(tenant, shared_spec);
    if (deployment.ok()) {
      ++ok;
      live.push_back(std::move(*deployment));
    } else {
      ++failed;
    }
    cloud.sim()->RunToCompletion();
  }

  udc::CellRouter* router = cloud.cell_router();
  const udc::Topology& topo = cloud.datacenter().topology();
  const udc::ResourcePool& cpu_pool =
      cloud.datacenter().pool(udc::DeviceKind::kCpuBlade);
  const udc::FreeCapacityIndex& index = cpu_pool.PlacementIndex(topo);
  const std::vector<int64_t>& free =
      router->CellFreeSummary(udc::DeviceKind::kCpuBlade);

  // Per-cell cpu capacity from the device list (cells may be ragged: the
  // last cell owns whatever racks remain).
  std::vector<int64_t> capacity(static_cast<size_t>(router->cell_count()), 0);
  for (udc::Device* device : cloud.datacenter().AllDevices()) {
    if (device->kind() != udc::DeviceKind::kCpuBlade) {
      continue;
    }
    const int cell = index.CellOf(device);
    if (cell >= 0) {
      capacity[static_cast<size_t>(cell)] += device->capacity();
    }
  }

  std::printf("%d cells over %d racks (%zu devices), %d deploys (%d ok, "
              "%d failed)\n\n",
              router->cell_count(), topo.rack_count(),
              cloud.datacenter().AllDevices().size(), deploys, ok, failed);
  std::printf("cell   racks      cpu free/capacity      util  deploys"
              "   place p50/p99 (us)\n");
  for (int c = 0; c < router->cell_count(); ++c) {
    const int64_t cap = capacity[static_cast<size_t>(c)];
    const int64_t cell_free = free[static_cast<size_t>(c)];
    const double util =
        cap > 0 ? 100.0 * static_cast<double>(cap - cell_free) /
                      static_cast<double>(cap)
                : 0.0;
    const udc::MetricHistogram* latency = cloud.sim()->metrics().histogram(
        "sched.cell_place_latency_us",
        {{"cell", udc::StrFormat("%d", c)}});
    std::printf("%4d   [%2d,%2d)  %9lld / %-9lld  %5.1f%%  %7lld",
                c, topo.CellRackBegin(c), topo.CellRackEnd(c),
                static_cast<long long>(cell_free),
                static_cast<long long>(cap), util,
                static_cast<long long>(router->CellDeploys(c)));
    if (latency != nullptr && latency->count() > 0) {
      std::printf("   %8.1f / %-8.1f\n", latency->Quantile(0.5),
                  latency->Quantile(0.99));
    } else {
      std::printf("          - / -\n");
    }
  }
  std::printf("\ncross-cell deploys: %lld, module spills: %lld\n",
              static_cast<long long>(router->cross_cell_deploys()),
              static_cast<long long>(router->cell_fallbacks()));
  return failed == 0 ? 0 : kExitRuntime;
}

// `udcctl regions`: the federated control plane made visible. Builds a
// region-partitioned, store-enabled cloud and churns the spec with
// deploys pinned to regions in phases: the first phase all lands in
// region 0, later phases move to the remaining regions. Deployments
// past a small live window are torn down keep-warm, so by the time a
// later phase starts, its content is banked only in earlier regions —
// its first deploys pull it across the WAN (a remote start) and
// replicate it into their own region, after which starts there are
// served locally again. The table is the
// operator's view of that federation: per-region cell range, capacity
// and utilisation, deploy counts, WAN bytes out/in, and remote fetches;
// the footer gives the WAN totals and the store's replication hit ratio
// (warmish starts served in-region vs. needing the WAN).
int Regions(const std::string& text, int racks, int cells, int regions,
            int deploys) {
  udc::UdcCloudConfig config;
  config.datacenter.racks = racks;
  config.datacenter.cells = cells;
  config.datacenter.regions = regions;
  config.env_store.enabled = true;
  config.env_store.share_across_tenants = true;
  config.scheduler.record_place_latency = true;
  udc::UdcCloud cloud(config);
  if (cloud.region_router() == nullptr) {
    std::fprintf(stderr, "regions: need at least 1 region (got --regions %d)\n",
                 regions);
    return kExitUsage;
  }

  const auto spec = udc::ParseAppSpec(text);
  if (!spec.ok()) {
    std::fprintf(stderr, "spec: %s\n", spec.status().ToString().c_str());
    return kExitRuntime;
  }
  udc::RegionRouter* router = cloud.region_router();
  // One copy of the spec per region, whole-app pinned there via the region
  // affinity aspect, so demand provably lands in every region and the
  // cross-region store tier gets exercised.
  std::vector<std::shared_ptr<const udc::AppSpec>> pinned;
  for (int r = 0; r < router->region_count(); ++r) {
    udc::AppSpec copy = *spec;
    for (const udc::ModuleId id : copy.graph.ModuleIds()) {
      udc::AspectSet aspects = copy.AspectsFor(id);
      aspects.dist.region_affinity = r;
      copy.aspects[id] = aspects;
    }
    pinned.push_back(std::make_shared<const udc::AppSpec>(std::move(copy)));
  }

  // Keep a small window of deployments live (so the table shows load) and
  // tear down the rest keep-warm (so the store's replication tier runs).
  std::deque<std::unique_ptr<udc::Deployment>> live;
  const size_t window =
      static_cast<size_t>(deploys / 4 > 1 ? deploys / 4 : 1);
  int ok = 0, failed = 0;
  for (int i = 0; i < deploys; ++i) {
    const udc::TenantId tenant =
        cloud.RegisterTenant("regions-" + std::to_string(i));
    // Phased pinning: deploys sweep region 0 first, then the rest, so
    // later regions start with nothing local and must replicate.
    const int target = i * router->region_count() / deploys;
    auto deployment = cloud.Deploy(tenant, pinned[static_cast<size_t>(target)]);
    cloud.sim()->RunToCompletion();
    if (deployment.ok()) {
      ++ok;
      live.push_back(std::move(*deployment));
    } else {
      ++failed;
    }
    while (live.size() > window) {
      for (udc::ResourceUnit* unit : live.front()->units()) {
        if (unit->env != nullptr) {
          (void)cloud.envs().Stop(unit->env, /*keep_warm=*/true);
          unit->env = nullptr;
        }
      }
      live.pop_front();
    }
  }
  cloud.sim()->RunToCompletion();

  const udc::Topology& topo = cloud.datacenter().topology();
  const udc::ResourcePool& cpu_pool =
      cloud.datacenter().pool(udc::DeviceKind::kCpuBlade);
  const udc::FreeCapacityIndex& index = cpu_pool.PlacementIndex(topo);
  const std::vector<int64_t>& free =
      router->RegionFreeSummary(udc::DeviceKind::kCpuBlade);

  // Per-region cpu capacity from the device list (regions may be ragged:
  // the last region owns whatever cells remain).
  std::vector<int64_t> capacity(static_cast<size_t>(router->region_count()),
                                0);
  for (udc::Device* device : cloud.datacenter().AllDevices()) {
    if (device->kind() != udc::DeviceKind::kCpuBlade) {
      continue;
    }
    const int cell = index.CellOf(device);
    const int region = topo.RegionOf(cell);
    if (region >= 0) {
      capacity[static_cast<size_t>(region)] += device->capacity();
    }
  }
  // Remote fetches aggregated onto the region that did the fetching.
  const udc::EnvStore* store = cloud.envs().store();
  std::vector<int64_t> remote(static_cast<size_t>(router->region_count()), 0);
  for (const udc::EnvStore::RackStats& r : store->PerRackStats()) {
    const int region = topo.RegionOfRack(r.rack);
    if (region >= 0) {
      remote[static_cast<size_t>(region)] += r.remote_hits;
    }
  }

  std::printf("%d regions over %d cells / %d racks (%zu devices), %d deploys "
              "(%d ok, %d failed)\n\n",
              router->region_count(), router->cell_count(), topo.rack_count(),
              cloud.datacenter().AllDevices().size(), deploys, ok, failed);
  std::printf("region  cells     cpu free/capacity      util  deploys"
              "   wan out/in (MiB)  remote   place p50/p99 (us)\n");
  for (int r = 0; r < router->region_count(); ++r) {
    const int64_t cap = capacity[static_cast<size_t>(r)];
    const int64_t region_free = free[static_cast<size_t>(r)];
    const double util =
        cap > 0 ? 100.0 * static_cast<double>(cap - region_free) /
                      static_cast<double>(cap)
                : 0.0;
    const udc::MetricHistogram* latency = cloud.sim()->metrics().histogram(
        "sched.region_place_latency_us",
        {{"region", udc::StrFormat("%d", r)}});
    std::printf("%6d  [%2d,%2d)  %9lld / %-9lld  %5.1f%%  %7lld"
                "   %7.1f / %-7.1f  %6lld",
                r, topo.RegionCellBegin(r), topo.RegionCellEnd(r),
                static_cast<long long>(region_free),
                static_cast<long long>(cap), util,
                static_cast<long long>(router->RegionDeploys(r)),
                static_cast<double>(cloud.fabric().wan_bytes_out(r)) /
                    (1024.0 * 1024.0),
                static_cast<double>(cloud.fabric().wan_bytes_in(r)) /
                    (1024.0 * 1024.0),
                static_cast<long long>(remote[static_cast<size_t>(r)]));
    if (latency != nullptr && latency->count() > 0) {
      std::printf("   %8.1f / %-8.1f\n", latency->Quantile(0.5),
                  latency->Quantile(0.99));
    } else {
      std::printf("          - / -\n");
    }
  }

  const int64_t local_warmish = store->hits() + store->tepid_hits();
  const int64_t warmish = local_warmish + store->remote_hits();
  std::printf("\ncross-region deploys: %lld, module spills: %lld\n",
              static_cast<long long>(router->cross_region_deploys()),
              static_cast<long long>(router->region_fallbacks()));
  std::printf("wan: %llu transfers, %.1f MiB total\n",
              static_cast<unsigned long long>(
                  cloud.fabric().wan_messages_sent()),
              static_cast<double>(cloud.fabric().wan_bytes_sent()) /
                  (1024.0 * 1024.0));
  std::printf("store: %lld warm / %lld tepid / %lld remote / %lld cold; "
              "replication hit ratio %.2f (in-region warmish starts)\n",
              static_cast<long long>(store->hits()),
              static_cast<long long>(store->tepid_hits()),
              static_cast<long long>(store->remote_hits()),
              static_cast<long long>(store->misses()),
              warmish > 0 ? static_cast<double>(local_warmish) /
                                static_cast<double>(warmish)
                          : 1.0);
  return failed == 0 ? 0 : kExitRuntime;
}

// `udcctl store`: the content-addressed warm-environment store made
// visible. Builds a store-enabled cloud, churns the same spec through
// several tenants (identical module images, so contents dedupe and warm
// slots cross tenants), and prints the operator's view: per-rack cache
// occupancy, hit/miss/eviction counts, the dedupe factor, and the top
// contents by refcount.
int Store(const std::string& text, int racks, int tenants, int deploys) {
  udc::UdcCloudConfig config;
  config.datacenter.racks = racks;
  config.env_store.enabled = true;
  config.env_store.share_across_tenants = true;
  udc::UdcCloud cloud(config);

  const auto spec = udc::ParseAppSpec(text);
  if (!spec.ok()) {
    std::fprintf(stderr, "spec: %s\n", spec.status().ToString().c_str());
    return kExitRuntime;
  }
  const auto shared_spec = std::make_shared<const udc::AppSpec>(*spec);

  std::vector<udc::TenantId> ids;
  for (int t = 0; t < tenants; ++t) {
    ids.push_back(cloud.RegisterTenant("store-" + std::to_string(t)));
  }
  // Each deploy is torn down keep-warm before the next tenant deploys, so
  // later tenants ride the earlier tenants' warm slots by content.
  int ok = 0, failed = 0;
  for (int i = 0; i < deploys; ++i) {
    auto deployment = cloud.Deploy(ids[static_cast<size_t>(i) % ids.size()],
                                   shared_spec);
    cloud.sim()->RunToCompletion();
    if (!deployment.ok()) {
      ++failed;
      continue;
    }
    ++ok;
    for (udc::ResourceUnit* unit : (*deployment)->units()) {
      if (unit->env != nullptr) {
        (void)cloud.envs().Stop(unit->env, /*keep_warm=*/true);
        unit->env = nullptr;
      }
    }
  }
  cloud.sim()->RunToCompletion();

  const udc::EnvStore* store = cloud.envs().store();
  std::printf("content-addressed env store: %d racks, %d tenants, %d deploys "
              "(%d ok, %d failed)\n\n",
              racks, tenants, deploys, ok, failed);
  std::printf("contents: %zu distinct (%zu live), %lld warm slots, "
              "resident %s, dedupe %.2fx\n",
              store->distinct_contents(), store->live_contents(),
              static_cast<long long>(store->total_warm_slots()),
              store->resident_bytes().ToString().c_str(),
              store->DedupeFactor());
  std::printf("starts: hit ratio %.2f (%lld warm / %lld tepid / %lld cold), "
              "%lld cross-tenant, %lld evictions, quotes minted %llu\n\n",
              cloud.envs().warm_hit_ratio(),
              static_cast<long long>(store->hits()),
              static_cast<long long>(store->tepid_hits()),
              static_cast<long long>(store->misses()),
              static_cast<long long>(cloud.envs().cross_tenant_warm_starts()),
              static_cast<long long>(store->evictions()),
              static_cast<unsigned long long>(
                  cloud.attestation().image_quotes_minted()));

  std::printf("rack   entries  warm   resident      hits  tepid  miss  "
              "evict\n");
  for (const udc::EnvStore::RackStats& r : store->PerRackStats()) {
    std::printf("%4d   %7zu  %4lld   %-10s %5lld  %5lld  %4lld  %5lld\n",
                r.rack, r.entries, static_cast<long long>(r.warm_slots),
                r.resident.ToString().c_str(),
                static_cast<long long>(r.hits),
                static_cast<long long>(r.tepid_hits),
                static_cast<long long>(r.misses),
                static_cast<long long>(r.evictions));
  }

  std::printf("\ntop contents by refcount:\n");
  std::printf("content           size        refs  warm  racks\n");
  for (const udc::EnvStore::ContentStats& c : store->TopByRefs(10)) {
    std::printf("%.16s  %-10s %5lld %5lld  %5d\n",
                udc::DigestToHex(c.digest).c_str(),
                c.size.ToString().c_str(), static_cast<long long>(c.refs),
                static_cast<long long>(c.warm_slots), c.racks_resident);
  }
  return failed == 0 ? 0 : kExitRuntime;
}

int RecordDump(const std::string& text, const std::string& out_path) {
  udc::UdcCloud cloud;
  const int rc = RunCycle(text, &cloud, /*verbose=*/false);
  if (rc != 0) {
    return rc;
  }
  const udc::Status status = cloud.sim()->flight_recorder().Dump(
      out_path, &cloud.sim()->metrics(), "explicit trigger: udcctl record dump");
  if (!status.ok()) {
    std::fprintf(stderr, "record dump: %s\n", status.ToString().c_str());
    return kExitRuntime;
  }
  std::printf(
      "wrote %zu flight-recorder records to %s (open in chrome://tracing)\n"
      "wrote metrics snapshot to %s.metrics.json\n",
      cloud.sim()->flight_recorder().retained(), out_path.c_str(),
      out_path.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    return Usage();
  }
  const std::string command = argv[1];
  if (command == "demo") {
    return Deploy(udc::MedicalAppUdcl());
  }
  if (command == "metrics" || command == "slo") {
    std::string text = udc::MedicalAppUdcl();
    if (argc >= 3) {
      const auto file = ReadFile(argv[2]);
      if (!file.ok()) {
        std::fprintf(stderr, "%s\n", file.status().ToString().c_str());
        return kExitRuntime;
      }
      text = *file;
    }
    return command == "metrics" ? Metrics(text) : Slo(text);
  }
  if (command == "trace") {
    if (argc < 4 || std::string(argv[2]) != "--chrome") {
      return Usage();
    }
    std::string text = udc::MedicalAppUdcl();
    if (argc >= 5) {
      const auto file = ReadFile(argv[4]);
      if (!file.ok()) {
        std::fprintf(stderr, "%s\n", file.status().ToString().c_str());
        return kExitRuntime;
      }
      text = *file;
    }
    return Trace(text, argv[3]);
  }
  if (command == "cells") {
    int racks = 8, cells = 2, deploys = 8;
    std::string text = udc::MedicalAppUdcl();
    for (int i = 2; i < argc; ++i) {
      const std::string arg = argv[i];
      if ((arg == "--racks" || arg == "--cells" || arg == "--deploys") &&
          i + 1 < argc) {
        const int value = std::atoi(argv[++i]);
        if (value <= 0) {
          return Usage();
        }
        (arg == "--racks" ? racks : arg == "--cells" ? cells : deploys) =
            value;
      } else if (!arg.empty() && arg[0] == '-') {
        return Usage();
      } else {
        const auto file = ReadFile(arg);
        if (!file.ok()) {
          std::fprintf(stderr, "%s\n", file.status().ToString().c_str());
          return kExitRuntime;
        }
        text = *file;
      }
    }
    return Cells(text, racks, cells, deploys);
  }
  if (command == "regions") {
    int racks = 8, cells = 4, regions = 2, deploys = 12;
    std::string text = udc::MedicalAppUdcl();
    for (int i = 2; i < argc; ++i) {
      const std::string arg = argv[i];
      if ((arg == "--racks" || arg == "--cells" || arg == "--regions" ||
           arg == "--deploys") &&
          i + 1 < argc) {
        const int value = std::atoi(argv[++i]);
        if (value <= 0) {
          return Usage();
        }
        (arg == "--racks"     ? racks
         : arg == "--cells"   ? cells
         : arg == "--regions" ? regions
                              : deploys) = value;
      } else if (!arg.empty() && arg[0] == '-') {
        return Usage();
      } else {
        const auto file = ReadFile(arg);
        if (!file.ok()) {
          std::fprintf(stderr, "%s\n", file.status().ToString().c_str());
          return kExitRuntime;
        }
        text = *file;
      }
    }
    return Regions(text, racks, cells, regions, deploys);
  }
  if (command == "store") {
    int racks = 4, tenants = 3, deploys = 9;
    std::string text = udc::MedicalAppUdcl();
    for (int i = 2; i < argc; ++i) {
      const std::string arg = argv[i];
      if ((arg == "--racks" || arg == "--tenants" || arg == "--deploys") &&
          i + 1 < argc) {
        const int value = std::atoi(argv[++i]);
        if (value <= 0) {
          return Usage();
        }
        (arg == "--racks" ? racks : arg == "--tenants" ? tenants : deploys) =
            value;
      } else if (!arg.empty() && arg[0] == '-') {
        return Usage();
      } else {
        const auto file = ReadFile(arg);
        if (!file.ok()) {
          std::fprintf(stderr, "%s\n", file.status().ToString().c_str());
          return kExitRuntime;
        }
        text = *file;
      }
    }
    return Store(text, racks, tenants, deploys);
  }
  if (command == "record") {
    if (argc < 5 || std::string(argv[2]) != "dump" ||
        std::string(argv[3]) != "--out") {
      return Usage();
    }
    std::string text = udc::MedicalAppUdcl();
    if (argc >= 6) {
      const auto file = ReadFile(argv[5]);
      if (!file.ok()) {
        std::fprintf(stderr, "%s\n", file.status().ToString().c_str());
        return kExitRuntime;
      }
      text = *file;
    }
    return RecordDump(text, argv[4]);
  }
  if (argc < 3) {
    return Usage();
  }
  const auto text = ReadFile(argv[2]);
  if (!text.ok()) {
    std::fprintf(stderr, "%s\n", text.status().ToString().c_str());
    return kExitRuntime;
  }
  if (command == "validate") {
    return Validate(*text);
  }
  if (command == "deploy") {
    return Deploy(*text);
  }
  return Usage();
}
