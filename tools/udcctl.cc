// udcctl — command-line driver for the UDC simulator.
//
//   udcctl validate <spec.udcl>             parse + validate a spec
//   udcctl deploy   <spec.udcl>             deploy, run once, verify, bill
//   udcctl demo                             the built-in medical app (Figure 2)
//   udcctl metrics  [spec.udcl]             run the cycle, print Prometheus
//                                           text exposition on stdout
//   udcctl trace --chrome <out.json> [spec.udcl]
//                                           run the cycle, write the span
//                                           trace as Chrome trace_event JSON
//                                           (open in chrome://tracing or
//                                           https://ui.perfetto.dev)
//
// Reads udcl from a file (or the embedded medical app when the spec argument
// is omitted), runs the full deploy/run/verify/bill cycle on a fresh
// simulated cloud, and prints the reports. Exit code 0 on success, 1 on any
// error.

#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>

#include "src/core/runtime.h"
#include "src/core/udc_cloud.h"
#include "src/obs/chrome_trace.h"
#include "src/obs/exposition.h"
#include "src/workload/medical.h"

namespace {

int Usage() {
  std::fprintf(stderr,
               "usage: udcctl validate <spec.udcl>\n"
               "       udcctl deploy   <spec.udcl>\n"
               "       udcctl demo\n"
               "       udcctl metrics  [spec.udcl]\n"
               "       udcctl trace --chrome <out.json> [spec.udcl]\n");
  return 1;
}

udc::Result<std::string> ReadFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return udc::Status(udc::NotFoundError("cannot open " + path));
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

int Validate(const std::string& text) {
  const auto spec = udc::ParseAppSpec(text);
  if (!spec.ok()) {
    std::fprintf(stderr, "INVALID: %s\n", spec.status().ToString().c_str());
    return 1;
  }
  std::printf("OK: %s\n%s", spec->graph.app_name().c_str(),
              spec->graph.DebugString().c_str());
  for (const udc::ModuleId id : spec->graph.ModuleIds()) {
    const udc::AspectSet aspects = spec->AspectsFor(id);
    std::printf("  %-8s %s\n", spec->graph.Find(id)->name.c_str(),
                aspects.ToString().c_str());
  }
  return 0;
}

// Runs the full deploy/run/verify/bill cycle against `cloud`. When `verbose`,
// prints every report; otherwise stays quiet so the caller can emit a single
// machine-readable artifact (metrics, trace) on stdout.
int RunCycle(const std::string& text, udc::UdcCloud* cloud, bool verbose) {
  const auto spec = udc::ParseAppSpec(text);
  if (!spec.ok()) {
    std::fprintf(stderr, "spec: %s\n", spec.status().ToString().c_str());
    return 1;
  }
  const udc::TenantId tenant = cloud->RegisterTenant("udcctl");
  auto deployment = cloud->Deploy(tenant, *spec);
  if (!deployment.ok()) {
    std::fprintf(stderr, "deploy: %s\n",
                 deployment.status().ToString().c_str());
    return 1;
  }
  if (verbose) {
    std::printf("%s\n", (*deployment)->DebugString().c_str());
  }

  udc::DagRuntime runtime(cloud->sim(), deployment->get());
  const auto report = runtime.RunOnce();
  if (!report.ok()) {
    std::fprintf(stderr, "run: %s\n", report.status().ToString().c_str());
    return 1;
  }
  if (verbose) {
    std::printf("%s\n", report->Table().c_str());
    std::printf("%s\n", report->breakdown.Table().c_str());
  }

  const auto verification = cloud->Verify(deployment->get());
  if (!verification.ok()) {
    std::fprintf(stderr, "verify: %s\n",
                 verification.status().ToString().c_str());
    return 1;
  }
  if (verbose) {
    std::printf("%s\n", verification->Table().c_str());
  }

  cloud->sim()->RunUntil(udc::SimTime::Hours(1));
  if (verbose) {
    std::printf("%s",
                cloud->billing().BillToNow(**deployment).Table().c_str());
  }
  return verification->all_ok ? 0 : 1;
}

int Deploy(const std::string& text) {
  udc::UdcCloud cloud;
  return RunCycle(text, &cloud, /*verbose=*/true);
}

int Metrics(const std::string& text) {
  udc::UdcCloud cloud;
  const int rc = RunCycle(text, &cloud, /*verbose=*/false);
  if (rc != 0) {
    return rc;
  }
  std::printf("%s", udc::PrometheusExposition(cloud.sim()->metrics()).c_str());
  return 0;
}

int Trace(const std::string& text, const std::string& out_path) {
  udc::UdcCloud cloud;
  const int rc = RunCycle(text, &cloud, /*verbose=*/false);
  if (rc != 0) {
    return rc;
  }
  const udc::Status status = udc::WriteChromeTrace(
      cloud.sim()->spans(), cloud.sim()->now(), out_path);
  if (!status.ok()) {
    std::fprintf(stderr, "trace: %s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("wrote %zu spans to %s (open in chrome://tracing)\n",
              cloud.sim()->spans().spans().size(), out_path.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    return Usage();
  }
  const std::string command = argv[1];
  if (command == "demo") {
    return Deploy(udc::MedicalAppUdcl());
  }
  if (command == "metrics") {
    if (argc < 3) {
      return Metrics(udc::MedicalAppUdcl());
    }
    const auto text = ReadFile(argv[2]);
    if (!text.ok()) {
      std::fprintf(stderr, "%s\n", text.status().ToString().c_str());
      return 1;
    }
    return Metrics(*text);
  }
  if (command == "trace") {
    if (argc < 4 || std::string(argv[2]) != "--chrome") {
      return Usage();
    }
    std::string text = udc::MedicalAppUdcl();
    if (argc >= 5) {
      const auto file = ReadFile(argv[4]);
      if (!file.ok()) {
        std::fprintf(stderr, "%s\n", file.status().ToString().c_str());
        return 1;
      }
      text = *file;
    }
    return Trace(text, argv[3]);
  }
  if (argc < 3) {
    return Usage();
  }
  const auto text = ReadFile(argv[2]);
  if (!text.ok()) {
    std::fprintf(stderr, "%s\n", text.status().ToString().c_str());
    return 1;
  }
  if (command == "validate") {
    return Validate(*text);
  }
  if (command == "deploy") {
    return Deploy(*text);
  }
  return Usage();
}
